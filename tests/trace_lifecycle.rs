//! Worm-lifecycle tracing end to end: every transition the trace subsystem
//! promises (DESIGN.md §3.2) must actually appear, in order, when the
//! corresponding fabric behavior is provoked — including the V2 fragment
//! park/resume pair and the V3 Backward-Reset flush, which only show up
//! under real crossbar contention.

use std::sync::Arc;
use wormcast::core::switchcast::{SwitchcastProtocol, SwitchcastTables, SwitchcastVariant};
use wormcast::core::{HcConfig, HcProtocol, Membership};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::switchcast::SwitchcastMode;
use wormcast::sim::trace::{BlockCause, TraceConfig, TraceEvent};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::{install_one_shot, install_script};

/// 5 switches: a root (0) with two subtrees (1-2 and 3-4) plus a crosslink
/// between 2 and 4; two hosts per switch (same fabric as tests/switchcast.rs).
fn topo() -> Topology {
    let mut b = TopoBuilder::new(5);
    b.link(0, 1, 1);
    b.link(1, 2, 1);
    b.link(0, 3, 1);
    b.link(3, 4, 1);
    b.link(2, 4, 1);
    for s in 0..5 {
        b.host(s);
        b.host(s);
    }
    b.build()
}

fn switchcast_net(variant: SwitchcastVariant, members: Vec<HostId>, trace: TraceConfig) -> Network {
    let topo = topo();
    let ud = UpDown::compute(&topo, 0);
    let restrict = matches!(
        variant,
        SwitchcastVariant::RestrictedIdle | SwitchcastVariant::IdleFlush
    );
    let routes = ud.route_table(&topo, restrict);
    let mode = match variant {
        SwitchcastVariant::RestrictedIdle => SwitchcastMode::RestrictedIdle,
        SwitchcastVariant::RootedInterrupt => SwitchcastMode::RootedInterrupt,
        SwitchcastVariant::IdleFlush => SwitchcastMode::IdleFlush,
        SwitchcastVariant::Broadcast => SwitchcastMode::RootedInterrupt,
    };
    let membership = Membership::from_groups([(0u8, members)]);
    let tables = Arc::new(SwitchcastTables::build(
        &topo, &ud, &routes, &membership, restrict,
    ));
    let cfg = NetworkConfig::builder()
        .switchcast(mode)
        .trace(trace)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
    net.set_broadcast_ports(SwitchcastTables::broadcast_ports(&topo, &ud));
    for h in 0..net.num_hosts() as u32 {
        let p = SwitchcastProtocol::new(
            HostId(h),
            variant,
            Arc::clone(&membership),
            Arc::clone(&tables),
        );
        net.set_protocol(HostId(h), Box::new(p));
    }
    net
}

/// Plain HC unicast network over the same fabric, with tracing.
fn hc_net(trace: TraceConfig) -> Network {
    let topo = topo();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let cfg = NetworkConfig::builder()
        .trace(trace)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
    let groups = Membership::from_groups([(0u8, vec![HostId(0)])]);
    for h in 0..net.num_hosts() as u32 {
        let p = HcProtocol::new(HostId(h), HcConfig::store_and_forward(), Arc::clone(&groups));
        net.set_protocol(HostId(h), Box::new(p));
    }
    net
}

fn count(net: &Network, pred: impl Fn(&TraceEvent) -> bool) -> usize {
    net.trace.events().iter().filter(|(_, e)| pred(e)).count()
}

#[test]
fn unicast_lifecycle_is_fully_traced_in_order() {
    let mut net = hc_net(TraceConfig::Memory);
    install_one_shot(&mut net, HostId(2), 100, SourceMessage {
        dest: Destination::Unicast(HostId(9)),
        payload_len: 400,
    });
    let out = net.run_until(100_000);
    assert!(out.drained && out.deadlock.is_none());

    // host 2 (switch 1) -> host 9 (switch 4) crosses several switches:
    // one injection, one route byte consumed per switch hop, reception and
    // delivery at host 9 — in that causal order.
    let mut injected_at = None;
    let mut received_at = None;
    let mut delivered_at = None;
    let mut route_consumed = 0usize;
    for (t, ev) in net.trace.events() {
        match ev {
            TraceEvent::WormInjected { host, .. } => {
                assert_eq!(host.0, 2);
                injected_at = Some(*t);
            }
            TraceEvent::RouteConsumed { .. } => route_consumed += 1,
            TraceEvent::WormReceived { host, .. } => {
                assert_eq!(host.0, 9);
                received_at = Some(*t);
            }
            TraceEvent::Delivered { host, .. } => {
                assert_eq!(host.0, 9);
                delivered_at = Some(*t);
            }
            _ => {}
        }
    }
    let (i, r, d) = (
        injected_at.expect("injection traced"),
        received_at.expect("reception traced"),
        delivered_at.expect("delivery traced"),
    );
    assert!(i < r && r <= d, "lifecycle out of order: {i} {r} {d}");
    assert!(route_consumed >= 2, "multi-hop route must consume bytes at switches");

    // An uncontended run has no blocking to report.
    assert_eq!(count(&net, |e| matches!(e, TraceEvent::WormBlocked { .. })), 0);
    assert_eq!(count(&net, |e| matches!(e, TraceEvent::StopInForce { .. })), 0);
}

#[test]
fn contention_traces_blocked_resumed_and_stop_go_pairs() {
    // Hosts 0 and 2 both stream long worms at host 9; they meet at switch
    // 0's output toward the 3-4 subtree, so one queues (OutputBusy) and
    // STOP backpressure propagates while the winner transmits.
    let mut net = hc_net(TraceConfig::Memory);
    for (src, at) in [(0u32, 100u64), (2, 110)] {
        let items = (0..3u64)
            .map(|i| {
                (
                    at + i * 500,
                    SourceMessage {
                        dest: Destination::Unicast(HostId(9)),
                        payload_len: 900,
                    },
                )
            })
            .collect();
        install_script(&mut net, HostId(src), items);
    }
    let out = net.run_until(200_000);
    assert!(out.drained && out.deadlock.is_none());
    net.audit().expect("conservation");

    let blocked_busy = count(
        &net,
        |e| matches!(e, TraceEvent::WormBlocked { cause: BlockCause::OutputBusy { .. }, .. }),
    );
    let resumed_busy = count(
        &net,
        |e| matches!(e, TraceEvent::WormResumed { cause: BlockCause::OutputBusy { .. }, .. }),
    );
    assert!(blocked_busy > 0, "contention must trace OutputBusy blocks");
    assert_eq!(
        blocked_busy, resumed_busy,
        "every blocked worm resumed (the run drained)"
    );

    let stops = count(&net, |e| matches!(e, TraceEvent::StopInForce { .. }));
    let gos = count(&net, |e| matches!(e, TraceEvent::GoReceived { .. }));
    assert!(stops > 0, "long worms through one output must raise STOP");
    assert_eq!(stops, gos, "every STOP lifted by a GO (the run drained)");

    // Blocked-time histograms pair up cleanly from this trace.
    let bt = wormcast::stats::blocked_times(&net.trace);
    assert!(bt.output_busy.count() > 0);
    assert_eq!(bt.unresolved, 0, "drained run leaves no open intervals");
}

#[test]
fn v2_fragmentation_traces_park_and_resume() {
    // The V2 contention scenario of tests/switchcast.rs: a long multicast
    // to everyone while unicast cross-traffic fights for the same links —
    // replica branches get interrupted, so receivers park fragments and
    // resume them when the branch is re-driven.
    let members: Vec<HostId> = (0..10).map(HostId).collect();
    let mut net = switchcast_net(
        SwitchcastVariant::RootedInterrupt,
        members,
        TraceConfig::Memory,
    );
    install_one_shot(&mut net, HostId(2), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 3_000,
    });
    let items = (0..6u64)
        .map(|i| {
            (
                50 + i * 900,
                SourceMessage {
                    dest: Destination::Unicast(HostId(9)),
                    payload_len: 800,
                },
            )
        })
        .collect();
    install_script(&mut net, HostId(1), items);
    let out = net.run_until(2_000_000);
    assert!(out.drained && out.deadlock.is_none());
    net.audit().expect("conservation");
    assert_eq!(net.msgs.deliveries.len(), 9 + 6);

    let parked = count(&net, |e| matches!(e, TraceEvent::FragmentParked { .. }));
    let resumed = count(&net, |e| matches!(e, TraceEvent::FragmentResumed { .. }));
    assert!(parked > 0, "contended V2 must fragment");
    assert!(resumed > 0, "parked fragments must resume");
    assert!(resumed >= parked, "every park eventually resumes (run drained)");

    // Park/resume pairs carry monotonically growing reassembly progress
    // per (worm, host).
    use std::collections::HashMap;
    let mut progress: HashMap<(u64, u32), u64> = HashMap::new();
    for (_, ev) in net.trace.events() {
        if let TraceEvent::FragmentParked { worm, host, body_got }
        | TraceEvent::FragmentResumed { worm, host, body_got } = ev
        {
            let p = progress.entry((*worm, host.0)).or_insert(0);
            assert!(
                *body_got >= *p,
                "reassembly progress went backwards for worm {worm:?} at host {host:?}"
            );
            *p = *body_got;
        }
    }
    assert!(!progress.is_empty());
}

#[test]
fn v3_flush_traces_worm_flushed_and_retransmission() {
    // Provoke an actual Backward-Reset flush: the multicast's branch
    // toward host 9 stalls behind a pre-existing long unicast holding
    // switch 4's host-9 output, so the replica IDLE-fills its released
    // branches (including switch 0 -> host 1). A unicast then requests
    // that IDLE-filling output; when the port is flagged multicast-IDLE
    // (512 idle byte-times), V3 flushes the waiter back to its source,
    // which retransmits after a timeout.
    let members: Vec<HostId> = vec![1, 4, 7, 9].into_iter().map(HostId).collect();
    let mut net = switchcast_net(SwitchcastVariant::IdleFlush, members, TraceConfig::Memory);
    // Hold switch 4's output to host 9 before the multicast arrives.
    install_one_shot(&mut net, HostId(8), 100, SourceMessage {
        dest: Destination::Unicast(HostId(9)),
        payload_len: 3_000,
    });
    install_one_shot(&mut net, HostId(4), 200, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 6_000,
    });
    // Requests switch 0's host-1 output while the multicast IDLE-fills it
    // (host 0 sits on switch 0 itself, so no other multicast-held link is
    // in the way).
    install_one_shot(&mut net, HostId(0), 300, SourceMessage {
        dest: Destination::Unicast(HostId(1)),
        payload_len: 1_000,
    });
    let out = net.run_until(3_000_000);
    assert!(out.drained && out.deadlock.is_none());
    net.audit().expect("conservation");
    // Everything still arrives: the multicast to 3 members plus both
    // unicasts (the flushed one by retransmission).
    assert_eq!(net.msgs.deliveries.len(), 3 + 2);

    let flushed = count(&net, |e| matches!(e, TraceEvent::WormFlushed { .. }));
    assert!(flushed > 0, "V3 must flush the blocked unicast");
    // Each flushed worm is re-injected as a fresh worm, so injections
    // exceed the three application messages.
    let injected = count(&net, |e| matches!(e, TraceEvent::WormInjected { .. }));
    assert!(
        injected > 3,
        "flushed unicast must retransmit: {injected} injections for 3 messages"
    );
    // Flush events name the injecting host so forensics can attribute them.
    for (_, ev) in net.trace.events() {
        if let TraceEvent::WormFlushed { host, .. } = ev {
            assert_eq!(host.0, 0, "only the contending unicast sender flushes");
        }
    }
}

#[test]
fn ring_sink_keeps_newest_events_and_counts_drops() {
    let run = |trace: TraceConfig| {
        let mut net = hc_net(trace);
        for (src, at) in [(0u32, 100u64), (2, 110)] {
            install_one_shot(&mut net, HostId(src), at, SourceMessage {
                dest: Destination::Unicast(HostId(9)),
                payload_len: 1_200,
            });
        }
        let out = net.run_until(100_000);
        assert!(out.drained);
        net
    };
    let full = run(TraceConfig::Memory);
    let total = full.trace.len();
    assert!(total > 8, "need enough events to overflow the ring");

    let ring = run(TraceConfig::Ring { capacity: 8 });
    assert_eq!(ring.trace.len(), 8, "ring holds exactly its capacity");
    assert_eq!(
        ring.trace.dropped() as usize,
        total - 8,
        "every evicted event is counted"
    );
    // The ring keeps the newest suffix: identical to the tail of the full
    // trace, so post-mortem analysis sees the events closest to the end.
    let tail: Vec<_> = full.trace.events()[total - 8..].to_vec();
    assert_eq!(ring.trace.events(), &tail[..]);

    let off = run(TraceConfig::Off);
    assert!(off.trace.is_empty(), "disabled sink records nothing");
    assert_eq!(off.trace.dropped(), 0);
}
