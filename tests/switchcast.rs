//! Switch-level multicast (Section 3) end to end: worm replication in the
//! crossbar under all three deadlock-handling variants, plus the broadcast
//! special case.

use std::sync::Arc;
use wormcast::core::switchcast::{SwitchcastProtocol, SwitchcastTables, SwitchcastVariant};
use wormcast::core::Membership;
use wormcast::sim::engine::HostId;
use wormcast::sim::switchcast::SwitchcastMode;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::{install_one_shot, install_script};

/// 5 switches: a root (0) with two subtrees (1-2 and 3-4) plus a crosslink
/// between 2 and 4; two hosts per switch.
fn topo() -> Topology {
    let mut b = TopoBuilder::new(5);
    b.link(0, 1, 1);
    b.link(1, 2, 1);
    b.link(0, 3, 1);
    b.link(3, 4, 1);
    b.link(2, 4, 1); // crosslink (unused under tree-restricted routing)
    for s in 0..5 {
        b.host(s);
        b.host(s);
    }
    b.build()
}

struct Setup {
    net: Network,
    membership: Arc<Membership>,
}

fn setup(variant: SwitchcastVariant, members: Vec<HostId>) -> Setup {
    let topo = topo();
    let ud = UpDown::compute(&topo, 0);
    // V1/V3 restrict all routing to the spanning tree; V2/broadcast do not.
    let restrict = matches!(
        variant,
        SwitchcastVariant::RestrictedIdle | SwitchcastVariant::IdleFlush
    );
    let routes = ud.route_table(&topo, restrict);
    let mode = match variant {
        SwitchcastVariant::RestrictedIdle => SwitchcastMode::RestrictedIdle,
        SwitchcastVariant::RootedInterrupt => SwitchcastMode::RootedInterrupt,
        SwitchcastVariant::IdleFlush => SwitchcastMode::IdleFlush,
        SwitchcastVariant::Broadcast => SwitchcastMode::RootedInterrupt,
    };
    let membership = Membership::from_groups([(0u8, members)]);
    let tables = Arc::new(SwitchcastTables::build(
        &topo, &ud, &routes, &membership, restrict,
    ));
    let cfg = NetworkConfig::builder()
        .switchcast(mode)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
    net.set_broadcast_ports(SwitchcastTables::broadcast_ports(&topo, &ud));
    for h in 0..net.num_hosts() as u32 {
        let p = SwitchcastProtocol::new(
            HostId(h),
            variant,
            Arc::clone(&membership),
            Arc::clone(&tables),
        );
        net.set_protocol(HostId(h), Box::new(p));
    }
    Setup { net, membership }
}

fn delivered_hosts(net: &Network) -> Vec<u32> {
    let mut v: Vec<u32> = net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn v1_restricted_idle_replicates_in_the_fabric() {
    let members: Vec<HostId> = vec![1, 4, 7, 9].into_iter().map(HostId).collect();
    let mut s = setup(SwitchcastVariant::RestrictedIdle, members.clone());
    install_one_shot(&mut s.net, HostId(4), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 600,
    });
    let out = s.net.run_until(1_000_000);
    assert!(out.drained, "replication must drain");
    assert!(out.deadlock.is_none());
    s.net.audit().expect("conservation");
    assert_eq!(delivered_hosts(&s.net), vec![1, 7, 9], "members minus origin");
    // Exactly ONE worm was injected — the fabric did the copying.
    assert_eq!(s.net.stats.worms_injected, 1);
    assert_eq!(s.net.stats.sinks_injected, 3);
}

#[test]
fn v2_rooted_interrupt_serializes_and_delivers() {
    let members: Vec<HostId> = vec![0, 3, 5, 8].into_iter().map(HostId).collect();
    let mut s = setup(SwitchcastVariant::RootedInterrupt, members.clone());
    // Two concurrent multicasts from different origins.
    install_one_shot(&mut s.net, HostId(3), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 700,
    });
    install_one_shot(&mut s.net, HostId(8), 130, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 700,
    });
    let out = s.net.run_until(1_000_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    s.net.audit().expect("conservation");
    // Each origin's worm covers ALL members (its own copy is filtered at
    // delivery), so every member hears the other's message and the
    // non-origin members hear both.
    let n = s.net.msgs.deliveries.len();
    assert_eq!(n, 3 + 3, "3 deliveries per message");
    assert_eq!(s.net.stats.worms_injected, 2);
    assert_eq!(
        s.net.stats.sinks_injected,
        2 * s.membership.members(0).len() as u64
    );
}

#[test]
fn v2_fragments_under_contention_and_reassembles() {
    // Saturate one subtree so a replica blocks: hosts 1..=9 all receive a
    // long multicast while unicast cross-traffic fights for the same links.
    let members: Vec<HostId> = (0..10).map(HostId).collect();
    let mut s = setup(SwitchcastVariant::RootedInterrupt, members.clone());
    install_one_shot(&mut s.net, HostId(2), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 3_000,
    });
    // Unicast stream hammering the 0->3 subtree during the multicast.
    let items = (0..6u64)
        .map(|i| {
            (
                50 + i * 900,
                SourceMessage {
                    dest: Destination::Unicast(HostId(9)),
                    payload_len: 800,
                },
            )
        })
        .collect();
    install_script(&mut s.net, HostId(1), items);
    let out = s.net.run_until(2_000_000);
    assert!(out.drained, "contended V2 run must still drain");
    assert!(out.deadlock.is_none());
    s.net.audit().expect("conservation");
    // 9 multicast deliveries (everyone but origin) + 6 unicasts.
    assert_eq!(s.net.msgs.deliveries.len(), 9 + 6);
}

#[test]
fn v3_flushes_blocked_unicasts_and_they_retransmit() {
    let members: Vec<HostId> = vec![1, 4, 7, 9].into_iter().map(HostId).collect();
    let mut s = setup(SwitchcastVariant::IdleFlush, members);
    // A long multicast that will hold tree links with IDLE fills whenever a
    // branch stalls...
    install_one_shot(&mut s.net, HostId(4), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 6_000,
    });
    // ...while several unicasts try to cross the tree (tree-restricted
    // routing shares those links).
    for (src, at) in [(0u32, 140u64), (2, 180), (6, 220)] {
        install_one_shot(&mut s.net, HostId(src), at, SourceMessage {
            dest: Destination::Unicast(HostId(9)),
            payload_len: 1_500,
        });
    }
    let out = s.net.run_until(3_000_000);
    assert!(out.drained, "flush scheme must drain");
    assert!(out.deadlock.is_none());
    s.net.audit().expect("conservation");
    // Everything is eventually delivered: the multicast to 3 members and
    // all 3 unicasts (flushed ones come back by retransmission).
    assert_eq!(s.net.msgs.deliveries.len(), 3 + 3);
}

#[test]
fn broadcast_address_floods_every_host_once() {
    let members: Vec<HostId> = (0..10).map(HostId).collect();
    let mut s = setup(SwitchcastVariant::Broadcast, members);
    install_one_shot(&mut s.net, HostId(7), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 500,
    });
    let out = s.net.run_until(1_000_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    s.net.audit().expect("conservation");
    // Every host except the origin delivers exactly once.
    let mut hosts: Vec<u32> = s.net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    hosts.sort_unstable();
    assert_eq!(hosts, vec![0, 1, 2, 3, 4, 5, 6, 8, 9]);
    assert_eq!(s.net.stats.sinks_injected, 10, "origin's echo counts as a sink");
}

#[test]
fn broadcast_with_filtering_only_delivers_to_members() {
    let members: Vec<HostId> = vec![2, 5, 8].into_iter().map(HostId).collect();
    let mut s = setup(SwitchcastVariant::Broadcast, members);
    install_one_shot(&mut s.net, HostId(2), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 500,
    });
    let out = s.net.run_until(1_000_000);
    assert!(out.drained);
    s.net.audit().expect("conservation");
    assert_eq!(delivered_hosts(&s.net), vec![5, 8], "non-members filter");
}
