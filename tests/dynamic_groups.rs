//! End-to-end dynamic group membership: the manager extension
//! (`core::manager`) running over the real fabric — joins and leaves
//! propagate, and multicasts always follow the current membership.

use wormcast::core::manager::{GroupOp, ManagedHcProtocol};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::{TopoBuilder, UpDown};
use wormcast::traffic::script::install_one_shot;

const GROUP: u8 = 3;

/// Six hosts on three switches; host 0 is the group manager.
fn build() -> (Network, Vec<Vec<u64>>) {
    let mut b = TopoBuilder::new(3);
    b.link(0, 1, 1);
    b.link(1, 2, 1);
    for s in 0..3 {
        b.host(s);
        b.host(s);
    }
    let topo = b.build();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let mut net = Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::builder().build().expect("valid config"));
    // Membership timeline (times in byte-times):
    //   t=100..: hosts 0, 2, 4 join
    //   t=20_000: host 5 joins
    //   t=40_000: host 2 leaves
    let mut tokens: Vec<Vec<u64>> = vec![Vec::new(); 6];
    for h in 0..6u32 {
        let mut p = ManagedHcProtocol::new(HostId(h), HostId(0));
        match h {
            0 | 2 | 4 => tokens[h as usize].push(p.script(GroupOp::Join(GROUP))),
            5 => tokens[5].push(p.script(GroupOp::Join(GROUP))),
            _ => {}
        }
        if h == 2 {
            tokens[2].push(p.script(GroupOp::Leave(GROUP)));
        }
        net.set_protocol(HostId(h), Box::new(p));
    }
    // Post the scripted ops through the driver API.
    net.post_timer(HostId(0), 100, tokens[0][0]);
    net.post_timer(HostId(2), 120, tokens[2][0]);
    net.post_timer(HostId(4), 140, tokens[4][0]);
    net.post_timer(HostId(5), 20_000, tokens[5][0]);
    net.post_timer(HostId(2), 40_000, tokens[2][1]);
    (net, tokens)
}

#[test]
fn multicasts_track_joins_and_leaves() {
    let (mut net, _tokens) = build();
    let mcast = SourceMessage {
        dest: Destination::Multicast(GROUP),
        payload_len: 300,
    };
    // Phase 1 (after initial joins, before host 5 joins) and phase 3
    // (after host 2 left): origin 0. One script per host — a host has one
    // traffic source.
    wormcast::traffic::script::install_script(
        &mut net,
        HostId(0),
        vec![(10_000, mcast), (60_000, mcast)],
    );
    // Phase 2 (after host 5 joined): origin 4.
    install_one_shot(&mut net, HostId(4), 30_000, mcast);
    let out = net.run_until(500_000);
    assert!(out.drained, "dynamic-group run must drain");
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");

    // Collect per-phase delivery sets.
    let phase = |lo: u64, hi: u64| -> Vec<u32> {
        let mut v: Vec<u32> = net
            .msgs
            .deliveries
            .iter()
            .filter(|d| d.at >= lo && d.at < hi)
            .map(|d| d.host.0)
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(phase(10_000, 30_000), vec![2, 4], "initial members minus origin");
    assert_eq!(phase(30_000, 60_000), vec![0, 2, 5], "host 5 now included");
    assert_eq!(phase(60_000, 500_000), vec![4, 5], "host 2 no longer receives");
}

#[test]
fn leave_of_unknown_member_is_harmless() {
    let mut b = TopoBuilder::new(1);
    b.host(0);
    b.host(0);
    let topo = b.build();
    let ud = UpDown::compute(&topo, 0);
    let mut net = Network::build(
        &topo.to_fabric_spec(),
        ud.route_table(&topo, false),
        NetworkConfig::builder().build().expect("valid config"),
    );
    let mut mgr = ManagedHcProtocol::new(HostId(0), HostId(0));
    let t = mgr.script(GroupOp::Leave(GROUP));
    net.set_protocol(HostId(0), Box::new(mgr));
    let mut other = ManagedHcProtocol::new(HostId(1), HostId(0));
    let t2 = other.script(GroupOp::Leave(GROUP));
    net.set_protocol(HostId(1), Box::new(other));
    net.post_timer(HostId(0), 10, t);
    net.post_timer(HostId(1), 20, t2);
    let out = net.run_until(100_000);
    assert!(out.drained);
    net.audit().expect("conservation");
}
