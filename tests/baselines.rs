//! End-to-end behaviour of the two baselines the paper argues against,
//! plus the liveness watchdog.

use std::collections::HashMap;
use std::sync::Arc;
use wormcast::core::credit::{CreditConfig, CreditProtocol};
use wormcast::core::ordering::check_total_order;
use wormcast::core::{Membership, UnicastRepeatConfig, UnicastRepeatProtocol};
use wormcast::sim::engine::HostId;
use wormcast::sim::network::RouteTable;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::tree::{MulticastTree, TreeShape};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::{install_one_shot, install_script};

fn star_topology() -> Topology {
    // A root switch with 3 leaf switches, 2 hosts each (8 hosts total).
    let mut b = TopoBuilder::new(4);
    b.link(0, 1, 1);
    b.link(0, 2, 1);
    b.link(0, 3, 1);
    for s in 0..4 {
        b.host(s);
        b.host(s);
    }
    b.build()
}

fn build(topo: &Topology) -> Network {
    let ud = UpDown::compute(topo, 0);
    Network::build(
        &topo.to_fabric_spec(),
        ud.route_table(topo, false),
        NetworkConfig::builder().build().expect("valid config"),
    )
}

#[test]
fn credit_scheme_delivers_and_totally_orders() {
    let topo = star_topology();
    let mut net = build(&topo);
    let members: Vec<HostId> = vec![0, 2, 4, 6].into_iter().map(HostId).collect();
    let membership = Membership::from_groups([(0u8, members.clone())]);
    let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
    let mut trees = HashMap::new();
    trees.insert(0u8, tree);
    let trees = Arc::new(trees);
    let cfg = CreditConfig {
        manager: HostId(0),
        num_hosts: 8,
        initial_credits: 6_000, // enough for ~3 multicasts before the token
        token_period: 40_000,
    };
    for h in 0..8u32 {
        net.set_protocol(
            HostId(h),
            Box::new(CreditProtocol::new(
                HostId(h),
                cfg,
                Arc::clone(&membership),
                Arc::clone(&trees),
            )),
        );
    }
    // More multicast bytes than the initial credit pool: later messages
    // must wait for the credit-gathering token to replenish the manager.
    for (i, &m) in members.iter().enumerate() {
        let items = (0..3u64)
            .map(|k| {
                (
                    100 + i as u64 * 37 + k * 5_000,
                    SourceMessage {
                        dest: Destination::Multicast(0),
                        payload_len: 600,
                    },
                )
            })
            .collect();
        install_script(&mut net, m, items);
    }
    let out = net.run_until(20_000_000);
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    // 12 messages x 3 other members each.
    assert_eq!(net.msgs.deliveries.len(), 12 * 3, "credit scheme must deliver all");
    assert!(
        check_total_order(&net.msgs, 0, &members).is_none(),
        "sequenced grants must give a total order"
    );
}

#[test]
fn broadcast_filter_baseline_wastes_receptions() {
    let topo = star_topology();
    let mut net = build(&topo);
    let members: Vec<HostId> = vec![1, 3, 5].into_iter().map(HostId).collect();
    let membership = Membership::from_groups([(0u8, members)]);
    for h in 0..8u32 {
        net.set_protocol(
            HostId(h),
            Box::new(UnicastRepeatProtocol::new(
                HostId(h),
                UnicastRepeatConfig {
                    broadcast_filter: true,
                    num_hosts: 8,
                },
                Arc::clone(&membership),
            )),
        );
    }
    install_one_shot(&mut net, HostId(1), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 400,
    });
    let out = net.run_until(1_000_000);
    assert!(out.drained);
    net.audit().expect("conservation");
    // 7 copies hit the wire (every other host), only 2 members deliver.
    assert_eq!(net.stats.worms_injected, 7);
    assert_eq!(net.msgs.deliveries.len(), 2);
    // The five non-member receptions were wasted work — the paper's
    // complaint about the stock broadcast facility.
    assert_eq!(net.stats.worms_delivered, 7, "all copies consumed adapters");
}

#[test]
fn watchdog_detects_deadlock_mid_run() {
    // The clockwise-ring deadlock from tests/deadlock.rs, but detected by
    // the periodic watchdog rather than at the deadline.
    let mut b = TopoBuilder::new(4);
    b.link(0, 1, 1);
    b.link(1, 2, 1);
    b.link(2, 3, 1);
    b.link(3, 0, 1);
    for s in 0..4 {
        b.host(s);
    }
    let topo = b.build();
    let mut routes = RouteTable::new(4);
    let cw_port = [0u8, 1, 1, 1];
    for src in 0..4usize {
        routes.set(
            HostId(src as u32),
            HostId(((src + 2) % 4) as u32),
            vec![cw_port[src], cw_port[(src + 1) % 4], 2],
        );
    }
    let cfg = NetworkConfig::builder()
        .watchdog_interval(5_000)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
    let groups = Membership::from_groups([(0u8, vec![HostId(0)])]);
    for h in 0..4u32 {
        net.set_protocol(
            HostId(h),
            Box::new(wormcast::core::HcProtocol::new(
                HostId(h),
                wormcast::core::HcConfig::store_and_forward(),
                Arc::clone(&groups),
            )),
        );
    }
    for src in 0..4u32 {
        install_one_shot(&mut net, HostId(src), 100, SourceMessage {
            dest: Destination::Unicast(HostId((src + 2) % 4)),
            payload_len: 2_000,
        });
    }
    net.run_until(100_000);
    let report = net.deadlock_seen().expect("watchdog must flag the deadlock");
    assert!(report.cycle.len() >= 2, "cycle reconstructed: {report:?}");
}
