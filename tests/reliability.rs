//! End-to-end reliability: the ACK/NACK + retransmission machinery must
//! deliver exactly once despite corrupted worms and tiny buffers.

use std::sync::Arc;
use wormcast::core::buffers::PoolConfig;
use wormcast::core::ordering::check_total_order;
use wormcast::core::reliable::{AckNackConfig, Reliability};
use wormcast::core::{HcConfig, HcProtocol, Membership, TreeConfig, TreeProtocol};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{FaultConfig, Network, NetworkConfig};
use wormcast::topo::tree::{MulticastTree, TreeShape};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::install_script;

fn line4() -> Topology {
    let mut b = TopoBuilder::new(4);
    for s in 0..3 {
        b.link(s, s + 1, 1);
    }
    for s in 0..4 {
        b.host(s);
    }
    b.build()
}

fn acknack() -> Reliability {
    Reliability::AckNack(AckNackConfig {
        pool: PoolConfig {
            class1: 4_000,
            class2: 4_000,
            dma_extension: 0,
        },
        single_class: false,
        retry_timeout: 10_000,
        retry_jitter: 5_000,
        max_retries: 200,
    })
}

fn build(corrupt_prob: f64, seed: u64) -> Network {
    let topo = line4();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let cfg = NetworkConfig::builder()
        .faults(FaultConfig::try_new(corrupt_prob).expect("probability in range"))
        .seed(seed)
        .build()
        .expect("valid config");
    Network::build(&topo.to_fabric_spec(), routes, cfg)
}

fn hc_all(net: &mut Network, cfg: HcConfig, groups: &Arc<Membership>) {
    for h in 0..net.num_hosts() as u32 {
        net.set_protocol(
            HostId(h),
            Box::new(HcProtocol::new(HostId(h), cfg, Arc::clone(groups))),
        );
    }
}

fn send_bursts(net: &mut Network, per_host: u64) {
    for h in 0..4u32 {
        let items = (0..per_host)
            .map(|i| {
                (
                    100 + h as u64 * 13 + i * 6_000,
                    SourceMessage {
                        dest: Destination::Multicast(0),
                        payload_len: 900,
                    },
                )
            })
            .collect();
        install_script(net, HostId(h), items);
    }
}

#[test]
fn corruption_is_recovered_by_retransmission() {
    let mut net = build(0.15, 42);
    let groups = Membership::from_groups([(0u8, (0..4).map(HostId).collect())]);
    let cfg = HcConfig {
        reliability: acknack(),
        ..HcConfig::store_and_forward()
    };
    hc_all(&mut net, cfg, &groups);
    send_bursts(&mut net, 5);
    let out = net.run_until(20_000_000);
    net.audit().expect("conservation");
    assert!(out.deadlock.is_none());
    assert!(
        net.stats.worms_corrupt > 0,
        "the fault injector must actually corrupt something \
         (injected {})",
        net.stats.worms_injected
    );
    // 20 messages x 3 other members each, delivered exactly once.
    assert_eq!(
        net.msgs.deliveries.len(),
        20 * 3,
        "reliable multicast must deliver exactly once per member \
         (corrupt={}, injected={})",
        net.stats.worms_corrupt,
        net.stats.worms_injected
    );
    // No duplicates per (message, host).
    let mut seen = std::collections::HashSet::new();
    for d in &net.msgs.deliveries {
        assert!(
            seen.insert((d.msg, d.host)),
            "duplicate delivery of {:?} at {:?}",
            d.msg,
            d.host
        );
    }
}

#[test]
fn unreliable_mode_loses_corrupted_worms() {
    let mut net = build(0.15, 42);
    let groups = Membership::from_groups([(0u8, (0..4).map(HostId).collect())]);
    hc_all(&mut net, HcConfig::store_and_forward(), &groups);
    send_bursts(&mut net, 5);
    net.run_until(20_000_000);
    net.audit().expect("conservation");
    assert!(
        net.msgs.deliveries.len() < 60,
        "without ACK/NACK, corruption must cost deliveries (got {})",
        net.msgs.deliveries.len()
    );
}

#[test]
fn serialized_hc_is_totally_ordered_and_reliable_together() {
    let mut net = build(0.10, 7);
    let members: Vec<HostId> = (0..4).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members.clone())]);
    let cfg = HcConfig {
        serialize: true,
        reliability: acknack(),
        ..HcConfig::store_and_forward()
    };
    hc_all(&mut net, cfg, &groups);
    send_bursts(&mut net, 4);
    let out = net.run_until(30_000_000);
    net.audit().expect("conservation");
    assert!(out.deadlock.is_none());
    assert!(
        check_total_order(&net.msgs, 0, &members).is_none(),
        "serialized Hamiltonian must deliver in one total order"
    );
    // 16 messages, every member but the origin hears each.
    assert_eq!(net.msgs.deliveries.len(), 16 * 3);
}

#[test]
fn root_serialized_tree_is_totally_ordered() {
    let mut net = build(0.0, 3);
    let members: Vec<HostId> = (0..4).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members.clone())]);
    let _ = groups;
    let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
    let mut trees = std::collections::HashMap::new();
    trees.insert(0u8, tree);
    let trees = Arc::new(trees);
    for h in 0..4u32 {
        net.set_protocol(
            HostId(h),
            Box::new(TreeProtocol::new(
                HostId(h),
                TreeConfig::store_and_forward(),
                Arc::clone(&trees),
            )),
        );
    }
    send_bursts(&mut net, 6);
    let out = net.run_until(20_000_000);
    assert!(out.drained);
    net.audit().expect("conservation");
    assert!(
        check_total_order(&net.msgs, 0, &members).is_none(),
        "root-serialized tree must deliver in one total order"
    );
    assert_eq!(net.msgs.deliveries.len(), 24 * 3);
}
