//! Deadlock demonstrations and preventions — the paper's core claims.
//!
//! 1. Violating up/down routing creates a circular channel wait in the
//!    fabric (the situation of Figure 3); the simulator detects the cycle.
//! 2. The same traffic under up/down routes always completes.
//! 3. Opposing multicasts with a single merged buffer pool starve each
//!    other (Figure 6); the two-buffer-class rule (Figure 7) fixes it.

use std::sync::Arc;
use wormcast::core::buffers::PoolConfig;
use wormcast::core::reliable::{AckNackConfig, Reliability};
use wormcast::core::{HcConfig, HcProtocol, Membership};
use wormcast::sim::engine::HostId;
use wormcast::sim::network::RouteTable;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::install_one_shot;

/// Ring of 4 switches, one host each. Ports: link i connects switch i
/// (port allocated in order) to switch i+1.
fn ring4() -> Topology {
    let mut b = TopoBuilder::new(4);
    b.link(0, 1, 1); // sw0 port0 <-> sw1 port0
    b.link(1, 2, 1); // sw1 port1 <-> sw2 port0
    b.link(2, 3, 1); // sw2 port1 <-> sw3 port0
    b.link(3, 0, 1); // sw3 port1 <-> sw0 port1
    for s in 0..4 {
        b.host(s); // host port = 2 on each switch
    }
    b.build()
}

/// Hand-built CLOCKWISE routes for host i -> host (i+2) % 4: two switch
/// hops always in the ring direction. This deliberately violates up/down —
/// together the four routes form a channel-dependency cycle.
fn clockwise_routes() -> RouteTable {
    let mut rt = RouteTable::new(4);
    // Clockwise out-port at switch s towards s+1: switch 0: port 0;
    // switch 1: port 1; switch 2: port 1; switch 3: port 1.
    let cw_port = [0u8, 1, 1, 1];
    let host_port = 2u8;
    for src in 0..4usize {
        let dst = (src + 2) % 4;
        let mid = (src + 1) % 4;
        rt.set(
            HostId(src as u32),
            HostId(dst as u32),
            vec![cw_port[src], cw_port[mid], host_port],
        );
    }
    rt
}

fn install_plain_hc(net: &mut Network) {
    let groups = Membership::from_groups([(0u8, vec![HostId(0)])]);
    for h in 0..net.num_hosts() as u32 {
        let p = HcProtocol::new(HostId(h), HcConfig::store_and_forward(), Arc::clone(&groups));
        net.set_protocol(HostId(h), Box::new(p));
    }
}

/// All four hosts simultaneously send a long worm two hops clockwise.
fn inject_cycle_traffic(net: &mut Network) {
    for src in 0..4u32 {
        install_one_shot(net, HostId(src), 100, SourceMessage {
            dest: Destination::Unicast(HostId((src + 2) % 4)),
            payload_len: 2000, // far larger than the total ring slack
        });
    }
}

#[test]
fn cyclic_routes_deadlock_and_the_cycle_is_reconstructed() {
    let topo = ring4();
    let mut net = Network::build(
        &topo.to_fabric_spec(),
        clockwise_routes(),
        NetworkConfig::builder().build().expect("valid config"),
    );
    install_plain_hc(&mut net);
    inject_cycle_traffic(&mut net);
    let out = net.run_until(1_000_000);
    let report = out.deadlock.expect("clockwise ring routing must deadlock");
    assert!(
        report.stuck_worms > 0,
        "worms must be stuck: {report:?}"
    );
    assert!(
        report.cycle.len() >= 2,
        "the wait-for cycle must be reconstructed: {report:?}"
    );
    assert!(
        net.stats.worms_delivered < 4,
        "not all worms may complete under a cyclic wait"
    );

    // Forensics: the report carries annotated wait-for edges naming the
    // blocked worms, the channels they wait on, and the worms holding them.
    assert!(!report.edges.is_empty(), "forensics must list wait-for edges");
    assert!(
        report.edges.iter().any(|e| e.worm.is_some()),
        "some edge must name the worm that is waiting: {report}"
    );
    assert!(
        report.edges.iter().any(|e| e.holds.is_some()),
        "some edge must name the worm holding the contended resource: {report}"
    );
    // The human-readable dump names switches, worms, and wait causes.
    let dump = report.to_string();
    assert!(dump.contains("deadlock forensics"), "dump header: {dump}");
    assert!(dump.contains("worm"), "dump must name worms: {dump}");
    assert!(dump.contains("cycle:"), "dump must render the cycle: {dump}");
    assert!(
        dump.contains("STOP in force on ch") || dump.contains("held"),
        "dump must explain why each edge waits: {dump}"
    );
}

#[test]
fn updown_routes_complete_the_same_traffic() {
    let topo = ring4();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let mut net = Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::builder().build().expect("valid config"));
    install_plain_hc(&mut net);
    inject_cycle_traffic(&mut net);
    let out = net.run_until(1_000_000);
    assert!(out.drained, "up/down traffic must drain");
    assert!(out.deadlock.is_none(), "up/down routing is deadlock-free");
    net.audit().expect("conservation");
    assert_eq!(net.msgs.deliveries.len(), 4);
}

/// Ring of 8 switches/hosts, one group of all 8, every host multicasting
/// at once with pools that hold exactly one worm — maximum buffer
/// pressure, exercising the circuit's ID reversal.
fn buffer_pressure_net(single_class: bool) -> Network {
    let mut b = TopoBuilder::new(8);
    for s in 0..8 {
        b.link(s, (s + 1) % 8, 1);
    }
    for s in 0..8 {
        b.host(s);
    }
    let topo = b.build();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let mut net = Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::builder().build().expect("valid config"));
    let members: Vec<HostId> = (0..8).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members)]);
    let cfg = HcConfig {
        reliability: Reliability::AckNack(AckNackConfig {
            pool: PoolConfig::tight(1100),
            single_class,
            retry_timeout: 8_000,
            retry_jitter: 4_000,
            max_retries: 120,
        }),
        ..HcConfig::store_and_forward()
    };
    for h in 0..8u32 {
        let p = HcProtocol::new(HostId(h), cfg, Arc::clone(&groups));
        net.set_protocol(HostId(h), Box::new(p));
    }
    // Sustained pressure: six messages per host, closely spaced, so the
    // single-pool arm cannot ride out one transient contention episode.
    for h in 0..8u32 {
        let items = (0..6u64)
            .map(|i| {
                (
                    100 + h as u64 + i * 2_500,
                    SourceMessage {
                        dest: Destination::Multicast(0),
                        payload_len: 1000,
                    },
                )
            })
            .collect();
        wormcast::traffic::script::install_script(&mut net, HostId(h), items);
    }
    net
}

#[test]
fn two_buffer_classes_complete_under_pressure() {
    let mut net = buffer_pressure_net(false);
    let out = net.run_until(60_000_000);
    net.audit().expect("conservation");
    assert!(out.deadlock.is_none());
    // 48 messages x 7 receivers each.
    assert_eq!(
        net.msgs.deliveries.len(),
        48 * 7,
        "every delivery must complete with the two-class rule \
         (refused={} injected={})",
        net.stats.worms_refused,
        net.stats.worms_injected
    );
}

#[test]
fn single_class_pool_thrashes_under_the_same_pressure() {
    let mut two = buffer_pressure_net(false);
    two.run_until(60_000_000);
    two.audit().expect("conservation");
    let mut one = buffer_pressure_net(true);
    one.run_until(60_000_000);
    one.audit().expect("conservation");
    eprintln!(
        "two-class: delivered {} injected {} refused {}",
        two.msgs.deliveries.len(),
        two.stats.worms_injected,
        two.stats.worms_refused
    );
    eprintln!(
        "single:    delivered {} injected {} refused {}",
        one.msgs.deliveries.len(),
        one.stats.worms_injected,
        one.stats.worms_refused
    );
    // The merged pool must visibly thrash: many more NACK-drops and
    // retransmissions for the same workload (the Figure 6 cycles keep
    // re-forming until timeouts randomize them apart), and it may fail to
    // complete some deliveries at all.
    assert!(
        one.stats.worms_refused > 2 * two.stats.worms_refused.max(1),
        "single-class refusals ({}) should dwarf two-class ({})",
        one.stats.worms_refused,
        two.stats.worms_refused
    );
}
