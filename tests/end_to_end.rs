//! End-to-end integration: topology -> up/down routes -> fabric -> protocols.

use std::sync::Arc;
use wormcast::core::{HcConfig, HcProtocol, Membership, TreeConfig, TreeProtocol};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::trace::TraceConfig;
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::tree::{MulticastTree, TreeShape};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::{install_one_shot, install_script};

/// A 4-switch ring, one host per switch.
fn ring4() -> Topology {
    let mut b = TopoBuilder::new(4);
    b.link(0, 1, 1);
    b.link(1, 2, 1);
    b.link(2, 3, 1);
    b.link(3, 0, 1);
    for s in 0..4 {
        b.host(s);
    }
    b.build()
}

fn build_net(topo: &Topology, trace: TraceConfig) -> Network {
    let ud = UpDown::compute(topo, 0);
    let routes = ud.route_table(topo, false);
    let cfg = NetworkConfig::builder()
        .trace(trace)
        .build()
        .expect("valid config");
    Network::build(&topo.to_fabric_spec(), routes, cfg)
}

fn install_hc(net: &mut Network, cfg: HcConfig, groups: &Arc<Membership>) {
    for h in 0..net.num_hosts() as u32 {
        let p = HcProtocol::new(HostId(h), cfg, Arc::clone(groups));
        net.set_protocol(HostId(h), Box::new(p));
    }
}

#[test]
fn unicast_delivery_and_latency() {
    let topo = ring4();
    let mut net = build_net(&topo, TraceConfig::Off);
    let groups = Membership::from_groups([(0u8, vec![HostId(0), HostId(2)])]);
    install_hc(&mut net, HcConfig::store_and_forward(), &groups);
    install_one_shot(&mut net, HostId(0), 100, SourceMessage {
        dest: Destination::Unicast(HostId(1)),
        payload_len: 100,
    });
    let out = net.run_until(10_000);
    assert!(out.drained, "one message must drain");
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    assert_eq!(net.msgs.deliveries.len(), 1);
    let d = &net.msgs.deliveries[0];
    assert_eq!(d.host, HostId(1));
    // Wire length: 2 route bytes (switch hop + host port) + 8 header +
    // 100 payload + 1 tail = 111; plus per-hop pipeline latencies.
    let latency = d.at - 100;
    assert!(
        (111..=140).contains(&latency),
        "unexpected unicast latency {latency}"
    );
}

#[test]
fn all_pairs_unicast_conservation_and_determinism() {
    let run = |seed: u64| {
        let topo = ring4();
        let ud = UpDown::compute(&topo, 0);
        let routes = ud.route_table(&topo, false);
        let cfg = NetworkConfig::builder()
            .seed(seed)
            .build()
            .expect("valid config");
        let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
        let groups = Membership::from_groups([(0u8, vec![HostId(0)])]);
        install_hc(&mut net, HcConfig::store_and_forward(), &groups);
        for src in 0..4u32 {
            let mut items = Vec::new();
            for (i, dst) in (0..4u32).filter(|&d| d != src).enumerate() {
                items.push((
                    50 + 37 * src as u64 + 400 * i as u64,
                    SourceMessage {
                        dest: Destination::Unicast(HostId(dst)),
                        payload_len: 200 + dst,
                    },
                ));
            }
            install_script(&mut net, HostId(src), items);
        }
        let out = net.run_until(1_000_000);
        assert!(out.drained);
        assert!(out.deadlock.is_none());
        net.audit().expect("conservation");
        assert_eq!(net.msgs.deliveries.len(), 12, "4 hosts x 3 destinations");
        net.msgs.deliveries.clone()
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "identical seeds must replay identically"
    );
}

#[test]
fn hamiltonian_multicast_reaches_all_members() {
    let topo = ring4();
    let mut net = build_net(&topo, TraceConfig::Memory);
    let members: Vec<HostId> = (0..4).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members.clone())]);
    install_hc(&mut net, HcConfig::store_and_forward(), &groups);
    install_one_shot(&mut net, HostId(2), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 400,
    });
    let out = net.run_until(100_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    let mut delivered: Vec<u32> = net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    delivered.sort_unstable();
    assert_eq!(delivered, vec![0, 1, 3], "everyone but the origin");
    // Circuit order from origin 2: 3 first, then 0, then 1.
    let mut by_time = net.msgs.deliveries.clone();
    by_time.sort_by_key(|d| d.at);
    let order: Vec<u32> = by_time.iter().map(|d| d.host.0).collect();
    assert_eq!(order, vec![3, 0, 1], "store-and-forward circuit order");
}

#[test]
fn hamiltonian_cut_through_is_faster_at_light_load() {
    let run = |cfg: HcConfig| {
        let topo = ring4();
        let mut net = build_net(&topo, TraceConfig::Off);
        let members: Vec<HostId> = (0..4).map(HostId).collect();
        let groups = Membership::from_groups([(0u8, members)]);
        install_hc(&mut net, cfg, &groups);
        install_one_shot(&mut net, HostId(0), 100, SourceMessage {
            dest: Destination::Multicast(0),
            payload_len: 1000,
        });
        let out = net.run_until(1_000_000);
        assert!(out.drained);
        net.audit().expect("conservation");
        // Time the last member hears the message.
        net.msgs.deliveries.iter().map(|d| d.at).max().unwrap()
    };
    let snf = run(HcConfig::store_and_forward());
    let ct = run(HcConfig::cut_through());
    assert!(
        ct + 500 < snf,
        "cut-through ({ct}) must beat store-and-forward ({snf}) when idle"
    );
}

#[test]
fn tree_multicast_reaches_all_members() {
    let topo = ring4();
    let mut net = build_net(&topo, TraceConfig::Off);
    let members: Vec<HostId> = (0..4).map(HostId).collect();
    let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
    let mut trees = std::collections::HashMap::new();
    trees.insert(0u8, tree);
    let trees = Arc::new(trees);
    for h in 0..4u32 {
        let p = TreeProtocol::new(HostId(h), TreeConfig::store_and_forward(), Arc::clone(&trees));
        net.set_protocol(HostId(h), Box::new(p));
    }
    install_one_shot(&mut net, HostId(3), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 400,
    });
    let out = net.run_until(100_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    let mut delivered: Vec<u32> = net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    delivered.sort_unstable();
    assert_eq!(delivered, vec![0, 1, 2], "all members except origin 3");
}

#[test]
fn contention_is_resolved_by_backpressure_without_loss() {
    // Two hosts blast the same destination at the same instant; the switch
    // serialises the worms, nothing is dropped.
    let topo = ring4();
    let mut net = build_net(&topo, TraceConfig::Memory);
    let groups = Membership::from_groups([(0u8, vec![HostId(0)])]);
    install_hc(&mut net, HcConfig::store_and_forward(), &groups);
    for src in [0u32, 2u32] {
        let items = (0..5u64)
            .map(|i| {
                (
                    100 + i * 10,
                    SourceMessage {
                        dest: Destination::Unicast(HostId(1)),
                        payload_len: 2000,
                    },
                )
            })
            .collect();
        install_script(&mut net, HostId(src), items);
    }
    let out = net.run_until(1_000_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    assert_eq!(net.msgs.deliveries.len(), 10, "no loss under contention");
    assert_eq!(net.stats.worms_refused, 0);
    // Backpressure must actually have engaged: 10 x 2 KB worms racing for
    // one 1-byte/byte-time host link.
    use wormcast::sim::trace::TraceEvent;
    let stops = net
        .trace
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::StopInForce { .. }))
        .count();
    assert!(stops > 0, "expected STOP/GO activity under contention");
}
