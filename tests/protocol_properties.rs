//! End-to-end property tests: for random topologies, group memberships and
//! origins, every multicast scheme delivers exactly-once to exactly the
//! right hosts, with conservation intact.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wormcast::core::switchcast::{SwitchcastProtocol, SwitchcastTables, SwitchcastVariant};
use wormcast::core::{
    HcConfig, HcProtocol, Membership, TreeConfig, TreeMode, TreeProtocol,
};
use wormcast::sim::engine::HostId;
use wormcast::sim::switchcast::SwitchcastMode;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::irregular::{irregular, IrregularSpec};
use wormcast::topo::tree::{MulticastTree, TreeShape};
use wormcast::topo::UpDown;
use wormcast::traffic::script::install_one_shot;

#[derive(Clone, Copy, Debug)]
enum Proto {
    HcSnf,
    HcCut,
    HcSerialized,
    TreeRoot,
    TreeBroadcast,
    SwitchV1,
    SwitchV2,
}

fn run_one(
    proto: Proto,
    topo_seed: u64,
    n_switches: usize,
    member_bits: u16,
    origin_pick: usize,
) -> Result<(), TestCaseError> {
    let topo = irregular(
        IrregularSpec {
            num_switches: n_switches,
            extra_links: 3,
            hosts_per_switch: 2,
            link_delay: 1,
        },
        topo_seed,
    );
    let nh = topo.num_hosts();
    let ud = UpDown::compute(&topo, 0);
    let restrict = matches!(proto, Proto::SwitchV1);
    let routes = ud.route_table(&topo, restrict);
    let members: Vec<HostId> = (0..nh as u32)
        .filter(|&h| member_bits & (1 << (h % 16)) != 0)
        .map(HostId)
        .collect();
    prop_assume!(members.len() >= 2);
    let origin = members[origin_pick % members.len()];
    let membership = Membership::from_groups([(0u8, members.clone())]);
    let mode = match proto {
        Proto::SwitchV1 => SwitchcastMode::RestrictedIdle,
        Proto::SwitchV2 => SwitchcastMode::RootedInterrupt,
        _ => SwitchcastMode::Off,
    };
    let cfg = NetworkConfig::builder()
        .switchcast(mode)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes.clone(), cfg);
    match proto {
        Proto::HcSnf | Proto::HcCut | Proto::HcSerialized => {
            let cfg = match proto {
                Proto::HcCut => HcConfig::cut_through(),
                Proto::HcSerialized => HcConfig {
                    serialize: true,
                    ..HcConfig::store_and_forward()
                },
                _ => HcConfig::store_and_forward(),
            };
            for h in 0..nh as u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(HcProtocol::new(HostId(h), cfg, Arc::clone(&membership))),
                );
            }
        }
        Proto::TreeRoot | Proto::TreeBroadcast => {
            let cfg = TreeConfig {
                mode: if matches!(proto, Proto::TreeRoot) {
                    TreeMode::RootSerialized
                } else {
                    TreeMode::BroadcastFromOrigin
                },
                cut_through_first: false,
                reliability: wormcast::core::Reliability::None,
            };
            let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
            let mut trees = HashMap::new();
            trees.insert(0u8, tree);
            let trees = Arc::new(trees);
            for h in 0..nh as u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(TreeProtocol::new(HostId(h), cfg, Arc::clone(&trees))),
                );
            }
        }
        Proto::SwitchV1 | Proto::SwitchV2 => {
            let variant = if matches!(proto, Proto::SwitchV1) {
                SwitchcastVariant::RestrictedIdle
            } else {
                SwitchcastVariant::RootedInterrupt
            };
            let tables = Arc::new(SwitchcastTables::build(
                &topo,
                &ud,
                &routes,
                &membership,
                restrict,
            ));
            net.set_broadcast_ports(SwitchcastTables::broadcast_ports(&topo, &ud));
            for h in 0..nh as u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(SwitchcastProtocol::new(
                        HostId(h),
                        variant,
                        Arc::clone(&membership),
                        Arc::clone(&tables),
                    )),
                );
            }
        }
    }
    install_one_shot(&mut net, origin, 50, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 300,
    });
    let out = net.run_until(5_000_000);
    prop_assert!(out.drained, "{proto:?} failed to drain");
    prop_assert!(out.deadlock.is_none(), "{proto:?} deadlocked");
    net.audit().map_err(TestCaseError::fail)?;
    // Exactly-once delivery to every member except the origin.
    let mut got: Vec<u32> = net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    got.sort_unstable();
    let mut want: Vec<u32> = members
        .iter()
        .filter(|&&m| m != origin)
        .map(|m| m.0)
        .collect();
    want.sort_unstable();
    prop_assert_eq!(got, want, "{:?}: wrong delivery set", proto);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hc_store_and_forward_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::HcSnf, seed, n, bits, pick)?;
    }

    #[test]
    fn hc_cut_through_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::HcCut, seed, n, bits, pick)?;
    }

    #[test]
    fn hc_serialized_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::HcSerialized, seed, n, bits, pick)?;
    }

    #[test]
    fn tree_root_serialized_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::TreeRoot, seed, n, bits, pick)?;
    }

    #[test]
    fn tree_broadcast_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::TreeBroadcast, seed, n, bits, pick)?;
    }

    #[test]
    fn switchcast_v1_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::SwitchV1, seed, n, bits, pick)?;
    }

    #[test]
    fn switchcast_v2_delivers_exactly_once(
        seed in 0u64..300, n in 2usize..7, bits in 1u16.., pick in 0usize..16,
    ) {
        run_one(Proto::SwitchV2, seed, n, bits, pick)?;
    }
}
