//! Differential equivalence of the span-batched link engine.
//!
//! `SimMode::SpanBatched` is an engine optimisation, never a semantic mode:
//! running the same seeded workload under `PerByte` and `SpanBatched` must
//! produce bit-identical delivery records and network statistics — only the
//! `events_scheduled` / `events_fired` engine-cost counters may differ (the
//! whole point of the optimisation is that they do). These tests drive both
//! modes over the paper's three fabric families (8×8 torus, 24-node
//! shufflenet, the Myrinet testbed line) and over random irregular
//! topologies, then compare everything — including the rendered JSONL
//! lifecycle trace: a traced span-batched run keeps the fast path live
//! and records extra `span-*` engine events, and erasing those
//! ([`wormcast_bench::trace_io::expand_spans`]) must reproduce the
//! per-byte trace byte-for-byte (DESIGN.md §3.2).

use proptest::prelude::*;
use wormcast::sim::network::{NetStats, SimMode};
use wormcast::sim::trace::TraceConfig;
use wormcast::topo::irregular::{irregular, IrregularSpec};
use wormcast::topo::shufflenet::shufflenet24;
use wormcast::topo::torus::torus;
use wormcast::topo::{TopoBuilder, Topology};
use wormcast_bench::fig10::figure_tree_scheme;
use wormcast_bench::runner::{build_network, SimSetup};
use wormcast_bench::trace_io::{expand_spans, validate_jsonl};
use wormcast_bench::Scheme;
use wormcast_core::HcConfig;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

/// Everything a run observably produces: sorted `(msg, host, time)`
/// delivery triples, the statistics block, and the rendered JSONL
/// lifecycle trace. Deliveries are sorted because batching k simultaneous
/// byte arrivals into one event legitimately permutes the processing order
/// *within* a tick — the timestamps themselves must still match
/// bit-for-bit. The JSONL needs no such help: `to_jsonl` renders in the
/// canonical `(t, line)` order by contract.
type Observed = (Vec<(u64, u32, u64)>, NetStats, String);

fn observe(mut setup: SimSetup, mode: SimMode, trace: TraceConfig) -> Observed {
    setup.mode = mode;
    setup.trace = trace;
    let mut net = build_network(&setup);
    let out = net.run_until(setup.drain_until);
    assert!(out.deadlock.is_none(), "{mode:?}: deadlock {out:?}");
    net.audit()
        .unwrap_or_else(|e| panic!("{mode:?}: conservation audit failed: {e}"));
    let mut deliveries: Vec<(u64, u32, u64)> = net
        .msgs
        .deliveries
        .iter()
        .map(|d| (d.msg.0, d.host.0, d.at))
        .collect();
    deliveries.sort_unstable();
    (deliveries, net.stats.clone(), net.trace.to_jsonl())
}

/// Statistics equality with the engine-cost counters (the one
/// legitimately mode-dependent pair) masked out.
fn assert_stats_eq(mut a: NetStats, mut b: NetStats, label: &str, what: &str) {
    a.events_scheduled = 0;
    a.events_fired = 0;
    b.events_scheduled = 0;
    b.events_fired = 0;
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "{label}: {what} NetStats diverged between engine modes"
    );
}

/// Run `setup` under both modes, traced and untraced, and require
/// bit-identical observables. The span fast path stays live with a sink
/// attached: the span-batched trace carries extra `span-*` engine events,
/// and erasing them with the per-byte expander must reproduce the
/// per-byte JSONL byte-for-byte. Tracing itself must be a pure observer:
/// the traced and untraced runs must agree too. Returns the per-byte and
/// span-batched scheduled-event counts of the untraced pair for callers
/// that assert on cost.
fn assert_equivalent(mk: impl Fn() -> SimSetup, label: &str) -> (u64, u64) {
    let (d_ref, s_ref, j_ref) = observe(mk(), SimMode::PerByte, TraceConfig::Memory);
    let (d_span, s_span, j_span) = observe(mk(), SimMode::SpanBatched, TraceConfig::Memory);
    assert_eq!(
        d_ref, d_span,
        "{label}: traced delivery records diverged between engine modes"
    );
    let expanded = expand_spans(&j_span);
    assert!(
        j_ref == expanded,
        "{label}: expanded span trace diverged from the per-byte trace\n{}",
        first_diff(&j_ref, &expanded)
    );
    assert!(!j_ref.is_empty(), "{label}: trace captured nothing");
    let violations = validate_jsonl(&j_span);
    assert!(
        violations.is_empty(),
        "{label}: span-level trace violates the schema: {violations:?}"
    );
    // The fast path must actually be live on traced span-batched runs —
    // that's the whole point of span-native tracing.
    assert!(
        s_span.events_scheduled <= s_ref.events_scheduled,
        "{label}: traced span-batched run scheduled more events than per-byte"
    );
    assert_stats_eq(s_ref, s_span, label, "traced");

    let (d_off_ref, s_off_ref, _) = observe(mk(), SimMode::PerByte, TraceConfig::Off);
    let (d_off_span, s_off_span, _) = observe(mk(), SimMode::SpanBatched, TraceConfig::Off);
    assert_eq!(
        d_off_ref, d_off_span,
        "{label}: delivery records diverged between engine modes"
    );
    assert_eq!(
        d_ref, d_off_ref,
        "{label}: attaching a trace sink changed the delivery records"
    );
    let (e_ref, e_span) = (s_off_ref.events_scheduled, s_off_span.events_scheduled);
    assert_stats_eq(s_off_ref, s_off_span, label, "untraced");
    (e_ref, e_span)
}

/// The first differing line of two JSONL streams, for a readable failure.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}:\n  per-byte: {la}\n  spans:    {lb}", i + 1);
        }
    }
    format!(
        "line counts differ: {} vs {}",
        a.lines().count(),
        b.lines().count()
    )
}

fn paper_workload(load: f64) -> PaperWorkload {
    PaperWorkload {
        offered_load: load,
        multicast_prob: 0.10,
        lengths: LengthDist::Geometric { mean: 400 },
        stop_at: None,
    }
}

fn setup_on(topo: Topology, groups: GroupSet, scheme: Scheme, load: f64, seed: u64) -> SimSetup {
    SimSetup::builder(topo, groups, scheme, paper_workload(load))
        .seed(seed)
        .build()
        .expect("valid setup")
}

#[test]
fn torus_modes_agree_and_spans_win() {
    // The Figure 10 fabric at a moderately loaded point, both headline
    // schemes. Also the cost claim: span batching must cut scheduled
    // events by a large factor here.
    for scheme in [Scheme::Hc(HcConfig::store_and_forward()), figure_tree_scheme()] {
        let mk = || {
            let mut grng = host_stream(0x5EED0, 0x6071);
            let groups = GroupSet::random(64, 10, 10, &mut grng);
            setup_on(torus(8, 1), groups, scheme, 0.06, 0x5EED0).windows(5_000, 25_000, 15_000)
        };
        let (e_ref, e_span) = assert_equivalent(mk, "torus8");
        assert!(
            e_span * 3 < e_ref,
            "span batching too weak on the torus: {e_ref} -> {e_span}"
        );
        // Span-native tracing: the traced span-batched run must have kept
        // the fast path live (recorded span-level engine events).
        let (_, _, j_span) = observe(mk(), SimMode::SpanBatched, TraceConfig::Memory);
        assert!(
            j_span.contains("\"ev\":\"span-emitted\""),
            "traced span-batched torus run emitted no spans — fast path stood down"
        );
    }
}

#[test]
fn torus_lanes2_traced_modes_agree() {
    // Two-lane links: span-level events carry the lane field, and the
    // expanded trace must still match per-byte byte-for-byte.
    let mk = || {
        let mut grng = host_stream(0x5EED7, 0x6071);
        let groups = GroupSet::random(64, 10, 10, &mut grng);
        let mut s = setup_on(
            torus(8, 1),
            groups,
            Scheme::Hc(HcConfig::store_and_forward()),
            0.06,
            0x5EED7,
        )
        .windows(5_000, 25_000, 15_000);
        s.lanes = 2;
        s
    };
    assert_equivalent(mk, "torus8-lanes2");
}

#[test]
fn shufflenet_modes_agree() {
    // The Figure 11 fabric: 1000 byte-time links make in-flight windows
    // (and STOP truncation) far larger than the torus case.
    let mk = || {
        let mut grng = host_stream(0x5EED1, 0x6111);
        let groups = GroupSet::random(24, 4, 6, &mut grng);
        setup_on(
            shufflenet24(1000),
            groups,
            Scheme::Hc(HcConfig::store_and_forward()),
            0.05,
            0x5EED1,
        )
        .windows(50_000, 150_000, 100_000)
    };
    assert_equivalent(mk, "shufflenet24");
}

#[test]
fn myrinet_testbed_modes_agree() {
    // The Figures 12/13 prototype testbed shape: a line of four switches,
    // two hosts each, delay-2 links — the topology the paper actually
    // measured. Cut-through stresses the follower pacing path.
    let testbed = || {
        let mut b = TopoBuilder::new(4);
        b.link(0, 1, 2);
        b.link(1, 2, 2);
        b.link(2, 3, 2);
        for sw in 0..4 {
            b.host(sw);
            b.host(sw);
        }
        b.build()
    };
    for scheme in [
        Scheme::Hc(HcConfig::cut_through()),
        Scheme::Hc(HcConfig::store_and_forward()),
    ] {
        let mk = || {
            let mut grng = host_stream(0x5EED2, 0x6121);
            let groups = GroupSet::random(8, 2, 4, &mut grng);
            setup_on(testbed(), groups, scheme, 0.10, 0x5EED2).windows(2_000, 20_000, 15_000)
        };
        assert_equivalent(mk, "myrinet-testbed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small irregular fabrics (the shape real Myrinet installs
    /// have): whatever the topology, both engine modes must agree.
    #[test]
    fn irregular_topologies_modes_agree(
        topo_seed in 0u64..1000,
        n_switches in 3usize..7,
        extra in 0usize..4,
        delay in 1u64..4,
        load_pct in 4u32..10,
    ) {
        let spec = IrregularSpec {
            num_switches: n_switches,
            extra_links: extra,
            hosts_per_switch: 2,
            link_delay: delay,
        };
        let nh = n_switches * 2;
        let mk = || {
            let mut grng = host_stream(topo_seed ^ 0xA5A5, 0x6131);
            let groups = GroupSet::random(nh, 2, 3.min(nh), &mut grng);
            setup_on(
                irregular(spec, topo_seed),
                groups,
                Scheme::Hc(HcConfig::store_and_forward()),
                load_pct as f64 / 100.0,
                topo_seed,
            )
            .windows(2_000, 12_000, 10_000)
        };
        assert_equivalent(mk, "irregular");
    }
}
