//! End-to-end deadlock forensics: a ring of switches with deliberately
//! cyclic routes (the exact pattern up/down routing exists to forbid)
//! wedges four long worms into a circular wait. Both engines must detect
//! it, and the *sharded* engine must reconstruct the same wait-for story
//! even though the cycle's edges cross the shard boundary — each edge
//! still names the blocked channel, the holding worm, and the cause.

use wormcast_sim::engine::HostId;
use wormcast_sim::link::PortId;
use wormcast_sim::network::{FabricSpec, HostAttach, LinkSpec, RouteTable, SimMode};
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec, SourceMessage, TrafficSource,
};
use wormcast_sim::shard::ShardedNetwork;
use wormcast_sim::worm::{WormInstance, WormKind};
use wormcast_sim::{Network, NetworkConfig};

struct Echoless;

impl AdapterProtocol for Echoless {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        if let Destination::Unicast(d) = msg.dest {
            ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
        }
    }
    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        ctx.deliver_local(worm.meta.msg);
    }
}

struct OneShot {
    msg: Option<SourceMessage>,
}

impl TrafficSource for OneShot {
    fn next(&mut self, _now: u64, _host: HostId) -> (Option<SourceMessage>, Option<u64>) {
        (self.msg.take(), None)
    }
}

/// Four switches in a directed ring (sw i port 0 → sw (i+1)%4 port 1),
/// one host per switch on port 2. Host i routes to host (i+2)%4 going
/// clockwise through two ring links — every worm must grab two
/// consecutive ring links, so four simultaneous long worms form a
/// textbook circular wait.
fn ring_fabric() -> (FabricSpec, RouteTable) {
    let n = 4usize;
    let mut links = Vec::new();
    for i in 0..n {
        links.push(LinkSpec {
            a: (i as u32, PortId(0)),
            b: (((i + 1) % n) as u32, PortId(1)),
            delay: 1,
            lanes: 0,
        });
    }
    let hosts: Vec<HostAttach> = (0..n)
        .map(|i| HostAttach {
            switch: i as u32,
            port: 2,
        })
        .collect();
    let mut rt = RouteTable::new(n);
    for i in 0..n {
        // At sw i: out port 0; at sw i+1: out port 0; at sw i+2: host port 2.
        rt.set(
            HostId(i as u32),
            HostId(((i + 2) % n) as u32),
            vec![0, 0, 2],
        );
    }
    let spec = FabricSpec {
        switch_ports: vec![3; n],
        hosts,
        links,
        host_link_delay: 1,
    };
    (spec, rt)
}

/// Build one engine over the ring; traffic sources only on `owned` hosts
/// (`None` = all of them), so the same builder serves the sequential run
/// and each shard of the sharded run.
fn ring_net(owned: Option<&[u32]>) -> Network {
    let (spec, rt) = ring_fabric();
    let cfg = NetworkConfig::builder()
        .seed(3)
        .mode(SimMode::SpanBatched)
        .build()
        .expect("valid config");
    let mut net = Network::build(&spec, rt, cfg);
    for h in 0..4u32 {
        net.set_protocol(HostId(h), Box::new(Echoless));
        if owned.is_none_or(|o| o.contains(&h)) {
            let msg = SourceMessage {
                dest: Destination::Unicast(HostId((h + 2) % 4)),
                payload_len: 2_000,
            };
            net.set_source(HostId(h), Box::new(OneShot { msg: Some(msg) }), 10);
        }
    }
    net
}

#[test]
fn sequential_engine_reports_the_ring_deadlock() {
    let mut net = ring_net(None);
    let out = net.run_until(50_000);
    assert!(!out.drained, "a wedged ring cannot drain");
    let report = out.deadlock.expect("deadlock must be detected");
    assert_eq!(report.stuck_worms, 4);
    assert!(report.cycle.len() >= 2, "cycle: {:?}", report.cycle);
    let dump = report.to_string();
    assert!(dump.contains("holds worm"), "no holder named:\n{dump}");
    assert!(dump.contains("ch"), "no channel named:\n{dump}");
}

#[test]
fn sharded_engine_reconstructs_the_cycle_across_the_boundary() {
    // Shard 0 owns switches {0,1}, shard 1 owns {2,3}: two of the four
    // ring links (and two of the four wait-cycle hops) cross the cut.
    let switch_owner = vec![0u32, 0, 1, 1];
    let nets = vec![ring_net(Some(&[0, 1])), ring_net(Some(&[2, 3]))];
    let mut sharded = ShardedNetwork::new(nets, switch_owner.clone()).expect("shardable");
    let out = sharded.run_until(50_000);
    assert!(!out.drained, "a wedged ring cannot drain");
    let report = out.deadlock.expect("merged deadlock must be detected");
    assert_eq!(report.stuck_worms, 4);
    assert!(report.cycle.len() >= 2, "cycle: {:?}", report.cycle);

    // The merged wait-for graph must contain edges whose endpoints live
    // in different shards, and those edges must still carry the full
    // forensics story: the waiting worm, the holding worm, and a cause
    // that names the blocked resource.
    let shard_of = |node: &wormcast_sim::deadlock::WaitNode| -> u32 {
        match node {
            wormcast_sim::deadlock::WaitNode::SwitchIn(sw, _) => switch_owner[sw.0 as usize],
            wormcast_sim::deadlock::WaitNode::HostTx(h) => switch_owner[h.0 as usize],
        }
    };
    let cross: Vec<_> = report
        .edges
        .iter()
        .filter(|e| shard_of(&e.from) != shard_of(&e.to))
        .collect();
    assert!(
        !cross.is_empty(),
        "no cross-shard wait edges in:\n{report}"
    );
    for e in &cross {
        assert!(e.worm.is_some(), "cross-shard edge lost its worm: {e}");
        assert!(e.holds.is_some(), "cross-shard edge lost its holder: {e}");
        let line = e.to_string();
        assert!(
            line.contains("ch") || line.contains("output"),
            "cause does not name the blocked resource: {line}"
        );
    }

    // Same-tick worm naming is canonical across shards: a worm named in
    // two different shards' edges resolves to one id, so the four stuck
    // worms appear as exactly four distinct ids in the merged graph.
    let mut ids: Vec<u32> = report
        .edges
        .iter()
        .filter_map(|e| e.worm.map(|w| w.0))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4, "expected 4 canonical worms in:\n{report}");
}
