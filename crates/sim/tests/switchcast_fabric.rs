//! Fabric-level switch-multicast tests with hand-built routes, checking
//! the replication machinery at the byte level (the protocol-level view is
//! covered by the workspace integration tests).

use wormcast_sim::engine::HostId;
use wormcast_sim::link::PortId;
use wormcast_sim::network::{FabricSpec, HostAttach, LinkSpec, RouteTable};
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec, SourceMessage,
};
use wormcast_sim::switchcast::{encode, Directive, Subroute, SwitchcastMode};
use wormcast_sim::worm::{RouteSym, WormInstance, WormKind};
use wormcast_sim::{Network, NetworkConfig};

/// Injects one pre-encoded switch-multicast worm on generate; delivers on
/// receive.
struct Injector {
    route: Vec<RouteSym>,
    sinks: u32,
}

impl AdapterProtocol for Injector {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        let mut spec = SendSpec::data(&msg, HostId(1), WormKind::SwitchMulticast { group: 0 });
        spec.route_override = Some(self.route.clone());
        spec.sinks = self.sinks;
        ctx.send(spec);
    }
    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        ctx.deliver_local(worm.meta.msg);
    }
}

struct Sink;
impl AdapterProtocol for Sink {
    fn on_generate(&mut self, _ctx: &mut ProtocolCtx, _msg: AppMessage) {}
    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        ctx.deliver_local(worm.meta.msg);
    }
}

/// One switch, three hosts on ports 0, 1, 2.
fn one_switch() -> (FabricSpec, RouteTable) {
    let spec = FabricSpec {
        switch_ports: vec![3],
        hosts: vec![
            HostAttach { switch: 0, port: 0 },
            HostAttach { switch: 0, port: 1 },
            HostAttach { switch: 0, port: 2 },
        ],
        links: vec![],
        host_link_delay: 1,
    };
    let mut rt = RouteTable::new(3);
    for s in 0..3u32 {
        for d in 0..3u32 {
            if s != d {
                rt.set(HostId(s), HostId(d), vec![d as u8]);
            }
        }
    }
    (spec, rt)
}

#[test]
fn single_switch_replicates_to_both_host_ports() {
    let (spec, rt) = one_switch();
    let mut net = Network::build(
        &spec,
        rt,
        NetworkConfig::builder()
            .switchcast(SwitchcastMode::RestrictedIdle)
            .build()
            .expect("valid config"),
    );
    let directive = Directive {
        branches: vec![(1, Subroute::Host), (2, Subroute::Host)],
    };
    net.set_protocol(
        HostId(0),
        Box::new(Injector {
            route: encode(&directive).unwrap(),
            sinks: 2,
        }),
    );
    net.set_protocol(HostId(1), Box::new(Sink));
    net.set_protocol(HostId(2), Box::new(Sink));
    net.set_source(
        HostId(0),
        Box::new(wormcast_sim_test_oneshot(SourceMessage {
            dest: Destination::Multicast(0),
            payload_len: 500,
        })),
        10,
    );
    let out = net.run_until(100_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    assert_eq!(net.stats.worms_injected, 1, "fabric does the copying");
    assert_eq!(net.stats.sinks_injected, 2);
    let mut hosts: Vec<u32> = net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    hosts.sort_unstable();
    assert_eq!(hosts, vec![1, 2]);
    // Both copies arrived complete at the same byte count.
    assert_eq!(
        net.adapters[1].counters.bytes_received,
        net.adapters[2].counters.bytes_received
    );
}

/// Two switches: directive at switch 0 stamps a subtree route for switch 1.
#[test]
fn nested_directive_stamps_subtree_prefix() {
    let spec = FabricSpec {
        switch_ports: vec![3, 3],
        hosts: vec![
            HostAttach { switch: 0, port: 0 }, // host 0
            HostAttach { switch: 0, port: 1 }, // host 1
            HostAttach { switch: 1, port: 1 }, // host 2
            HostAttach { switch: 1, port: 2 }, // host 3
        ],
        // Switch 0 port 2 <-> switch 1 port 0.
        links: vec![LinkSpec {
            a: (0, PortId(2)),
            b: (1, PortId(0)),
            delay: 1,
            lanes: 0,
        }],
        host_link_delay: 1,
    };
    let mut rt = RouteTable::new(4);
    rt.set(HostId(0), HostId(1), vec![1]);
    rt.set(HostId(0), HostId(2), vec![2, 1]);
    rt.set(HostId(0), HostId(3), vec![2, 2]);
    rt.set(HostId(1), HostId(0), vec![0]);
    rt.set(HostId(2), HostId(0), vec![0, 0]);
    rt.set(HostId(3), HostId(0), vec![0, 0]);
    rt.set(HostId(1), HostId(2), vec![2, 1]);
    rt.set(HostId(1), HostId(3), vec![2, 2]);
    rt.set(HostId(2), HostId(3), vec![2]);
    rt.set(HostId(3), HostId(2), vec![1]);
    rt.set(HostId(2), HostId(1), vec![0, 1]);
    rt.set(HostId(3), HostId(1), vec![0, 1]);
    let mut net = Network::build(
        &spec,
        rt,
        NetworkConfig::builder()
            .switchcast(SwitchcastMode::RestrictedIdle)
            .build()
            .expect("valid config"),
    );
    // From host 0: replicate at switch 0 to host 1 and to switch 1, where a
    // nested directive replicates to hosts 2 and 3.
    let directive = Directive {
        branches: vec![
            (1, Subroute::Host),
            (
                2,
                Subroute::Next(Directive {
                    branches: vec![(1, Subroute::Host), (2, Subroute::Host)],
                }),
            ),
        ],
    };
    net.set_protocol(
        HostId(0),
        Box::new(Injector {
            route: encode(&directive).unwrap(),
            sinks: 3,
        }),
    );
    for h in 1..4u32 {
        net.set_protocol(HostId(h), Box::new(Sink));
    }
    net.set_source(
        HostId(0),
        Box::new(wormcast_sim_test_oneshot(SourceMessage {
            dest: Destination::Multicast(0),
            payload_len: 1_000,
        })),
        10,
    );
    let out = net.run_until(200_000);
    assert!(out.drained);
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    assert_eq!(net.stats.worms_injected, 1);
    assert_eq!(net.stats.sinks_injected, 3);
    let mut hosts: Vec<u32> = net.msgs.deliveries.iter().map(|d| d.host.0).collect();
    hosts.sort_unstable();
    assert_eq!(hosts, vec![1, 2, 3], "nested replication covers the tree");
}

/// Minimal one-shot source (the traffic crate depends on this crate and
/// cannot be used here).
fn wormcast_sim_test_oneshot(msg: SourceMessage) -> impl wormcast_sim::protocol::TrafficSource {
    struct OneShot(Option<SourceMessage>);
    impl wormcast_sim::protocol::TrafficSource for OneShot {
        fn next(&mut self, _now: u64, _host: HostId) -> (Option<SourceMessage>, Option<u64>) {
            (self.0.take(), None)
        }
    }
    OneShot(Some(msg))
}
