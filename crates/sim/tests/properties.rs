//! Property-based, end-to-end invariants of the fabric simulator itself.
//!
//! These use a minimal in-crate unicast protocol (the real protocols live
//! in `wormcast-core`) so the fabric can be exercised without a dependency
//! cycle.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)] // index math mirrors ports

use proptest::prelude::*;
use wormcast_sim::engine::HostId;
use wormcast_sim::link::PortId;
use wormcast_sim::network::{FabricSpec, HostAttach, LinkSpec, RouteTable};
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec, SourceMessage,
};
use wormcast_sim::worm::{WormInstance, WormKind};
use wormcast_sim::{Network, NetworkConfig};

/// Minimal unicast-only protocol: send on generate, deliver on receive.
struct Echoless;

impl AdapterProtocol for Echoless {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        if let Destination::Unicast(d) = msg.dest {
            ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
        }
    }
    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        ctx.deliver_local(worm.meta.msg);
    }
}

/// A line of `n` switches with one host each, explicit routes.
fn line_fabric(n: usize, delay: u64) -> (FabricSpec, RouteTable) {
    // Ports per switch: left link (except first), right link (except last),
    // then the host port.
    let mut switch_ports = vec![0u8; n];
    let mut links = Vec::new();
    let mut next_port = vec![0u8; n];
    for s in 0..n - 1 {
        let a = next_port[s];
        next_port[s] += 1;
        let b = next_port[s + 1];
        next_port[s + 1] += 1;
        links.push(LinkSpec {
            a: (s as u32, PortId(a)),
            b: ((s + 1) as u32, PortId(b)),
            delay,
            lanes: 0,
        });
    }
    let mut hosts = Vec::new();
    for s in 0..n {
        hosts.push(HostAttach {
            switch: s as u32,
            port: next_port[s],
        });
        next_port[s] += 1;
    }
    for s in 0..n {
        switch_ports[s] = next_port[s];
    }
    // Routes: walk right or left then the host port. Port conventions per
    // the allocation above: at switch s, the right link is port 1 for
    // interior switches (0 for the first), the left link is port 0.
    let right_port = |s: usize| if s == 0 { 0u8 } else { 1u8 };
    let left_port = |_s: usize| 0u8;
    let mut rt = RouteTable::new(n);
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let mut ports = Vec::new();
            let mut cur = src;
            while cur != dst {
                if dst > cur {
                    ports.push(right_port(cur));
                    cur += 1;
                } else {
                    ports.push(left_port(cur));
                    cur -= 1;
                }
            }
            ports.push(hosts[dst].port);
            rt.set(HostId(src as u32), HostId(dst as u32), ports);
        }
    }
    (
        FabricSpec {
            switch_ports,
            hosts,
            links,
            host_link_delay: 1,
        },
        rt,
    )
}

fn run_line(
    n: usize,
    delay: u64,
    seed: u64,
    sends: &[(u8, u8, u32, u64)], // (src, dst, len, at)
) -> (Vec<(u64, u32, u64)>, Network) {
    let (spec, rt) = line_fabric(n, delay);
    let mut net = Network::build(
        &spec,
        rt,
        NetworkConfig::builder().seed(seed).build().expect("valid config"),
    );
    for h in 0..n as u32 {
        net.set_protocol(HostId(h), Box::new(Echoless));
    }
    // Group sends per source into ascending scripts.
    let mut per_src: Vec<Vec<(u64, SourceMessage)>> = vec![Vec::new(); n];
    for &(s, d, len, at) in sends {
        let s = (s as usize) % n;
        let mut d = (d as usize) % n;
        if d == s {
            d = (d + 1) % n;
        }
        per_src[s].push((at, SourceMessage {
            dest: Destination::Unicast(HostId(d as u32)),
            payload_len: len,
        }));
    }
    for (s, mut items) in per_src.into_iter().enumerate() {
        items.sort_by_key(|&(t, _)| t);
        // Deduplicate times (script requires strictly ascending).
        let mut t_last = None;
        for it in &mut items {
            if Some(it.0) <= t_last {
                it.0 = t_last.unwrap() + 1;
            }
            t_last = Some(it.0);
        }
        if !items.is_empty() {
            wormcast_traffic_free_install(&mut net, HostId(s as u32), items);
        }
    }
    let out = net.run_until(50_000_000);
    assert!(out.drained, "finite workload must drain");
    assert!(out.deadlock.is_none());
    net.audit().expect("conservation");
    let mut log: Vec<(u64, u32, u64)> = net
        .msgs
        .deliveries
        .iter()
        .map(|d| (d.msg.0, d.host.0, d.at))
        .collect();
    log.sort_unstable();
    (log, net)
}

/// Local stand-in for `wormcast_traffic::script::install_script` (the
/// traffic crate depends on this one, so it cannot be used here).
fn wormcast_traffic_free_install(
    net: &mut Network,
    host: HostId,
    items: Vec<(u64, SourceMessage)>,
) {
    struct Script {
        items: Vec<(u64, SourceMessage)>,
        ix: usize,
    }
    impl wormcast_sim::protocol::TrafficSource for Script {
        fn next(
            &mut self,
            now: u64,
            _host: HostId,
        ) -> (Option<SourceMessage>, Option<u64>) {
            let Some(&(_, msg)) = self.items.get(self.ix) else {
                return (None, None);
            };
            self.ix += 1;
            let gap = self.items.get(self.ix).map(|&(t, _)| t - now);
            (Some(msg), gap)
        }
    }
    let first = items[0].0;
    net.set_source(host, Box::new(Script { items, ix: 0 }), first);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary finite unicast workloads on a line fabric: everything is
    /// delivered exactly once, conservation holds, and the run is
    /// deterministic in its seed.
    #[test]
    fn random_workloads_deliver_and_replay(
        n in 2usize..6,
        delay in 1u64..20,
        seed in 0u64..1000,
        sends in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 1u32..3_000, 0u64..30_000), 1..25),
    ) {
        let (log_a, net_a) = run_line(n, delay, seed, &sends);
        prop_assert_eq!(log_a.len(), sends.len(), "one delivery per message");
        prop_assert_eq!(net_a.stats.worms_injected as usize, sends.len());
        // Determinism: identical run.
        let (log_b, _) = run_line(n, delay, seed, &sends);
        prop_assert_eq!(log_a, log_b);
    }

    /// Latency lower bound: a worm can never beat wire time — delivery is
    /// at least (wire length + per-hop pipeline) after creation.
    #[test]
    fn latency_respects_wire_time(
        n in 2usize..6,
        delay in 1u64..50,
        len in 1u32..5_000,
    ) {
        let sends = [(0u8, (n - 1) as u8, len, 100u64)];
        let (log, net) = run_line(n, delay, 0, &sends);
        prop_assert_eq!(log.len(), 1);
        let (_, _, at) = log[0];
        let hops = n; // n-1 switch links + host link, roughly
        let wire = net.worms[0].wire_len();
        let min_latency = wire + hops as u64 * delay;
        prop_assert!(
            at - 100 >= min_latency - delay, // head start pipelining slack
            "latency {} below physical minimum {}",
            at - 100,
            min_latency
        );
    }
}
