//! STOP-mid-span truncation: the span-batched engine must stay byte-exact
//! through backpressure.
//!
//! When a STOP arrives while a span is mid-flight, the engine truncates the
//! span to the bytes already on the wire and returns the rest to the
//! producer. These tests force STOPs with a two-senders-one-sink contention
//! pattern and then check the strongest observable consequence: stepping
//! both engine modes through the same run in small time increments, the
//! `bytes_moved` counter matches at *every* horizon — so the receiver side
//! of every stopped channel holds exactly the bytes the per-byte engine
//! would have delivered, never a span's worth too many.

#![allow(clippy::needless_range_loop)] // index math mirrors ports

use wormcast_sim::engine::HostId;
use wormcast_sim::link::PortId;
use wormcast_sim::network::{FabricSpec, HostAttach, LinkSpec, RouteTable, SimMode};
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec, SourceMessage, TrafficSource,
};
use wormcast_sim::trace::{TraceConfig, TraceEvent};
use wormcast_sim::worm::{WormInstance, WormKind};
use wormcast_sim::{Network, NetworkConfig};

/// Minimal unicast protocol (the real ones live in `wormcast-core`).
struct Echoless;

impl AdapterProtocol for Echoless {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        if let Destination::Unicast(d) = msg.dest {
            ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
        }
    }
    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        ctx.deliver_local(worm.meta.msg);
    }
}

struct Script {
    items: Vec<(u64, SourceMessage)>,
    ix: usize,
}

impl TrafficSource for Script {
    fn next(&mut self, now: u64, _host: HostId) -> (Option<SourceMessage>, Option<u64>) {
        let Some(&(_, msg)) = self.items.get(self.ix) else {
            return (None, None);
        };
        self.ix += 1;
        let gap = self.items.get(self.ix).map(|&(t, _)| t - now);
        (Some(msg), gap)
    }
}

/// A line of three switches, one host each, explicit left/right routes —
/// hosts 0 and 1 both route through the sw1→sw2 link, so simultaneous
/// worms to host 2 collide there and raise STOPs.
fn contention_net(delay: u64, mode: SimMode, worm_len: u32, trace: TraceConfig) -> Network {
    let n = 3usize;
    let mut links = Vec::new();
    let mut next_port = vec![0u8; n];
    for s in 0..n - 1 {
        let a = next_port[s];
        next_port[s] += 1;
        let b = next_port[s + 1];
        next_port[s + 1] += 1;
        links.push(LinkSpec {
            a: (s as u32, PortId(a)),
            b: ((s + 1) as u32, PortId(b)),
            delay,
            lanes: 0,
        });
    }
    let mut hosts = Vec::new();
    for s in 0..n {
        hosts.push(HostAttach {
            switch: s as u32,
            port: next_port[s],
        });
        next_port[s] += 1;
    }
    let right_port = |s: usize| if s == 0 { 0u8 } else { 1u8 };
    let mut rt = RouteTable::new(n);
    for src in 0..n - 1 {
        let mut ports = Vec::new();
        for s in src..n - 1 {
            ports.push(right_port(s));
        }
        ports.push(hosts[n - 1].port);
        rt.set(HostId(src as u32), HostId((n - 1) as u32), ports);
    }
    let spec = FabricSpec {
        switch_ports: next_port,
        hosts,
        links,
        host_link_delay: 1,
    };
    let cfg = NetworkConfig::builder()
        .seed(7)
        .mode(mode)
        .trace(trace)
        .build()
        .expect("valid config");
    let mut net = Network::build(&spec, rt, cfg);
    for h in 0..n as u32 {
        net.set_protocol(HostId(h), Box::new(Echoless));
    }
    // Both senders fire long worms nearly together; the second loses the
    // sw1→sw2 output and backpressures while spans are in flight.
    for (h, at) in [(0u32, 10u64), (1, 12)] {
        let items = vec![(at, SourceMessage {
            dest: Destination::Unicast(HostId(2)),
            payload_len: worm_len,
        })];
        net.set_source(HostId(h), Box::new(Script { items, ix: 0 }), at);
    }
    net
}

fn deliveries(net: &Network) -> Vec<(u64, u32, u64)> {
    let mut out: Vec<(u64, u32, u64)> = net
        .msgs
        .deliveries
        .iter()
        .map(|d| (d.msg.0, d.host.0, d.at))
        .collect();
    out.sort_unstable();
    out
}

/// Step both modes in lockstep and require identical progress at every
/// horizon, for a spread of link delays (deeper slack ⇒ longer spans ⇒
/// more bytes at stake per truncation).
#[test]
fn stop_mid_span_truncates_to_the_exact_byte() {
    for delay in [1u64, 3, 8] {
        // The per-byte net carries a sink (a pure observer) to prove the
        // scenario raises STOPs at all; the span net runs untraced only
        // because this lockstep check never reads its trace — tracing no
        // longer stands the fast path down (DESIGN.md §3.2).
        let mut per_byte = contention_net(delay, SimMode::PerByte, 2_000, TraceConfig::Memory);
        let mut spans = contention_net(delay, SimMode::SpanBatched, 2_000, TraceConfig::Off);
        let mut t = 0;
        while t < 30_000 {
            t += 7; // off-phase with spans and link delays on purpose
            per_byte.run_until(t);
            spans.run_until(t);
            assert_eq!(
                per_byte.stats.bytes_moved, spans.stats.bytes_moved,
                "delay {delay}: byte progress diverged at t={t}"
            );
        }
        per_byte.audit().expect("per-byte conservation");
        spans.audit().expect("span conservation");
        assert_eq!(
            deliveries(&per_byte),
            deliveries(&spans),
            "delay {delay}: deliveries diverged"
        );
        assert_eq!(deliveries(&spans).len(), 2, "delay {delay}: both worms arrive");
        // The scenario must actually have exercised backpressure — STOPs
        // the span engine (whose byte progress matched at every horizon
        // above) necessarily met while transmitting.
        let stops = per_byte
            .trace
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::StopInForce { .. }))
            .count();
        assert!(stops > 0, "delay {delay}: no STOP raised — not a truncation test");
    }
}

/// Same scenario run to completion in one shot: end-state statistics match
/// field-for-field apart from the engine-cost counters, and span batching
/// actually spends fewer events.
#[test]
fn stop_heavy_run_keeps_stats_identical() {
    let mut per_byte = contention_net(4, SimMode::PerByte, 5_000, TraceConfig::Off);
    let mut spans = contention_net(4, SimMode::SpanBatched, 5_000, TraceConfig::Off);
    let a = per_byte.run_until(60_000);
    let b = spans.run_until(60_000);
    assert!(a.drained && b.drained, "finite workload must drain");
    let mut sa = per_byte.stats.clone();
    let mut sb = spans.stats.clone();
    assert!(
        sb.events_scheduled < sa.events_scheduled,
        "span batching should save events even under backpressure: {} vs {}",
        sa.events_scheduled,
        sb.events_scheduled
    );
    sa.events_scheduled = 0;
    sa.events_fired = 0;
    sb.events_scheduled = 0;
    sb.events_fired = 0;
    assert_eq!(format!("{sa:?}"), format!("{sb:?}"), "stats diverged");
    assert_eq!(deliveries(&per_byte), deliveries(&spans));
}
