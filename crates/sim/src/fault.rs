//! Fault injection.
//!
//! The paper assumes a physically reliable network ("network sources can
//! normally assume that if they send out a packet ... it will eventually be
//! received"), so all reproduction experiments run fault-free. For testing
//! protocol *reliability machinery* (timeouts, retransmission, the
//! return-to-origin confirmation of the Hamiltonian scheme) the simulator
//! can corrupt a configurable fraction of worms: a corrupted worm still
//! occupies wire and buffer resources end to end, but fails its checksum at
//! the destination adapter and is silently discarded — exactly how a link
//! error manifests on a real Myrinet.

use crate::config::ConfigError;
use serde::{Deserialize, Serialize};

/// Fault-injection knobs, in the spirit of smoltcp's `--corrupt-chance`
/// example options.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability in [0, 1] that an injected worm is corrupted in transit.
    pub corrupt_prob: f64,
}

impl FaultConfig {
    /// Validating constructor: rejects probabilities outside [0, 1].
    pub fn try_new(corrupt_prob: f64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&corrupt_prob) {
            return Err(ConfigError::OutOfRange {
                field: "corrupt_prob",
                value: corrupt_prob,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(FaultConfig { corrupt_prob })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_validates() {
        assert_eq!(FaultConfig::try_new(0.25).unwrap().corrupt_prob, 0.25);
        assert!(FaultConfig::try_new(1.5).is_err());
        assert!(FaultConfig::try_new(-0.1).is_err());
        assert!(FaultConfig::try_new(f64::NAN).is_err());
    }
}
