//! Worms: the unit of transfer in a wormhole network.
//!
//! A worm on the wire is a sequence of bytes: first the source route (one
//! routing byte per switch on the path — or, for switch-level multicast, the
//! linearized tree encoding of the paper's Figure 2), then a small logical
//! header, then the payload, then a trailing checksum byte. Each switch
//! consumes the leading route byte(s) addressed to it and recomputes the
//! trailing checksum, so the worm shrinks by one byte per switch hop exactly
//! as in Myrinet.
//!
//! The simulator is *content-light*: it never materialises payload bytes.
//! A byte on the wire is a [`WireByte`] token — the worm it belongs to plus
//! what kind of byte it is — and everything else is looked up in the worm
//! arena ([`WormInstance`]).

use crate::engine::HostId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Index into the network's worm arena. Each *transmission* (an original
/// injection, a forwarded multicast copy, a retransmission, a fragment) is
/// its own instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WormId(pub u32);

/// Application-level message identity. All worm instances that carry (a copy
/// of) the same application message share one `MessageId`; latency and
/// ordering statistics are keyed by it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// One symbol of an encoded source route.
///
/// Unicast routes are plain `Port` bytes. Switch-level multicast routes use
/// the paper's Figure 2 encoding: after a `Port` byte an optional `Ptr`
/// gives the length of the subtree route to stamp out of that port, and
/// `End` terminates the directive at a switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RouteSym {
    /// Take this output port.
    Port(u8),
    /// The next `n` route bytes belong to the subtree behind the preceding
    /// port (a byte-count pointer in the paper).
    Ptr(u8),
    /// End-of-route marker.
    End,
    /// The broadcast address (Section 3): replicate to every down link of
    /// the up/down tree and every attached host, stamping `Broadcast`
    /// again on the switch-facing branches.
    Broadcast,
}

/// What kind of byte a [`WireByte`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ByteKind {
    /// A routing byte, consumed by switches.
    Route(RouteSym),
    /// A header or payload byte.
    Data,
    /// An IDLE fill byte: a hole in a stalled multicast worm (Section 3 of
    /// the paper). Occupies link bandwidth, discarded at the destination.
    Idle,
    /// The final (checksum) byte of the worm.
    Tail,
}

/// One byte on the wire.
#[derive(Clone, Copy, Debug)]
pub struct WireByte {
    pub worm: WormId,
    pub kind: ByteKind,
}

/// Classification of a worm for adapters and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WormKind {
    /// Ordinary point-to-point data worm.
    Unicast,
    /// A host-adapter-multicast data worm for the given group.
    Multicast { group: u8 },
    /// A switch-level multicast data worm (replicated in the fabric).
    SwitchMulticast { group: u8 },
    /// A protocol control worm (ACK/NACK, credits, tokens...). The tag is
    /// protocol-defined; see `wormcast-core`.
    Control(u8),
}

impl WormKind {
    /// True for the data-bearing kinds (unicast and both multicast flavours).
    pub fn is_data(self) -> bool {
        !matches!(self, WormKind::Control(_))
    }

    /// The multicast group, if this is a multicast worm of either flavour.
    pub fn group(self) -> Option<u8> {
        match self {
            WormKind::Multicast { group } | WormKind::SwitchMulticast { group } => Some(group),
            _ => None,
        }
    }
}

/// Logical header of a worm. On a real Myrinet these fields are the first
/// few payload bytes; the simulator carries them out-of-band but *accounts*
/// for them in the worm's wire length via `header_len`.
#[derive(Clone, Debug)]
pub struct WormMeta {
    pub kind: WormKind,
    /// The application message this worm carries (for multicast copies,
    /// the original message).
    pub msg: MessageId,
    /// Originating host of this *instance* (the forwarding adapter for a
    /// multicast copy, not the original source).
    pub injector: HostId,
    /// Original source of the application message.
    pub origin: HostId,
    /// Final consumer of this instance (the next hop in a host-adapter
    /// multicast structure, or the unicast destination).
    pub dest: HostId,
    /// Multicast sequence number (for total-ordering checks and fragment
    /// reassembly).
    pub seq: u32,
    /// Remaining adapter-level hops (Hamiltonian-circuit hop count field).
    pub hops_left: u16,
    /// Buffer class for the two-class deadlock-avoidance rule (1 or 2).
    pub buffer_class: u8,
    /// Fragment index when a worm was split by the switch-level
    /// interrupt/resume scheme; 0 for unfragmented worms.
    pub frag_index: u16,
    /// True when this is the final fragment (always true when unfragmented).
    pub frag_last: bool,
    /// Payload size in bytes as advertised in the header — used by the
    /// implicit-buffer-reservation admission check (Figure 5 of the paper).
    pub advertised_size: u32,
    /// Protocol-defined stage marker (see `SendSpec::stage`).
    pub stage: u8,
}

/// A worm instance in flight (or queued) somewhere in the network.
#[derive(Clone, Debug)]
pub struct WormInstance {
    pub id: WormId,
    pub meta: WormMeta,
    /// Number of hosts this worm terminates at (1 for unicast; the leaf
    /// count of the tree for a switch-level multicast).
    pub sinks: u32,
    /// Encoded source route as injected. Switches consume from the front.
    /// Reclaimed into the network's route pool once the worm has fully
    /// left its source adapter — use [`Self::route_len`] for accounting.
    pub route: Vec<RouteSym>,
    /// Length of the route as injected, cached so wire-length accounting
    /// survives the route buffer's reclamation.
    pub route_len: u32,
    /// Logical header length in bytes (accounted on the wire).
    pub header_len: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// When the application message was created (for latency statistics).
    pub created: SimTime,
    /// When this instance started transmission at its injector.
    pub injected: SimTime,
}

impl WormInstance {
    /// Total number of bytes this worm occupies on the wire as injected:
    /// route + header + payload + trailing checksum byte.
    pub fn wire_len(&self) -> u64 {
        self.route_len as u64 + self.header_len as u64 + self.payload_len as u64 + 1
    }

    /// Number of data bytes between the route and the tail.
    pub fn body_len(&self) -> u64 {
        self.header_len as u64 + self.payload_len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> WormMeta {
        WormMeta {
            kind: WormKind::Unicast,
            msg: MessageId(1),
            injector: HostId(0),
            origin: HostId(0),
            dest: HostId(1),
            seq: 0,
            hops_left: 0,
            buffer_class: 1,
            frag_index: 0,
            frag_last: true,
            advertised_size: 100,
            stage: 0,
        }
    }

    #[test]
    fn wire_len_accounts_route_header_payload_tail() {
        let w = WormInstance {
            id: WormId(0),
            meta: meta(),
            sinks: 1,
            route: vec![RouteSym::Port(1), RouteSym::Port(2), RouteSym::Port(0)],
            route_len: 3,
            header_len: 8,
            payload_len: 100,
            created: 0,
            injected: 0,
        };
        assert_eq!(w.wire_len(), 3 + 8 + 100 + 1);
        assert_eq!(w.body_len(), 108);
    }

    #[test]
    fn kind_helpers() {
        assert!(WormKind::Unicast.is_data());
        assert!(WormKind::Multicast { group: 3 }.is_data());
        assert!(!WormKind::Control(0).is_data());
        assert_eq!(WormKind::Multicast { group: 3 }.group(), Some(3));
        assert_eq!(WormKind::SwitchMulticast { group: 9 }.group(), Some(9));
        assert_eq!(WormKind::Unicast.group(), None);
    }
}
