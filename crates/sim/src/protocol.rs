//! The protocol plug-in interface.
//!
//! Host-adapter multicast protocols (Hamiltonian circuit, rooted tree,
//! repeated unicast, the credit baseline — all in `wormcast-core`) implement
//! [`AdapterProtocol`]. The simulator calls the protocol on every
//! interesting adapter event; the protocol responds by emitting
//! [`Command`]s, which the network applies after the callback returns. This
//! command-queue shape keeps protocols free of simulator internals and makes
//! every protocol decision replayable.

use crate::engine::HostId;
use crate::time::SimTime;
use crate::worm::{MessageId, WormId, WormInstance, WormKind};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Where an application message wants to go.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Destination {
    Unicast(HostId),
    /// A multicast group id (the paper's 8-bit group space; 255 = broadcast).
    Multicast(u8),
}

/// An application-level message handed to the protocol for transmission.
#[derive(Clone, Copy, Debug)]
pub struct AppMessage {
    pub msg: MessageId,
    pub origin: HostId,
    pub dest: Destination,
    pub payload_len: u32,
    pub created: SimTime,
}

/// Admission decision when a worm's header reaches an adapter: accept it
/// into buffer space, or refuse (drop) it — the refusal is what a NACK
/// reports in the implicit-reservation scheme of Figure 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    Accept,
    Refuse,
}

/// Everything a protocol may ask the network to do.
#[derive(Clone, Debug)]
pub enum Command {
    /// Inject a worm towards `dest` (a unicast path through the fabric).
    Send(SendSpec),
    /// Record delivery of `msg` to this adapter's local host. This is the
    /// moment multicast latency stops counting for this member.
    DeliverLocal { msg: MessageId },
    /// Arrange for `on_timer(token)` to fire `delay` byte-times from now.
    SetTimer { delay: SimTime, token: u64 },
}

/// Parameters of a worm transmission.
#[derive(Clone, Debug)]
pub struct SendSpec {
    pub dest: HostId,
    pub kind: WormKind,
    /// Application message carried (for copies: the original message).
    pub msg: MessageId,
    /// Original source of the message.
    pub origin: HostId,
    /// Creation time of the original message (latency baseline).
    pub created: SimTime,
    pub seq: u32,
    pub hops_left: u16,
    pub buffer_class: u8,
    pub payload_len: u32,
    /// Size advertised in the header for the admission check downstream.
    pub advertised_size: u32,
    /// Control worms may jump the transmit queue.
    pub priority: bool,
    /// Cut-through: transmit in lockstep behind this incoming worm.
    pub follow: Option<WormId>,
    pub frag_index: u16,
    pub frag_last: bool,
    /// Protocol-defined stage marker (e.g. "relay to circuit starter" vs
    /// "circulating copy"). Carried verbatim in the worm header.
    pub stage: u8,
    /// Explicit source route (switch-level multicast tree encodings and
    /// broadcast routes). `None` uses the unicast route table for `dest`.
    pub route_override: Option<Vec<crate::worm::RouteSym>>,
    /// Hosts this worm terminates at (leaf count of a switch-level
    /// multicast tree; 1 for everything else).
    pub sinks: u32,
}

impl SendSpec {
    /// A data worm carrying `msg` to `dest` with sensible defaults.
    pub fn data(msg: &AppMessage, dest: HostId, kind: WormKind) -> Self {
        SendSpec {
            dest,
            kind,
            msg: msg.msg,
            origin: msg.origin,
            created: msg.created,
            seq: 0,
            hops_left: 0,
            buffer_class: 1,
            payload_len: msg.payload_len,
            advertised_size: msg.payload_len,
            priority: false,
            follow: None,
            frag_index: 0,
            frag_last: true,
            stage: 0,
            route_override: None,
            sinks: 1,
        }
    }

    /// A copy of a received worm, forwarded to `dest`.
    pub fn forward(inst: &WormInstance, dest: HostId) -> Self {
        SendSpec {
            dest,
            kind: inst.meta.kind,
            msg: inst.meta.msg,
            origin: inst.meta.origin,
            created: inst.created,
            seq: inst.meta.seq,
            hops_left: inst.meta.hops_left,
            buffer_class: inst.meta.buffer_class,
            payload_len: inst.payload_len,
            advertised_size: inst.meta.advertised_size,
            priority: false,
            follow: None,
            frag_index: inst.meta.frag_index,
            frag_last: inst.meta.frag_last,
            stage: inst.meta.stage,
            route_override: None,
            sinks: 1,
        }
    }

    /// A small control worm (ACK/NACK, credit messages...).
    pub fn control(tag: u8, msg: MessageId, origin: HostId, dest: HostId) -> Self {
        SendSpec {
            dest,
            kind: WormKind::Control(tag),
            msg,
            origin,
            created: 0,
            seq: 0,
            hops_left: 0,
            buffer_class: 1,
            payload_len: 4,
            advertised_size: 0,
            priority: true,
            follow: None,
            frag_index: 0,
            frag_last: true,
            stage: 0,
            route_override: None,
            sinks: 1,
        }
    }
}

/// Context handed to every protocol callback.
pub struct ProtocolCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The host this protocol instance runs on.
    pub host: HostId,
    /// Worms queued (or transmitting) at this adapter right now — the
    /// "is the output port available" test for cut-through decisions.
    pub tx_backlog: usize,
    /// Per-host deterministic RNG (for retry jitter and the like).
    pub rng: &'a mut SmallRng,
    pub(crate) commands: &'a mut Vec<Command>,
}

impl<'a> ProtocolCtx<'a> {
    /// Construct a context by hand — for protocol unit tests and custom
    /// harnesses. During a simulation the network builds the contexts.
    pub fn new(
        now: SimTime,
        host: HostId,
        tx_backlog: usize,
        rng: &'a mut SmallRng,
        commands: &'a mut Vec<Command>,
    ) -> Self {
        ProtocolCtx {
            now,
            host,
            tx_backlog,
            rng,
            commands,
        }
    }

    /// Inject a worm. See [`SendSpec`].
    pub fn send(&mut self, spec: SendSpec) {
        self.commands.push(Command::Send(spec));
    }

    /// Deliver `msg` to the local host (records the delivery timestamp).
    pub fn deliver_local(&mut self, msg: MessageId) {
        self.commands.push(Command::DeliverLocal { msg });
    }

    /// Request an `on_timer(token)` callback after `delay` byte-times.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.commands.push(Command::SetTimer { delay, token });
    }
}

/// A host-adapter protocol. Implementations live in `wormcast-core`.
///
/// All callbacks are invoked synchronously from the event loop; effects are
/// requested through [`ProtocolCtx`] commands. `Send` so a [`Network`] can
/// be moved onto a shard worker thread ([`crate::shard::ShardedNetwork`]).
///
/// [`Network`]: crate::network::Network
pub trait AdapterProtocol: Send {
    /// The local application generated a message to send.
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage);

    /// The first byte of a worm arrived: is there buffer space for its
    /// advertised size? Refusing drops the worm (the paper's NACK path).
    /// The default accepts everything (infinite buffering).
    fn on_header(&mut self, _ctx: &mut ProtocolCtx, _worm: &WormInstance) -> Admission {
        Admission::Accept
    }

    /// A worm was fully received (checksum good).
    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance);

    /// The adapter finished transmitting a worm (tail on the wire). Useful
    /// for releasing buffer space and starting the next sequential copy.
    fn on_tx_complete(&mut self, _ctx: &mut ProtocolCtx, _worm: &WormInstance) {}

    /// A timer requested via [`ProtocolCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut ProtocolCtx, _token: u64) {}

    /// One of this host's worms was flushed from the fabric by a Backward
    /// Reset (the switch-level multicast-IDLE scheme). The paper's source
    /// "retransmits the unicast message after a random time out"; the
    /// default silently accepts the loss.
    fn on_worm_flushed(&mut self, _ctx: &mut ProtocolCtx, _worm: &WormInstance) {}
}

/// A per-host traffic source: decides when the next message is generated and
/// what it looks like. Implementations live in `wormcast-traffic`. `Send`
/// for the same reason as [`AdapterProtocol`]: sharded runs move each
/// engine onto its own worker thread.
pub trait TrafficSource: Send {
    /// Called at each injection event for this host. Returns the message to
    /// send now (if any) and the delay until the next injection event (or
    /// `None` to stop generating).
    fn next(&mut self, now: SimTime, host: HostId) -> (Option<SourceMessage>, Option<SimTime>);
}

/// What a traffic source produces; the network assigns the [`MessageId`] and
/// wraps it into an [`AppMessage`].
#[derive(Clone, Copy, Debug)]
pub struct SourceMessage {
    pub dest: Destination,
    pub payload_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sendspec_data_defaults() {
        let msg = AppMessage {
            msg: MessageId(7),
            origin: HostId(1),
            dest: Destination::Multicast(3),
            payload_len: 400,
            created: 123,
        };
        let s = SendSpec::data(&msg, HostId(2), WormKind::Multicast { group: 3 });
        assert_eq!(s.dest, HostId(2));
        assert_eq!(s.msg, MessageId(7));
        assert_eq!(s.payload_len, 400);
        assert_eq!(s.advertised_size, 400);
        assert_eq!(s.created, 123);
        assert!(!s.priority);
        assert!(s.frag_last);
    }

    #[test]
    fn control_worms_are_priority_and_tiny() {
        let s = SendSpec::control(1, MessageId(9), HostId(0), HostId(5));
        assert!(s.priority);
        assert!(s.payload_len <= 8);
        assert_eq!(s.kind, WormKind::Control(1));
    }

    #[test]
    fn ctx_collects_commands() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx {
            now: 10,
            host: HostId(0),
            tx_backlog: 0,
            rng: &mut rng,
            commands: &mut cmds,
        };
        ctx.deliver_local(MessageId(4));
        ctx.set_timer(100, 42);
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], Command::DeliverLocal { msg: MessageId(4) }));
        assert!(matches!(
            cmds[1],
            Command::SetTimer {
                delay: 100,
                token: 42
            }
        ));
    }
}
