//! The discrete-event core: event type and scheduler.

use crate::link::ChanId;
use crate::time::SimTime;
use crate::wheel::TimingWheel;
use crate::worm::WireByte;
use serde::{Deserialize, Serialize};

/// Identifier of a host (adapter + attached host machine).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Identifier of a crossbar switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// A control symbol travelling on the reverse channel of a link.
///
/// `Stop`/`Go` implement the backpressure protocol of the paper's Figure 1.
/// `BackwardReset` is the Myrinet `BRES` symbol, used by the switch-level
/// "multicast-IDLE flush" scheme to evict a blocked unicast worm.
///
/// `SpanNack`/`SpanCredit` are engine-internal symbols of the sharded
/// span protocol (DESIGN.md §3.4): the receive-side owner of a cut link
/// rejects an optimistic span into congestion with `SpanNack` (the sender
/// falls back to per-byte emission) and restores the sender's optimism
/// with `SpanCredit` once the slack buffer drains. They carry no worm
/// semantics — both sides' byte streams are identical either way — so
/// they never appear on intra-shard channels; traced span-batched runs
/// record them as `span-nack`/`span-credit` engine events, which the
/// per-byte expander (`wormcast_bench::trace_io::expand_spans`) erases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtrlSym {
    Stop,
    Go,
    BackwardReset,
    SpanNack,
    SpanCredit,
}

/// Every event the simulator processes.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// The transmit side of `ch` should try to put its next byte on the wire.
    /// `gen` must match the channel's current kick generation; a mismatch
    /// means the kick belonged to a span chain cancelled by a STOP and the
    /// event is ignored (the timing wheel has no random removal).
    TxKick { ch: ChanId, gen: u32 },
    /// A byte arrives at the receive side of `ch`.
    RxByte { ch: ChanId, byte: WireByte },
    /// A batched run of data bytes arrives at the receive side of `ch`
    /// (span-batched mode). The span itself is queued on the channel.
    ///
    /// On a cut link this event plays two roles: the receive-side owner
    /// schedules it at first-byte arrival to admit (or expand) the span,
    /// and the transmit-side owner schedules it at end-of-transmission to
    /// retire its local wire-occupancy entry (see `shard.rs`).
    RxSpan { ch: ChanId },
    /// One byte of a rejected cross-shard span lands at the receive side
    /// of `ch` (sharded runs only): the span was turned back into the
    /// per-byte arrival stream it stood for, one event per wire slot.
    RxForeign { ch: ChanId },
    /// A control symbol arrives at the *transmit* side of `ch` (it travelled
    /// on the reverse channel from the receiver).
    CtrlRx { ch: ChanId, sym: CtrlSym },
    /// A protocol timer at a host fires. `token` is protocol-defined.
    HostTimer { host: HostId, token: u64 },
    /// Traffic source at `host` generates its next message.
    Inject { host: HostId },
    /// Periodic liveness check (deadlock watchdog).
    Watchdog,
    /// End of the measured run.
    Stop,
}

impl Event {
    /// Canonical same-timestamp ordering key (see DESIGN.md §3.3).
    ///
    /// Events sharing a byte-time fire in ascending key order. The key
    /// depends only on the event itself — kind, then target channel or
    /// host — never on when it was scheduled, so a sharded run (where
    /// boundary events enter the wheel at a nondeterministic wall-clock
    /// moment) replays exactly the schedule the sequential engine uses.
    ///
    /// Kind ranks: `Stop` first (a run deadline cuts off the deadline
    /// tick, as it always has), then `Watchdog`, then control symbols
    /// (STOP/GO must precede the same-tick `TxKick` they gate — the span
    /// truncation rule relies on this), then arrivals, then transmit
    /// kicks, then host-side events. Two events with equal keys target
    /// the same entity and are therefore produced by the same shard, where
    /// schedule order (the seq tie-break) is itself deterministic.
    pub fn canon_key(&self) -> u64 {
        const ID: u64 = 1 << 32;
        match *self {
            Event::Stop => 0,
            Event::Watchdog => ID - 1,
            // All control symbols for one channel are emitted by the single
            // entity at its receive side, so their same-tick relative order
            // is the emission order — preserved by the push-seq tie-break
            // both in a sequential run and through a shard mailbox (which
            // is per-sender FIFO). No per-symbol rank needed.
            Event::CtrlRx { ch, .. } => ID + ch.0 as u64,
            // An expanded foreign-span byte is *the* per-byte arrival the
            // span stood for, so it takes exactly the RxByte rank — the
            // canonical per-byte schedule's position for that wire slot.
            // The two kinds never share a (time, lane) pair: per-byte
            // boundary bytes are paced behind the span they follow.
            Event::RxByte { ch, .. } | Event::RxForeign { ch } => 4 * ID + ch.0 as u64,
            Event::RxSpan { ch } => 5 * ID + ch.0 as u64,
            Event::TxKick { ch, .. } => 6 * ID + ch.0 as u64,
            Event::HostTimer { host, .. } => 7 * ID + host.0 as u64,
            Event::Inject { host } => 8 * ID + host.0 as u64,
        }
    }
}

/// Event queue with deterministic same-time ordering.
pub struct Scheduler {
    wheel: TimingWheel<Event>,
    now: SimTime,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    pub fn new() -> Self {
        Scheduler {
            wheel: TimingWheel::with_order(Event::canon_key),
            now: 0,
        }
    }

    /// Current simulation time (time of the most recently popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` to fire `delay` byte-times from now.
    #[inline]
    pub fn after(&mut self, delay: SimTime, ev: Event) {
        self.wheel.push(self.now + delay, ev);
    }

    /// Schedule `ev` at the absolute time `at` (must not be in the past).
    #[inline]
    pub fn at(&mut self, at: SimTime, ev: Event) {
        self.wheel.push(at.max(self.now), ev);
    }

    /// Pop the next event, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let (t, ev) = self.wheel.pop()?;
        self.now = t;
        Some((t, ev))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// Total events ever scheduled (engine cost metric).
    pub fn events_scheduled(&self) -> u64 {
        self.wheel.pushed()
    }

    /// Total events ever dispatched.
    pub fn events_fired(&self) -> u64 {
        self.wheel.popped()
    }

    /// Timestamp of the next pending event, if any. O(1): backed by the
    /// wheel's slot-occupancy bitmap, so deadline checks and watchdogs may
    /// call this freely even when the schedule is sparse.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_orders_events() {
        let mut s = Scheduler::new();
        s.after(10, Event::Watchdog);
        s.after(1, Event::Stop);
        let (t1, e1) = s.pop().unwrap();
        assert_eq!(t1, 1);
        assert!(matches!(e1, Event::Stop));
        assert_eq!(s.now(), 1);
        let (t2, e2) = s.pop().unwrap();
        assert_eq!(t2, 10);
        assert!(matches!(e2, Event::Watchdog));
    }

    #[test]
    fn same_time_fifo() {
        let mut s = Scheduler::new();
        s.after(5, Event::Inject { host: HostId(1) });
        s.after(5, Event::Inject { host: HostId(2) });
        match s.pop().unwrap().1 {
            Event::Inject { host } => assert_eq!(host, HostId(1)),
            other => panic!("unexpected {other:?}"),
        }
        match s.pop().unwrap().1 {
            Event::Inject { host } => assert_eq!(host, HostId(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn absolute_scheduling_clamps_to_now() {
        let mut s = Scheduler::new();
        s.after(10, Event::Stop);
        s.pop().unwrap();
        assert_eq!(s.now(), 10);
        // Absolute time in the past is clamped to now rather than panicking.
        s.at(3, Event::Watchdog);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, 10);
    }
}
