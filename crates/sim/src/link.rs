//! Links, lanes and the typed lane-port API.
//!
//! A physical Myrinet link is full duplex: data bytes flow one way while
//! control symbols (`STOP`, `GO`, ...) are interleaved on the opposite
//! direction. The simulator models each direction as a [`Link`] owning one
//! or more [`Lane`]s. A lane is the unit the engine schedules: it carries
//! its own occupancy, STOP/GO state, in-flight span ring and stall
//! accounting, and moves at most one byte per byte-time, delivering it
//! `delay` byte-times later. Propagation delay is expressed in byte-times
//! (the paper's shufflenet experiment uses 1000 byte-time links).
//!
//! The paper's fabric is single-lane; multi-lane links (virtual channels in
//! the NoC literature, "lanes" in Stergiou's multi-lane MIN study) are a
//! pure capacity extension: every lane behaves exactly like a single-lane
//! link, and a fabric built with one lane per link is byte-for-byte the
//! paper's fabric.
//!
//! # The narrow surface
//!
//! [`Lane`] exposes **no public mutable fields**. Switch, adapter and
//! engine code goes through a ready/valid-style surface:
//!
//! - [`TxPort::try_send`] / [`TxPort::ready_at`] — put a byte (or a span)
//!   on the wire, respecting pacing and STOP;
//! - [`RxPort::deliver`] / [`RxPort::deliver_span`] — take an arrival off
//!   the wire;
//! - [`Lane::stop`] / [`Lane::go`] — flow-control state changes (with
//!   stall-interval accounting built in).
//!
//! Everything else is read-only accessors and the [`LinkStats`] snapshot.
//!
//! # Identity scheme
//!
//! [`ChanId`] remains the flat, dense per-lane identity the timing wheel,
//! span fast path, sharded mailboxes and trace schema key on. A directed
//! link's lanes occupy a contiguous `ChanId` range (`Link::lane_ids`);
//! lane `i` of the forward direction pairs with lane `i` of the backward
//! direction via [`Lane::rev`]. With one lane per link the numbering is
//! exactly the historical single-channel numbering.

use crate::engine::{HostId, SwitchId};
use crate::time::SimTime;
use crate::worm::WormId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Index of a directed lane in the network (dense across all links).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChanId(pub u32);

/// Index of a directed [`Link`] in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// A port number on a node, as named by route bytes and fabric specs.
///
/// Serializes transparently as the underlying `u8`, so fabric-spec JSON is
/// unchanged from the raw-`u8` era.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct PortId(pub u8);

impl PortId {
    /// The raw port index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A node reference: either a crossbar switch or a host adapter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum NodeRef {
    Switch(SwitchId),
    Host(HostId),
}

/// One end of a lane: a port *slot* on a node. Host adapters have a single
/// network port (slot 0). On a switch, slots enumerate `(physical port,
/// lane)` pairs in port-major order — with single-lane links the slot index
/// *is* the physical port number. The physical ports of the underlying
/// link are reported by [`Link`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Endpoint {
    pub node: NodeRef,
    pub port: PortId,
}

/// A batched run of contiguous data bytes of one worm in flight on a
/// lane (span-batched mode). Byte `j` of the span conceptually occupies
/// the wire slot at `start + j`; the whole run is delivered by a single
/// `RxSpan` event at `start + delay`.
#[derive(Clone, Copy, Debug)]
pub struct SpanInFlight {
    pub worm: WormId,
    /// Time the first byte of the span was put on the wire.
    pub start: SimTime,
    /// Number of data bytes in the span. A STOP truncation may cut this
    /// back (possibly to the bytes already past the transmitter); the entry
    /// stays queued so it pairs up with its already-scheduled `RxSpan`.
    pub len: u64,
}

/// Read-only counter snapshot of one lane, for statistics consumers.
/// Obtain with [`Lane::stats`].
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Total data bytes carried.
    pub bytes_carried: u64,
    /// Total IDLE fill bytes carried (wasted bandwidth, Section 3).
    pub idles_carried: u64,
    /// Number of STOP intervals that began on this lane.
    pub stalls: u64,
    /// Accumulated byte-times spent under STOP (closed intervals only; use
    /// [`Lane::stall_time`] to include a still-open interval).
    pub stall_total: SimTime,
    /// Bytes currently in flight on the wire.
    pub in_flight: u32,
    /// True while a STOP from downstream is in force.
    pub stopped: bool,
}

/// Transmit-side state of one directed lane.
///
/// All fields are private: mutation goes through [`TxPort`] / [`RxPort`] /
/// [`Lane::stop`] / [`Lane::go`], reads through the accessors below.
#[derive(Clone, Debug)]
pub struct Lane {
    id: ChanId,
    src: Endpoint,
    dst: Endpoint,
    /// Propagation delay in byte-times (≥ 1).
    delay: SimTime,
    /// The paired lane in the opposite direction.
    rev: ChanId,
    /// The directed link this lane belongs to.
    link: LinkId,
    /// This lane's index within its link (0-based).
    lane: u8,
    /// True while a `STOP` from downstream is in force.
    stopped: bool,
    /// True while a `TxKick` event is pending for this lane — guards
    /// against duplicate kicks.
    tx_active: bool,
    /// Earliest time the next byte may be put on the wire.
    next_tx_time: SimTime,
    /// Bytes currently in flight on the wire (sent, not yet received).
    in_flight: u32,
    /// Total data bytes carried (for utilization statistics).
    bytes_carried: u64,
    /// Total IDLE fill bytes carried (wasted bandwidth, Section 3).
    idles_carried: u64,
    /// When the current STOP interval began, if one is in force.
    stalled_since: Option<SimTime>,
    /// Accumulated byte-times spent under STOP (closed intervals only; an
    /// open interval is accounted by [`Lane::stall_time`]).
    stall_total: SimTime,
    /// Number of STOP intervals that began on this lane.
    stalls: u64,
    /// Batched byte runs currently on the wire, in send order
    /// (span-batched mode only; empty in per-byte mode).
    spans: VecDeque<SpanInFlight>,
    /// Kick generation: bumped when a STOP truncates an in-flight span so
    /// the span chain's already-scheduled end-of-span `TxKick` is ignored.
    kick_gen: u32,
    /// Transmit-side owner of a cut lane only: whether optimistic spans may
    /// go out (cleared by a `SpanNack`, restored by `SpanCredit`/`GO`).
    span_optimism: bool,
    /// Receive-side owner of a cut lane only: the send-slot cutoff implied
    /// by the newest STOP this side emitted — a span's bytes at slots
    /// `>= cutoff` were revoked at the (foreign) transmitter. 0 = never
    /// stopped; monotone (a fresh STOP can only raise it).
    foreign_stop_cutoff: SimTime,
    /// Receive-side owner of a cut lane only: rejected optimistic spans
    /// being re-expanded into their per-byte arrival stream, in wire order.
    foreign_runs: VecDeque<ForeignRun>,
    /// Receive-side owner of a cut lane only: a `SpanNack` is in force and
    /// the matching `SpanCredit` has not been sent yet.
    nack_sent: bool,
}

/// A rejected cross-shard span being expanded back into per-byte arrivals
/// at the receive-side owner: bytes at wire slots `next .. end` are still
/// owed (one `Event::RxForeign` each).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ForeignRun {
    pub(crate) worm: WormId,
    /// Arrival slot of the next owed byte.
    pub(crate) next: SimTime,
    /// One past the last arrival slot (clamped when a STOP revokes the
    /// span's unsent tail at the transmitter).
    pub(crate) end: SimTime,
}

impl Lane {
    pub(crate) fn new(
        id: ChanId,
        src: Endpoint,
        dst: Endpoint,
        delay: SimTime,
        rev: ChanId,
        link: LinkId,
        lane: u8,
    ) -> Self {
        // Zero delays are rejected up front with a typed
        // `ConfigError::ZeroDelay` by `Network::try_build`.
        debug_assert!(delay >= 1, "lane delay must be at least one byte-time");
        Lane {
            id,
            src,
            dst,
            delay,
            rev,
            link,
            lane,
            stopped: false,
            tx_active: false,
            next_tx_time: 0,
            in_flight: 0,
            bytes_carried: 0,
            idles_carried: 0,
            stalled_since: None,
            stall_total: 0,
            stalls: 0,
            // Pre-size the in-flight span ring: `SpanInFlight` is `Copy`,
            // so with capacity in hand the steady-state span path performs
            // no allocator calls (a lane rarely carries more than a couple
            // of outstanding spans at once).
            spans: VecDeque::with_capacity(8),
            kick_gen: 0,
            span_optimism: true,
            foreign_stop_cutoff: 0,
            foreign_runs: VecDeque::new(),
            nack_sent: false,
        }
    }

    // -- read accessors ------------------------------------------------------

    #[inline]
    pub fn id(&self) -> ChanId {
        self.id
    }

    #[inline]
    pub fn src(&self) -> Endpoint {
        self.src
    }

    #[inline]
    pub fn dst(&self) -> Endpoint {
        self.dst
    }

    /// Propagation delay in byte-times.
    #[inline]
    pub fn delay(&self) -> SimTime {
        self.delay
    }

    /// The paired lane in the opposite direction.
    #[inline]
    pub fn rev(&self) -> ChanId {
        self.rev
    }

    /// The directed link this lane belongs to.
    #[inline]
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// This lane's index within its link (0-based).
    #[inline]
    pub fn lane_index(&self) -> u8 {
        self.lane
    }

    /// True while a STOP from downstream is in force.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Bytes currently in flight on the wire.
    #[inline]
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Transmit side: bytes of an in-flight span whose per-byte send
    /// slots are still in the future. A span emission batch-pops its
    /// whole run from the producer's buffer at emission time, while the
    /// per-byte twin dequeues one byte per send slot — until the span's
    /// last slot passes, the producer's per-byte-equivalent occupancy
    /// exceeds its local one by up to this amount. (A STOP truncation
    /// rewinds `next_tx_time`, relinquishing the revoked slots.)
    #[inline]
    pub(crate) fn drain_advance(&self, now: SimTime) -> u64 {
        self.next_tx_time.saturating_sub(now + 1)
    }

    /// Counter snapshot for statistics consumers.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            bytes_carried: self.bytes_carried,
            idles_carried: self.idles_carried,
            stalls: self.stalls,
            stall_total: self.stall_total,
            in_flight: self.in_flight,
            stopped: self.stopped,
        }
    }

    /// Total byte-times this lane has spent under STOP, up to `now`
    /// (includes the still-open interval, if any).
    pub fn stall_time(&self, now: SimTime) -> SimTime {
        self.stall_total
            + self
                .stalled_since
                .map_or(0, |since| now.saturating_sub(since))
    }

    /// Fraction of the elapsed run this lane spent stalled by STOP
    /// backpressure.
    pub fn stall_fraction(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stall_time(elapsed) as f64 / elapsed as f64
        }
    }

    /// Lane utilization over `elapsed` byte-times (data bytes only).
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_carried as f64 / elapsed as f64
        }
    }

    // -- flow control --------------------------------------------------------

    /// A STOP from downstream takes effect: block transmission and open a
    /// stall interval (idempotent while already stopped).
    pub fn stop(&mut self, now: SimTime) {
        self.stopped = true;
        // Stall-interval accounting runs whether or not tracing is on;
        // STOP/GO symbols are rare relative to bytes.
        if self.stalled_since.is_none() {
            self.stalled_since = Some(now);
            self.stalls += 1;
        }
    }

    /// A GO from downstream takes effect: unblock transmission and close
    /// the open stall interval. The caller re-kicks the lane.
    pub fn go(&mut self, now: SimTime) {
        self.stopped = false;
        if let Some(since) = self.stalled_since.take() {
            self.stall_total += now - since;
        }
    }

    // -- crate-internal engine surface ---------------------------------------

    /// Reserve the pending-kick slot: returns the time and generation the
    /// kick must be scheduled with, or `None` when a kick is already
    /// pending or a STOP is in force.
    #[inline]
    pub(crate) fn arm_kick(&mut self, now: SimTime) -> Option<(SimTime, u32)> {
        if self.tx_active || self.stopped {
            return None;
        }
        self.tx_active = true;
        Some((self.next_tx_time.max(now), self.kick_gen))
    }

    /// Whether a kick carrying `gen` is still current (STOP truncation
    /// invalidates older generations).
    #[inline]
    pub(crate) fn kick_is_current(&self, gen: u32) -> bool {
        gen == self.kick_gen
    }

    /// The transmit side went idle: no follow-up kick is pending.
    #[inline]
    pub(crate) fn set_tx_idle(&mut self) {
        self.tx_active = false;
    }

    /// Cut the newest in-flight span back to its already-sent prefix (a
    /// STOP took effect at `now`). Returns the worm and the number of
    /// revoked bytes the caller must hand back to the producer, or `None`
    /// if nothing was still sending. Cancels the pending end-of-span kick
    /// by bumping the generation.
    pub(crate) fn truncate_newest_span(&mut self, now: SimTime) -> Option<(WormId, u64)> {
        debug_assert!(
            self.spans.iter().rev().skip(1).all(|s| s.start + s.len <= now),
            "only the newest span can still be sending"
        );
        let span = self.spans.back_mut()?;
        if span.start + span.len <= now {
            return None;
        }
        let sent = (now - span.start).max(1).min(span.len);
        let revoked = span.len - sent;
        span.len = sent;
        if revoked == 0 {
            return None;
        }
        let worm = span.worm;
        self.in_flight -= revoked as u32;
        self.bytes_carried -= revoked;
        self.next_tx_time = now;
        // Cancel the pending end-of-span kick; the GO that lifts this
        // STOP will start a fresh chain at `next_tx_time`.
        self.kick_gen = self.kick_gen.wrapping_add(1);
        self.tx_active = false;
        Some((worm, revoked))
    }

    // -- cross-shard span protocol (DESIGN.md §3.4) --------------------------

    /// Transmit-side owner of a cut lane: may optimistic spans go out?
    #[inline]
    pub(crate) fn span_optimism(&self) -> bool {
        self.span_optimism
    }

    #[inline]
    pub(crate) fn set_span_optimism(&mut self, on: bool) {
        self.span_optimism = on;
    }

    /// Receive-side owner of a cut lane: an optimistic span arrived from
    /// the foreign transmitter. Queued in wire order (the mailbox is FIFO)
    /// and counted in this copy's `in_flight` until delivery.
    pub(crate) fn enqueue_foreign_span(&mut self, span: SpanInFlight) {
        self.in_flight += span.len as u32;
        self.spans.push_back(span);
    }

    /// Receive-side owner of a cut lane emitted a STOP at `now`: it lands
    /// at the foreign transmitter at `now + delay`, which truncates any
    /// span still sending there. Record that cutoff (monotone — spans
    /// emitted after the matching GO start later than any cutoff) and clamp
    /// the active expansion runs: the transmitter physically sent only the
    /// bytes before the cutoff, so arrivals end at `cutoff + delay`.
    pub(crate) fn note_foreign_stop(&mut self, now: SimTime) {
        let cutoff = now + self.delay;
        debug_assert!(cutoff >= self.foreign_stop_cutoff, "clock runs forward");
        self.foreign_stop_cutoff = cutoff;
        let arrivals_end = cutoff + self.delay;
        for run in &mut self.foreign_runs {
            run.end = run.end.min(arrivals_end);
        }
    }

    /// Truncate the just-arriving foreign span (queue front) against the
    /// recorded STOP cutoff, mirroring exactly the truncation the foreign
    /// transmitter performed on its copy: bytes at send slots `>= cutoff`
    /// never went on the wire. Returns the revoked byte count.
    pub(crate) fn truncate_arriving_foreign_span(&mut self) -> u64 {
        let cutoff = self.foreign_stop_cutoff;
        let Some(span) = self.spans.front_mut() else {
            return 0;
        };
        if cutoff <= span.start || span.start + span.len <= cutoff {
            return 0;
        }
        // `cutoff > start` (a span can never start at its own STOP-arrival
        // slot: the STOP precedes the same-tick kick), so the transmitter's
        // `sent = (cutoff - start).max(1)` is exactly `cutoff - start`.
        let sent = cutoff - span.start;
        let revoked = span.len - sent;
        span.len = sent;
        self.in_flight -= revoked as u32;
        revoked
    }

    /// Worm carried by the oldest in-flight span, if any (trace
    /// attribution for receive-side truncation).
    pub(crate) fn front_span_worm(&self) -> Option<crate::worm::WormId> {
        self.spans.front().map(|s| s.worm)
    }

    pub(crate) fn push_foreign_run(&mut self, run: ForeignRun) {
        self.foreign_runs.push_back(run);
    }

    pub(crate) fn foreign_run_front(&self) -> Option<ForeignRun> {
        self.foreign_runs.front().copied()
    }

    pub(crate) fn foreign_run_front_mut(&mut self) -> Option<&mut ForeignRun> {
        self.foreign_runs.front_mut()
    }

    pub(crate) fn pop_foreign_run(&mut self) {
        self.foreign_runs.pop_front();
    }

    /// Receive-side owner of a cut lane: bytes are still on the wire or
    /// mid-expansion — the upstream starvation a deadlock probe sees is
    /// transit latency, not a genuine wait.
    pub(crate) fn has_foreign_in_transit(&self) -> bool {
        !self.spans.is_empty() || !self.foreign_runs.is_empty()
    }

    /// Receive-side owner of a cut lane: bytes the foreign transmitter
    /// still owes this copy beyond the per-byte pacing bound — queued
    /// optimistic spans (the only contribution to this copy's
    /// `in_flight`) plus the un-expanded remainder of rejected runs. An
    /// optimistic span occupies send slots reaching into the
    /// transmitter's future, so unlike paced per-byte traffic these are
    /// not bounded by the wire delay.
    pub(crate) fn foreign_span_backlog(&self) -> u64 {
        self.in_flight as u64
            + self
                .foreign_runs
                .iter()
                .map(|r| r.end.saturating_sub(r.next))
                .sum::<u64>()
    }

    #[inline]
    pub(crate) fn nack_pending(&self) -> bool {
        self.nack_sent
    }

    #[inline]
    pub(crate) fn set_nack_pending(&mut self, on: bool) {
        self.nack_sent = on;
    }
}

/// Confirmation of a successful [`TxPort::try_send`]: when the payload
/// lands and which kick generation a follow-up `TxKick` must carry.
#[derive(Clone, Copy, Debug)]
pub struct SendTicket {
    /// Arrival time at the receive side (`now + delay`).
    pub deliver_at: SimTime,
    /// Kick generation current at send time.
    pub gen: u32,
}

/// What a single [`TxPort::try_send`] puts on the wire.
#[derive(Clone, Copy, Debug)]
pub enum TxPayload {
    /// One data byte.
    Data,
    /// One IDLE fill byte (counted as wasted bandwidth).
    Idle,
    /// A contiguous run of `len` data bytes of `worm`, moved as one span
    /// (span-batched mode).
    Span { worm: WormId, len: u64 },
}

/// Transmit-side handle on a lane: the only way to put bytes on the wire.
pub struct TxPort<'a> {
    lane: &'a mut Lane,
}

impl<'a> TxPort<'a> {
    #[inline]
    pub(crate) fn new(lane: &'a mut Lane) -> Self {
        TxPort { lane }
    }

    /// Earliest time the next byte may be put on the wire.
    #[inline]
    pub fn ready_at(&self) -> SimTime {
        self.lane.next_tx_time
    }

    /// True while a STOP from downstream blocks this lane.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.lane.stopped
    }

    /// Try to put `payload` on the wire at `now`. Fails (returns `None`)
    /// when a STOP is in force or the lane is still pacing a previous byte
    /// (`now < ready_at`). On success the lane's occupancy, pacing and
    /// carried-byte counters are updated; the caller schedules the arrival
    /// at `SendTicket::deliver_at`.
    ///
    /// `count_in_flight` is false only for cross-shard sends, where the
    /// receive-side owner keeps the occupancy (see `shard.rs`).
    pub fn try_send(
        &mut self,
        now: SimTime,
        payload: TxPayload,
        count_in_flight: bool,
    ) -> Option<SendTicket> {
        let l = &mut *self.lane;
        if l.stopped || now < l.next_tx_time {
            return None;
        }
        match payload {
            TxPayload::Data => {
                if count_in_flight {
                    l.in_flight += 1;
                }
                l.bytes_carried += 1;
                l.next_tx_time = now + 1;
            }
            TxPayload::Idle => {
                if count_in_flight {
                    l.in_flight += 1;
                }
                l.idles_carried += 1;
                l.next_tx_time = now + 1;
            }
            TxPayload::Span { worm, len } => {
                // Spans cross shard boundaries with `count_in_flight` true:
                // the transmit-side copy tracks wire occupancy until the
                // end-of-transmission retirement event (network.rs).
                l.in_flight += len as u32;
                l.bytes_carried += len;
                l.next_tx_time = now + len;
                l.spans.push_back(SpanInFlight {
                    worm,
                    start: now,
                    len,
                });
            }
        }
        Some(SendTicket {
            deliver_at: now + l.delay,
            gen: l.kick_gen,
        })
    }
}

/// Receive-side handle on a lane: the only way to take arrivals off the
/// wire.
pub struct RxPort<'a> {
    lane: &'a mut Lane,
}

impl<'a> RxPort<'a> {
    #[inline]
    pub(crate) fn new(lane: &'a mut Lane) -> Self {
        RxPort { lane }
    }

    /// One byte arrived: drop it from the wire occupancy and return where
    /// it lands. `counted_in_flight` is false for bytes sent by a foreign
    /// shard (they never incremented the local occupancy).
    #[inline]
    pub fn deliver(&mut self, counted_in_flight: bool) -> Endpoint {
        if counted_in_flight {
            self.lane.in_flight -= 1;
        }
        self.lane.dst
    }

    /// The oldest in-flight span arrived: dequeue it (spans and single
    /// bytes share FIFO wire order) and return it together with the
    /// landing endpoint.
    #[inline]
    pub fn deliver_span(&mut self) -> (Endpoint, SpanInFlight) {
        let span = self
            .lane
            .spans
            .pop_front()
            .expect("RxSpan without queued span");
        self.lane.in_flight -= span.len as u32;
        (self.lane.dst, span)
    }
}

// ---------------------------------------------------------------------------
// Links
// ---------------------------------------------------------------------------

/// A directed link: the bundle of [`Lane`]s connecting one transmit
/// endpoint to one receive endpoint. The link records the *physical* ports
/// of its endpoints (as a fabric spec names them); its lanes occupy the
/// contiguous `ChanId` range returned by [`Link::lane_ids`]. Lane storage
/// itself lives in the network's dense lane slab so `ChanId` stays a flat
/// index — ask the network for `link_lanes(id)` to borrow them.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    id: LinkId,
    src: NodeRef,
    dst: NodeRef,
    /// Physical transmit-side port.
    src_port: PortId,
    /// Physical receive-side port.
    dst_port: PortId,
    delay: SimTime,
    first_lane: ChanId,
    num_lanes: u8,
}

impl Link {
    pub(crate) fn new(
        id: LinkId,
        src: (NodeRef, PortId),
        dst: (NodeRef, PortId),
        delay: SimTime,
        first_lane: ChanId,
        num_lanes: u8,
    ) -> Self {
        Link {
            id,
            src: src.0,
            dst: dst.0,
            src_port: src.1,
            dst_port: dst.1,
            delay,
            first_lane,
            num_lanes,
        }
    }

    #[inline]
    pub fn id(&self) -> LinkId {
        self.id
    }

    #[inline]
    pub fn src(&self) -> NodeRef {
        self.src
    }

    #[inline]
    pub fn dst(&self) -> NodeRef {
        self.dst
    }

    /// Physical transmit-side port (as the fabric spec names it).
    #[inline]
    pub fn src_port(&self) -> PortId {
        self.src_port
    }

    /// Physical receive-side port.
    #[inline]
    pub fn dst_port(&self) -> PortId {
        self.dst_port
    }

    #[inline]
    pub fn delay(&self) -> SimTime {
        self.delay
    }

    #[inline]
    pub fn num_lanes(&self) -> u8 {
        self.num_lanes
    }

    /// The contiguous `ChanId` range of this link's lanes.
    pub fn lane_ids(&self) -> impl Iterator<Item = ChanId> {
        let base = self.first_lane.0;
        (base..base + self.num_lanes as u32).map(ChanId)
    }

    /// The `ChanId` of lane `i` of this link.
    #[inline]
    pub fn lane_id(&self, i: u8) -> ChanId {
        debug_assert!(i < self.num_lanes);
        ChanId(self.first_lane.0 + i as u32)
    }
}

// ---------------------------------------------------------------------------
// Lane arbitration
// ---------------------------------------------------------------------------

/// One selectable output lane, offered to a [`LaneArbiter`].
#[derive(Clone, Copy, Debug)]
pub struct LaneCandidate {
    /// Lane index within the physical port (0-based).
    pub lane: u8,
    /// Bytes currently in flight on that lane's outgoing channel.
    pub in_flight: u32,
}

/// Picks which free lane of a physical output port a granted worm binds
/// to.
///
/// # Contract
///
/// `pick` is called with a non-empty candidate list (the *free* lanes of
/// one physical port, in ascending lane order) and must return an index
/// into that list. Implementations must be deterministic — the simulator's
/// replay guarantees extend through the arbiter — and must not assume all
/// lanes of the port are present (busy lanes are filtered out). With a
/// single candidate every conforming arbiter picks it, which is how a
/// single-lane fabric degenerates to the historical behavior.
pub trait LaneArbiter: Send + std::fmt::Debug {
    fn pick(&mut self, candidates: &[LaneCandidate], num_lanes: u8) -> usize;
}

/// Selects lanes round-robin by lane index, starting from a seeded offset.
#[derive(Clone, Debug)]
pub struct SeededRoundRobin {
    next: u8,
}

impl SeededRoundRobin {
    pub fn new(seed: u64) -> Self {
        SeededRoundRobin {
            next: (seed % 251) as u8,
        }
    }
}

impl LaneArbiter for SeededRoundRobin {
    fn pick(&mut self, candidates: &[LaneCandidate], num_lanes: u8) -> usize {
        debug_assert!(!candidates.is_empty());
        let n = num_lanes.max(1);
        for step in 0..n {
            let want = (self.next.wrapping_add(step)) % n;
            if let Some(pos) = candidates.iter().position(|c| c.lane == want) {
                self.next = (want + 1) % n;
                return pos;
            }
        }
        // Candidates are always lanes of this port.
        unreachable!("candidate list held an out-of-range lane");
    }
}

/// Selects the free lane with the fewest bytes in flight (ties broken by
/// lowest lane index).
#[derive(Clone, Debug, Default)]
pub struct LeastOccupied;

impl LaneArbiter for LeastOccupied {
    fn pick(&mut self, candidates: &[LaneCandidate], _num_lanes: u8) -> usize {
        debug_assert!(!candidates.is_empty());
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let b = &candidates[best];
            if (c.in_flight, c.lane) < (b.in_flight, b.lane) {
                best = i;
            }
        }
        best
    }
}

/// Serializable arbiter selection, configured via
/// `NetworkConfig::builder().arbiter(...)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum LaneArbiterKind {
    /// [`SeededRoundRobin`] (the default).
    #[default]
    RoundRobin,
    /// [`LeastOccupied`].
    LeastOccupied,
}

impl LaneArbiterKind {
    /// Instantiate the arbiter for one physical output port. `stream`
    /// decorrelates the round-robin starting offsets of different ports
    /// under one master seed.
    pub fn instantiate(self, seed: u64, stream: u64) -> Box<dyn LaneArbiter> {
        match self {
            LaneArbiterKind::RoundRobin => Box::new(SeededRoundRobin::new(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(stream),
            )),
            LaneArbiterKind::LeastOccupied => Box::new(LeastOccupied),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(port: u8) -> Endpoint {
        Endpoint {
            node: NodeRef::Switch(SwitchId(0)),
            port: PortId(port),
        }
    }

    fn lane() -> Lane {
        Lane::new(ChanId(0), ep(0), ep(1), 1, ChanId(1), LinkId(0), 0)
    }

    #[test]
    fn utilization_of_idle_lane_is_zero() {
        let l = lane();
        assert_eq!(l.utilization(1000), 0.0);
        assert_eq!(l.utilization(0), 0.0);
        assert_eq!(l.stats().bytes_carried, 0);
    }

    #[test]
    fn stall_accounting_covers_open_intervals() {
        let mut l = lane();
        assert_eq!(l.stall_time(100), 0);
        l.stop(20);
        l.go(50); // closed interval: 30 byte-times
        assert_eq!(l.stall_time(100), 30);
        l.stop(80); // open interval: 20 more at t=100
        assert_eq!(l.stall_time(100), 50);
        assert!((l.stall_fraction(100) - 0.5).abs() < 1e-12);
        assert_eq!(l.stall_fraction(0), 0.0);
        assert_eq!(l.stats().stalls, 2);
    }

    #[test]
    fn stop_is_idempotent_within_an_interval() {
        let mut l = lane();
        l.stop(10);
        l.stop(15); // re-delivered STOP must not open a second interval
        assert_eq!(l.stats().stalls, 1);
        l.go(20);
        assert_eq!(l.stall_time(20), 10);
    }

    #[test]
    fn try_send_counts_data_and_idle_separately() {
        let mut l = lane();
        let t = TxPort::new(&mut l)
            .try_send(5, TxPayload::Data, true)
            .expect("lane free");
        assert_eq!(t.deliver_at, 6);
        TxPort::new(&mut l)
            .try_send(6, TxPayload::Idle, true)
            .expect("lane free");
        let s = l.stats();
        assert_eq!((s.bytes_carried, s.idles_carried, s.in_flight), (1, 1, 2));
        // Pacing: a second byte in the same byte-time is refused.
        assert!(TxPort::new(&mut l)
            .try_send(6, TxPayload::Data, true)
            .is_none());
        assert_eq!(TxPort::new(&mut l).ready_at(), 7);
    }

    #[test]
    fn stopped_lane_refuses_sends_but_not_siblings() {
        let mut a = lane();
        let mut b = Lane::new(ChanId(2), ep(0), ep(1), 1, ChanId(3), LinkId(0), 1);
        a.stop(10);
        assert!(TxPort::new(&mut a)
            .try_send(10, TxPayload::Data, true)
            .is_none());
        // Per-lane STOP isolation: the sibling lane is unaffected.
        assert!(TxPort::new(&mut b)
            .try_send(10, TxPayload::Data, true)
            .is_some());
        a.go(12);
        assert!(TxPort::new(&mut a)
            .try_send(12, TxPayload::Data, true)
            .is_some());
    }

    #[test]
    fn span_send_and_deliver_roundtrip() {
        let mut l = Lane::new(ChanId(0), ep(0), ep(1), 3, ChanId(1), LinkId(0), 0);
        let worm = WormId(7);
        let t = TxPort::new(&mut l)
            .try_send(10, TxPayload::Span { worm, len: 5 }, true)
            .expect("lane free");
        assert_eq!(t.deliver_at, 13);
        assert_eq!(l.in_flight(), 5);
        assert_eq!(TxPort::new(&mut l).ready_at(), 15);
        let (dst, span) = RxPort::new(&mut l).deliver_span();
        assert_eq!(dst.port, PortId(1));
        assert_eq!((span.worm, span.start, span.len), (worm, 10, 5));
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn truncation_revokes_unsent_span_bytes() {
        let mut l = Lane::new(ChanId(0), ep(0), ep(1), 2, ChanId(1), LinkId(0), 0);
        let worm = WormId(3);
        TxPort::new(&mut l)
            .try_send(10, TxPayload::Span { worm, len: 8 }, true)
            .expect("lane free");
        // STOP lands at t=13: bytes at slots 10..13 (3 of them) are out.
        let (w, revoked) = l.truncate_newest_span(13).expect("still sending");
        assert_eq!((w, revoked), (worm, 5));
        assert_eq!(l.in_flight(), 3);
        assert_eq!(l.stats().bytes_carried, 3);
        // The old span chain's kick is cancelled.
        assert!(!l.kick_is_current(0));
        // Nothing left to truncate.
        assert!(l.truncate_newest_span(14).is_none());
    }

    #[test]
    fn link_lane_ids_are_contiguous() {
        let link = Link::new(
            LinkId(2),
            (NodeRef::Switch(SwitchId(0)), PortId(3)),
            (NodeRef::Switch(SwitchId(1)), PortId(0)),
            4,
            ChanId(10),
            3,
        );
        let ids: Vec<u32> = link.lane_ids().map(|c| c.0).collect();
        assert_eq!(ids, vec![10, 11, 12]);
        assert_eq!(link.lane_id(2), ChanId(12));
        assert_eq!(link.num_lanes(), 3);
    }

    #[test]
    fn round_robin_arbiter_cycles_lanes() {
        let mut arb = SeededRoundRobin::new(0);
        let all = [
            LaneCandidate { lane: 0, in_flight: 0 },
            LaneCandidate { lane: 1, in_flight: 0 },
            LaneCandidate { lane: 2, in_flight: 0 },
        ];
        let picks: Vec<u8> = (0..6).map(|_| all[arb.pick(&all, 3)].lane).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Busy lanes are simply absent: the cursor skips over them.
        let partial = [LaneCandidate { lane: 2, in_flight: 0 }];
        assert_eq!(arb.pick(&partial, 3), 0);
        assert_eq!(all[arb.pick(&all, 3)].lane, 0);
    }

    #[test]
    fn least_occupied_arbiter_prefers_emptier_lane() {
        let mut arb = LeastOccupied;
        let cands = [
            LaneCandidate { lane: 0, in_flight: 9 },
            LaneCandidate { lane: 1, in_flight: 2 },
            LaneCandidate { lane: 2, in_flight: 2 },
        ];
        // Lane 1 wins: fewest in flight, ties broken by lowest lane.
        assert_eq!(arb.pick(&cands, 3), 1);
        let single = [LaneCandidate { lane: 2, in_flight: 100 }];
        assert_eq!(arb.pick(&single, 3), 0);
    }
}
