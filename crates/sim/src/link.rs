//! Links between nodes.
//!
//! A physical Myrinet link is full duplex: data bytes flow one way while
//! control symbols (`STOP`, `GO`, ...) are interleaved on the opposite
//! direction. The simulator models each direction as a [`Channel`] carrying
//! data, with control symbols of the *reverse* direction delivered to the
//! channel's transmit side (they never queue behind data — on the real wire
//! control symbols preempt data bytes).
//!
//! A channel moves at most one byte per byte-time and delivers it
//! `delay` byte-times later. Propagation delay is expressed in byte-times
//! (the paper's shufflenet experiment uses 1000 byte-time links).

use crate::engine::{HostId, SwitchId};
use crate::time::SimTime;
use crate::worm::WormId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Index of a directed channel in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChanId(pub u32);

/// A node reference: either a crossbar switch or a host adapter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum NodeRef {
    Switch(SwitchId),
    Host(HostId),
}

/// One end of a channel: a port on a node. Host adapters have a single
/// network port (port 0).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Endpoint {
    pub node: NodeRef,
    pub port: u8,
}

/// A batched run of contiguous data bytes of one worm in flight on a
/// channel (span-batched mode). Byte `j` of the span conceptually occupies
/// the wire slot at `start + j`; the whole run is delivered by a single
/// `RxSpan` event at `start + delay`.
#[derive(Clone, Copy, Debug)]
pub struct SpanInFlight {
    pub worm: WormId,
    /// Time the first byte of the span was put on the wire.
    pub start: SimTime,
    /// Number of data bytes in the span. A STOP truncation may cut this
    /// back (possibly to the bytes already past the transmitter); the entry
    /// stays queued so it pairs up with its already-scheduled `RxSpan`.
    pub len: u64,
}

/// Transmit-side state of a directed channel.
#[derive(Clone, Debug)]
pub struct Channel {
    pub id: ChanId,
    pub src: Endpoint,
    pub dst: Endpoint,
    /// Propagation delay in byte-times (≥ 1).
    pub delay: SimTime,
    /// The paired channel in the opposite direction.
    pub rev: ChanId,
    /// True while a `STOP` from downstream is in force.
    pub stopped: bool,
    /// True while a `TxKick` event is pending for this channel — guards
    /// against duplicate kicks.
    pub tx_active: bool,
    /// Earliest time the next byte may be put on the wire.
    pub next_tx_time: SimTime,
    /// Bytes currently in flight on the wire (sent, not yet received).
    pub in_flight: u32,
    /// Total data bytes carried (for utilization statistics).
    pub bytes_carried: u64,
    /// Total IDLE fill bytes carried (wasted bandwidth, Section 3).
    pub idles_carried: u64,
    /// When the current STOP interval began, if one is in force.
    pub stalled_since: Option<SimTime>,
    /// Accumulated byte-times spent under STOP (closed intervals only; an
    /// open interval is accounted by [`Channel::stall_time`]).
    pub stall_total: SimTime,
    /// Number of STOP intervals that began on this channel.
    pub stalls: u64,
    /// Batched byte runs currently on the wire, in send order
    /// (span-batched mode only; empty in per-byte mode).
    pub spans: VecDeque<SpanInFlight>,
    /// Kick generation: bumped when a STOP truncates an in-flight span so
    /// the span chain's already-scheduled end-of-span `TxKick` is ignored.
    pub kick_gen: u32,
}

impl Channel {
    pub fn new(id: ChanId, src: Endpoint, dst: Endpoint, delay: SimTime, rev: ChanId) -> Self {
        assert!(delay >= 1, "channel delay must be at least one byte-time");
        Channel {
            id,
            src,
            dst,
            delay,
            rev,
            stopped: false,
            tx_active: false,
            next_tx_time: 0,
            in_flight: 0,
            bytes_carried: 0,
            idles_carried: 0,
            stalled_since: None,
            stall_total: 0,
            stalls: 0,
            // Pre-size the in-flight span ring: `SpanInFlight` is `Copy`,
            // so with capacity in hand the steady-state span path performs
            // no allocator calls (a link rarely carries more than a couple
            // of outstanding spans at once).
            spans: VecDeque::with_capacity(8),
            kick_gen: 0,
        }
    }

    /// Total byte-times this channel has spent under STOP, up to `now`
    /// (includes the still-open interval, if any).
    pub fn stall_time(&self, now: SimTime) -> SimTime {
        self.stall_total
            + self
                .stalled_since
                .map_or(0, |since| now.saturating_sub(since))
    }

    /// Fraction of the elapsed run this channel spent stalled by STOP
    /// backpressure.
    pub fn stall_fraction(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stall_time(elapsed) as f64 / elapsed as f64
        }
    }

    /// Link utilization over `elapsed` byte-times (data bytes only).
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_carried as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_idle_link_is_zero() {
        let ep = Endpoint {
            node: NodeRef::Switch(SwitchId(0)),
            port: 0,
        };
        let ch = Channel::new(ChanId(0), ep, ep, 1, ChanId(1));
        assert_eq!(ch.utilization(1000), 0.0);
        assert_eq!(ch.utilization(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one byte-time")]
    fn zero_delay_rejected() {
        let ep = Endpoint {
            node: NodeRef::Host(HostId(0)),
            port: 0,
        };
        let _ = Channel::new(ChanId(0), ep, ep, 0, ChanId(1));
    }

    #[test]
    fn stall_accounting_covers_open_intervals() {
        let ep = Endpoint {
            node: NodeRef::Switch(SwitchId(0)),
            port: 0,
        };
        let mut ch = Channel::new(ChanId(0), ep, ep, 1, ChanId(1));
        assert_eq!(ch.stall_time(100), 0);
        ch.stall_total = 30;
        assert_eq!(ch.stall_time(100), 30);
        ch.stalled_since = Some(80);
        assert_eq!(ch.stall_time(100), 50);
        assert!((ch.stall_fraction(100) - 0.5).abs() < 1e-12);
        assert_eq!(ch.stall_fraction(0), 0.0);
    }

    #[test]
    fn utilization_counts_data_bytes() {
        let ep = Endpoint {
            node: NodeRef::Switch(SwitchId(0)),
            port: 0,
        };
        let mut ch = Channel::new(ChanId(0), ep, ep, 5, ChanId(1));
        ch.bytes_carried = 250;
        assert!((ch.utilization(1000) - 0.25).abs() < 1e-12);
    }
}
