//! The network: fabric construction, the event loop, and protocol dispatch.

use crate::adapter::{Adapter, TxWorm};
use crate::config::ConfigError;
use crate::deadlock::DeadlockReport;
use crate::engine::{CtrlSym, Event, HostId, Scheduler, SwitchId};
use crate::link::{
    ChanId, Endpoint, ForeignRun, Lane, LaneArbiterKind, Link, LinkId, NodeRef, PortId, RxPort,
    SpanInFlight, TxPayload, TxPort,
};
use crate::protocol::{
    Admission, AdapterProtocol, AppMessage, Command, Destination, ProtocolCtx, SendSpec,
    TrafficSource,
};
use crate::slab;
use crate::switch::{SlackCfg, Switch};
use crate::switchcast::SwitchcastMode;
use crate::time::SimTime;
use crate::trace::{BlockCause, Trace, TraceConfig, TraceEvent};
use crate::worm::{ByteKind, MessageId, WormId, WormInstance, WormMeta};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Where a host attaches to the fabric.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HostAttach {
    pub switch: u32,
    pub port: u8,
}

/// A switch-to-switch link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    pub a: (u32, PortId),
    pub b: (u32, PortId),
    pub delay: SimTime,
    /// Lanes per direction; 0 means "use [`NetworkConfig::lanes`]".
    pub lanes: u8,
}

/// A complete fabric description, produced by `wormcast-topo`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Ports per switch.
    pub switch_ports: Vec<u8>,
    /// Host `i` attaches at `hosts[i]`.
    pub hosts: Vec<HostAttach>,
    pub links: Vec<LinkSpec>,
    /// Propagation delay of host↔switch links.
    pub host_link_delay: SimTime,
}

/// Unicast source routes for every ordered host pair.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RouteTable {
    table: Vec<Vec<Vec<u8>>>,
}

impl RouteTable {
    pub fn new(num_hosts: usize) -> Self {
        RouteTable {
            table: vec![vec![Vec::new(); num_hosts]; num_hosts],
        }
    }

    pub fn num_hosts(&self) -> usize {
        self.table.len()
    }

    pub fn set(&mut self, src: HostId, dst: HostId, ports: Vec<u8>) {
        self.table[src.0 as usize][dst.0 as usize] = ports;
    }

    /// The output-port sequence from `src`'s switch to `dst`'s host port.
    pub fn get(&self, src: HostId, dst: HostId) -> &[u8] {
        &self.table[src.0 as usize][dst.0 as usize]
    }

    /// Hop count (number of switches traversed) between two hosts.
    pub fn hops(&self, src: HostId, dst: HostId) -> usize {
        self.get(src, dst).len()
    }
}

/// Link-transmission engine mode.
///
/// `SpanBatched` is an *engine optimisation*, never a semantic mode: a run
/// under either setting produces bit-identical delivery timestamps, message
/// logs and network statistics (everything except the event counters, which
/// measure engine cost). The differential tests in `tests/span_equivalence.rs`
/// and `crates/bench/tests/` enforce this.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SimMode {
    /// One scheduler event per byte per hop — the reference semantics,
    /// O(bytes·hops) events.
    PerByte,
    /// Contiguous runs of ready data bytes move as a single `RxSpan` event
    /// whenever that is provably indistinguishable from per-byte
    /// transmission, approaching O(worms·hops) events. Falls back to
    /// per-byte at headers, tails, watermark proximity, cut-through pacing,
    /// replication branch points, and on STOP truncation.
    SpanBatched,
}

/// Minimum run length worth batching: a 1-byte span costs the same two
/// events (arrival + next kick) as the per-byte path, so fall through.
const MIN_SPAN: u64 = 2;

/// Tunables of the simulated fabric.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Slack buffer configuration; `None` derives a safe one per link delay.
    pub slack: Option<SlackCfg>,
    /// Logical worm header length in bytes (on-wire, after the route).
    pub header_len: u32,
    /// Master seed for all per-host RNG streams.
    pub seed: u64,
    /// Probability that an injected worm is corrupted on the wire and fails
    /// its checksum at the destination (fault injection; 0.0 in the paper's
    /// experiments — wormhole LAN links are assumed reliable).
    pub corrupt_prob: f64,
    /// Liveness watchdog period; 0 disables it. When two consecutive ticks
    /// see no byte movement while worms are outstanding, the run is declared
    /// deadlocked.
    pub watchdog_interval: SimTime,
    /// Trace sink selection: [`TraceConfig::Off`] (the default, free),
    /// an unbounded in-memory log, or a bounded ring.
    pub trace: TraceConfig,
    /// Switch-level multicast mode (Section 3 of the paper). `Off` for all
    /// host-adapter experiments.
    pub switchcast: SwitchcastMode,
    /// Link-transmission engine mode. `SpanBatched` (the default) is
    /// equivalence-tested against `PerByte` and only changes engine cost.
    pub mode: SimMode,
    /// Lanes per switch-to-switch link (virtual-channel width). Host links
    /// always have one lane (a host adapter injects at one byte per
    /// byte-time regardless). A [`LinkSpec`] with a nonzero `lanes` field
    /// overrides this per link. `1` reproduces the paper's single-lane
    /// fabric byte-for-byte.
    pub lanes: u8,
    /// Which [`crate::link::LaneArbiter`] policy binds granted worms to
    /// free lanes (irrelevant with one lane per link).
    pub arbiter: LaneArbiterKind,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            slack: None,
            header_len: 8,
            seed: 0xC0FFEE,
            corrupt_prob: 0.0,
            watchdog_interval: 0,
            trace: TraceConfig::Off,
            switchcast: SwitchcastMode::Off,
            mode: SimMode::SpanBatched,
            lanes: 1,
            arbiter: LaneArbiterKind::RoundRobin,
        }
    }
}

/// Run-wide counters. Most worms terminate at exactly one host; a
/// switch-level multicast worm terminates at `sinks` hosts, so the
/// conservation invariant checked by [`Network::audit`] is at **sink**
/// granularity:
/// `sinks_injected == worms_delivered + worms_refused + worms_corrupt + worms_flushed + active_worms`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetStats {
    pub worms_injected: u64,
    /// Total terminal hosts across injected worms (= `worms_injected`
    /// unless switch-level multicast is in use).
    pub sinks_injected: u64,
    pub worms_delivered: u64,
    pub worms_refused: u64,
    pub worms_corrupt: u64,
    pub worms_flushed: u64,
    /// Worm sinks created but not yet fully received or dropped.
    pub active_worms: i64,
    /// Total bytes that completed a channel hop (progress marker).
    pub bytes_moved: u64,
    pub messages_generated: u64,
    /// Scheduler events pushed over the run — an engine cost metric, the
    /// one pair of fields that legitimately differs between [`SimMode`]s
    /// (mask both when comparing modes).
    pub events_scheduled: u64,
    /// Scheduler events dispatched over the run (see `events_scheduled`).
    pub events_fired: u64,
}

/// A recorded message creation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MessageRecord {
    pub msg: MessageId,
    pub origin: HostId,
    pub dest: Destination,
    pub payload_len: u32,
    pub created: SimTime,
}

/// A recorded local delivery.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Delivery {
    pub msg: MessageId,
    pub host: HostId,
    pub at: SimTime,
}

/// The journal experiments read after a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MessageLog {
    pub created: Vec<MessageRecord>,
    pub deliveries: Vec<Delivery>,
}

/// How a call to [`Network::run_until`] ended. This is the one result
/// shape shared by the simulator and the bench runner (which wraps it in
/// its `RunReport` together with derived latency figures).
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub end_time: SimTime,
    /// The event queue drained before the deadline (finite workload done).
    pub drained: bool,
    pub deadlock: Option<DeadlockReport>,
    /// Snapshot of the network counters when the run ended.
    pub stats: NetStats,
}

/// The simulated network.
pub struct Network {
    pub cfg: NetworkConfig,
    pub scheduler: Scheduler,
    pub switches: Vec<Switch>,
    pub adapters: Vec<Adapter>,
    /// Dense lane slab, indexed by [`ChanId`]. Crate-private: external
    /// reads go through [`Network::lanes`] / [`Network::lane`], engine
    /// mutation through the typed lane-port surface in [`crate::link`].
    pub(crate) lanes: Vec<Lane>,
    /// Directed-link metadata; each entry's lanes are a contiguous
    /// [`ChanId`] range in `lanes`.
    pub(crate) links: Vec<Link>,
    pub worms: Vec<WormInstance>,
    pub stats: NetStats,
    pub msgs: MessageLog,
    pub trace: Trace,
    pub(crate) routes: RouteTable,
    /// Per-worm status bits ([`slab::FLAG_CORRUPT`], [`slab::FLAG_FLUSHED`])
    /// in a dense slab — the delivery path never hashes a [`WormId`].
    pub(crate) worm_flags: slab::PerWorm<u8>,
    /// Number of worms carrying [`slab::FLAG_FLUSHED`]; lets the per-byte
    /// hot path skip the flush check entirely when no flush ever happened.
    pub(crate) flushed_count: u32,
    /// Outstanding sink count for multi-sink (switch-multicast) worms.
    /// 0 means "not yet decremented" (lazily initialised from `sinks`).
    pub(crate) sink_remaining: slab::PerWorm<u32>,
    /// Recycled encoded-route buffers (see [`slab::RoutePool`]).
    pub(crate) route_pool: slab::RoutePool,
    /// Down-tree + host ports per switch, for the broadcast address
    /// (configured via [`Network::set_broadcast_ports`]).
    pub(crate) broadcast_ports: Vec<Vec<u8>>,
    protocols: Vec<Option<Box<dyn AdapterProtocol>>>,
    sources: Vec<Option<Box<dyn TrafficSource>>>,
    rngs: Vec<SmallRng>,
    fault_rng: SmallRng,
    /// Per-host message sequence counters. [`MessageId`]s pack
    /// `(host << 40) | seq` so id assignment depends only on the host's own
    /// injection history — a sharded run (which never sees other shards'
    /// injections) allocates exactly the ids the sequential engine does.
    next_msg_seq: Vec<u64>,
    /// Canonical per-worm names, `(injecting host << 40) | seq` like
    /// [`MessageId`]s (`u64::MAX` = unnamed). Dense [`WormId`]s are
    /// per-engine — each shard of a sharded run allocates its own — so the
    /// trace and the cross-shard boundary protocol name worms by this tag
    /// instead; assignment depends only on the injecting host's own
    /// history, making the names identical however the run is partitioned.
    worm_names: slab::PerWorm<u64>,
    /// Per-host worm sequence counters backing `worm_names`.
    next_worm_seq: Vec<u64>,
    cmd_scratch: Vec<Command>,
    /// STOP/GO arrivals whose worm attribution is deferred to the end of
    /// the current scheduler tick (`bool` is "STOP"). Crossbar/adapter
    /// state is only guaranteed identical across [`SimMode`]s at whole
    /// byte-time boundaries — resolving [`Self::channel_carried_worm`]
    /// mid-tick would make the trace depend on intra-tick event order,
    /// which the span engine deliberately changes.
    pending_ctrl_trace: Vec<(SimTime, ChanId, bool)>,
    watchdog_last_bytes: u64,
    deadlock_seen: Option<DeadlockReport>,
    /// Deadline of the current `run_until` call. Span deliveries credit
    /// `bytes_moved` only for bytes whose per-byte arrival slot falls
    /// *strictly* before it — the deadline `Stop` sorts first in its tick
    /// ([`Event::canon_key`]), so a per-byte twin landing exactly on the
    /// deadline fires (and counts) in the next run. Keeps the counter
    /// bit-identical across [`SimMode`]s even when a run ends with span
    /// tails conceptually still arriving.
    run_deadline: SimTime,
    /// Span-tail bytes whose per-byte arrival slots lie at or beyond the
    /// current deadline: `(first_slot, remaining)`, credited by whichever
    /// later run covers their slots.
    deferred_moves: Vec<(SimTime, u64)>,
    /// Present when this network instance executes one shard of a
    /// [`crate::shard::ShardedNetwork`]: channel-endpoint ownership,
    /// outbound mailboxes and the worm tag registry. `None` (the
    /// sequential engine) keeps every cross-shard check a single branch.
    pub(crate) shard: Option<Box<crate::shard::ShardCtx>>,
    /// Number of injects currently scheduled (sharding exposes this so the
    /// merged quiescence check can sum it across shards).
    pub(crate) pending_injects: i64,
    /// Number of protocol timers currently scheduled (see
    /// `pending_injects`).
    pub(crate) pending_timers: i64,
}

impl Network {
    /// Build a network from a fabric description and unicast route table,
    /// panicking on an invalid fabric. Prefer [`Network::try_build`] (or
    /// the bench runner's validating `SimSetup` builder) to get a typed
    /// [`ConfigError`] instead.
    pub fn build(spec: &FabricSpec, routes: RouteTable, cfg: NetworkConfig) -> Self {
        Self::try_build(spec, routes, cfg).unwrap_or_else(|e| panic!("invalid fabric: {e}"))
    }

    /// Build a network, surfacing fabric/configuration violations (zero
    /// link delays, lane/switchcast conflicts, slot overflow) as a typed
    /// [`ConfigError`].
    pub fn try_build(
        spec: &FabricSpec,
        routes: RouteTable,
        cfg: NetworkConfig,
    ) -> Result<Self, ConfigError> {
        assert_eq!(
            routes.num_hosts(),
            spec.hosts.len(),
            "route table size must match host count"
        );
        for (i, l) in spec.links.iter().enumerate() {
            if l.delay == 0 {
                return Err(ConfigError::ZeroDelay {
                    field: "links",
                    index: i,
                });
            }
        }
        if spec.host_link_delay == 0 && !spec.hosts.is_empty() {
            return Err(ConfigError::ZeroDelay {
                field: "host_link_delay",
                index: 0,
            });
        }
        if cfg.lanes == 0 {
            return Err(ConfigError::OutOfRange {
                field: "lanes",
                value: 0.0,
                min: 1.0,
                max: u8::MAX as f64,
            });
        }
        // Effective lane count per spec link (0 defers to the config).
        let link_lanes: Vec<u8> = spec
            .links
            .iter()
            .map(|l| if l.lanes == 0 { cfg.lanes } else { l.lanes })
            .collect();
        if link_lanes.iter().any(|&n| n > 1) && cfg.switchcast != SwitchcastMode::Off {
            return Err(ConfigError::Invalid {
                field: "lanes",
                reason: "switch-level multicast requires single-lane links".into(),
            });
        }

        // Per-switch, per-physical-port lane counts (unlinked and
        // host-facing ports keep one slot so slot indices stay aligned).
        let mut port_lanes: Vec<Vec<u8>> = spec
            .switch_ports
            .iter()
            .map(|&p| vec![1u8; p as usize])
            .collect();
        for (l, &n) in spec.links.iter().zip(&link_lanes) {
            port_lanes[l.a.0 as usize][l.a.1.index()] = n;
            port_lanes[l.b.0 as usize][l.b.1.index()] = n;
        }
        for (i, pl) in port_lanes.iter().enumerate() {
            let slots: u32 = pl.iter().map(|&n| n as u32).sum();
            if slots > u8::MAX as u32 {
                return Err(ConfigError::Invalid {
                    field: "lanes",
                    reason: format!("switch {i} needs {slots} port slots (max 255)"),
                });
            }
        }

        let mut switches: Vec<Switch> = port_lanes
            .iter()
            .enumerate()
            .map(|(i, pl)| {
                Switch::new(
                    SwitchId(i as u32),
                    pl,
                    cfg.slack.unwrap_or_else(|| SlackCfg::for_delay(1)),
                    |port| {
                        cfg.arbiter
                            .instantiate(cfg.seed, ((i as u64) << 8) | port as u64)
                    },
                )
            })
            .collect();
        let mut adapters: Vec<Adapter> = (0..spec.hosts.len())
            .map(|i| Adapter::new(HostId(i as u32)))
            .collect();
        let mut lanes: Vec<Lane> = Vec::new();
        let mut links: Vec<Link> = Vec::new();

        // One forward + one backward `Link` per spec entry; each direction's
        // lanes are contiguous, lane `i` pairing with reverse lane `i`. With
        // one lane the ids are exactly the historical (fwd, back) pairs.
        for (l, &n) in spec.links.iter().zip(&link_lanes) {
            let base = lanes.len() as u32;
            let na = NodeRef::Switch(SwitchId(l.a.0));
            let nb = NodeRef::Switch(SwitchId(l.b.0));
            let fwd = LinkId(links.len() as u32);
            let bwd = LinkId(links.len() as u32 + 1);
            for i in 0..n {
                let slot_a = switches[l.a.0 as usize].slot_of(l.a.1.0, i);
                let slot_b = switches[l.b.0 as usize].slot_of(l.b.1.0, i);
                let ea = Endpoint { node: na, port: PortId(slot_a) };
                let eb = Endpoint { node: nb, port: PortId(slot_b) };
                let ab = ChanId(base + i as u32);
                let ba = ChanId(base + n as u32 + i as u32);
                lanes.push(Lane::new(ab, ea, eb, l.delay, ba, fwd, i));
                switches[l.a.0 as usize].outputs[slot_a as usize].chan_out = Some(ab);
                switches[l.b.0 as usize].inputs[slot_b as usize].chan_in = Some(ab);
            }
            for i in 0..n {
                let slot_a = switches[l.a.0 as usize].slot_of(l.a.1.0, i);
                let slot_b = switches[l.b.0 as usize].slot_of(l.b.1.0, i);
                let ea = Endpoint { node: na, port: PortId(slot_a) };
                let eb = Endpoint { node: nb, port: PortId(slot_b) };
                let ab = ChanId(base + i as u32);
                let ba = ChanId(base + n as u32 + i as u32);
                lanes.push(Lane::new(ba, eb, ea, l.delay, ab, bwd, i));
                switches[l.b.0 as usize].outputs[slot_b as usize].chan_out = Some(ba);
                switches[l.a.0 as usize].inputs[slot_a as usize].chan_in = Some(ba);
            }
            links.push(Link::new(fwd, (na, l.a.1), (nb, l.b.1), l.delay, ChanId(base), n));
            links.push(Link::new(
                bwd,
                (nb, l.b.1),
                (na, l.a.1),
                l.delay,
                ChanId(base + n as u32),
                n,
            ));
        }
        // Host links always have a single lane: the adapter's injection
        // rate is one byte per byte-time regardless.
        for (h, att) in spec.hosts.iter().enumerate() {
            let nh = NodeRef::Host(HostId(h as u32));
            let ns = NodeRef::Switch(SwitchId(att.switch));
            let slot = switches[att.switch as usize].slot_of(att.port, 0);
            let eh = Endpoint { node: nh, port: PortId(0) };
            let es = Endpoint { node: ns, port: PortId(slot) };
            let hs = ChanId(lanes.len() as u32);
            let sh = ChanId(lanes.len() as u32 + 1);
            let up = LinkId(links.len() as u32);
            let down = LinkId(links.len() as u32 + 1);
            lanes.push(Lane::new(hs, eh, es, spec.host_link_delay, sh, up, 0));
            lanes.push(Lane::new(sh, es, eh, spec.host_link_delay, hs, down, 0));
            links.push(Link::new(
                up,
                (nh, PortId(0)),
                (ns, PortId(att.port)),
                spec.host_link_delay,
                hs,
                1,
            ));
            links.push(Link::new(
                down,
                (ns, PortId(att.port)),
                (nh, PortId(0)),
                spec.host_link_delay,
                sh,
                1,
            ));
            adapters[h].chan_out = Some(hs);
            switches[att.switch as usize].inputs[slot as usize].chan_in = Some(hs);
            switches[att.switch as usize].outputs[slot as usize].chan_out = Some(sh);
            adapters[h].chan_in = Some(sh);
        }

        // Size each input slack buffer for its actual upstream link delay
        // (unless the configuration pinned one).
        if cfg.slack.is_none() {
            for sw in &mut switches {
                for inp in &mut sw.inputs {
                    if let Some(ch) = inp.chan_in {
                        inp.slack = SlackCfg::for_delay(lanes[ch.0 as usize].delay());
                        inp.buf.reserve(inp.slack.capacity as usize);
                    }
                }
            }
        }
        for sw in &switches {
            for inp in &sw.inputs {
                inp.slack.validate().map_err(|reason| ConfigError::Invalid {
                    field: "slack",
                    reason,
                })?;
            }
        }

        let num_hosts = spec.hosts.len();
        let mut seed_rng = SmallRng::seed_from_u64(cfg.seed);
        let rngs = (0..num_hosts)
            .map(|_| SmallRng::seed_from_u64(seed_rng.gen()))
            .collect();
        let fault_rng = SmallRng::seed_from_u64(seed_rng.gen());

        Ok(Network {
            trace: Trace::new(cfg.trace),
            cfg,
            scheduler: Scheduler::new(),
            switches,
            adapters,
            lanes,
            links,
            worms: Vec::new(),
            stats: NetStats::default(),
            msgs: MessageLog::default(),
            routes,
            worm_flags: slab::PerWorm::new(0),
            flushed_count: 0,
            sink_remaining: slab::PerWorm::new(0),
            route_pool: slab::RoutePool::new(),
            broadcast_ports: Vec::new(),
            protocols: (0..num_hosts).map(|_| None).collect(),
            sources: (0..num_hosts).map(|_| None).collect(),
            rngs,
            fault_rng,
            next_msg_seq: vec![0; num_hosts],
            worm_names: slab::PerWorm::new(u64::MAX),
            next_worm_seq: vec![0; num_hosts],
            cmd_scratch: Vec::new(),
            pending_ctrl_trace: Vec::new(),
            watchdog_last_bytes: 0,
            deadlock_seen: None,
            run_deadline: 0,
            deferred_moves: Vec::new(),
            shard: None,
            pending_injects: 0,
            pending_timers: 0,
        })
    }

    pub fn num_hosts(&self) -> usize {
        self.adapters.len()
    }

    /// Every directed lane in the fabric, indexed by [`ChanId`].
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// The lane carrying channel `ch`.
    pub fn lane(&self, ch: ChanId) -> &Lane {
        &self.lanes[ch.0 as usize]
    }

    /// Mutable access to a lane — flow control (`stop`/`go`) only; data
    /// transfer goes through [`TxPort`]/[`RxPort`].
    pub fn lane_mut(&mut self, ch: ChanId) -> &mut Lane {
        &mut self.lanes[ch.0 as usize]
    }

    /// Every directed link (lane bundle) in the fabric, indexed by
    /// [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The contiguous slice of lanes belonging to one directed link.
    pub fn link_lanes(&self, link: LinkId) -> &[Lane] {
        let l = &self.links[link.0 as usize];
        let base = l.lane_id(0).0 as usize;
        &self.lanes[base..base + l.num_lanes() as usize]
    }

    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// Configure, per switch, the output ports a broadcast worm replicates
    /// to: the down links of the up/down tree plus every host port.
    /// Required before injecting `Broadcast` routes.
    pub fn set_broadcast_ports(&mut self, ports: Vec<Vec<u8>>) {
        assert_eq!(ports.len(), self.switches.len());
        self.broadcast_ports = ports;
    }

    /// A sink (terminal host) of `worm` resolved (delivered, refused or
    /// corrupt). Returns true when this was the worm's last sink — the
    /// moment the worm stops being "active".
    pub(crate) fn resolve_sink(&mut self, worm: WormId) -> bool {
        let sinks = self.worms[worm.0 as usize].sinks;
        if sinks <= 1 {
            return true;
        }
        let left = self.sink_remaining.get_mut(worm);
        if *left == 0 {
            *left = sinks;
        }
        *left -= 1;
        *left == 0
    }

    /// Install the protocol instance for a host.
    pub fn set_protocol(&mut self, host: HostId, p: Box<dyn AdapterProtocol>) {
        self.protocols[host.0 as usize] = Some(p);
    }

    /// Post a timer to a host's protocol from outside the simulation — the
    /// "device driver" path: a control process prodding its adapter. The
    /// protocol receives `on_timer(token)` after `delay`.
    pub fn post_timer(&mut self, host: HostId, delay: SimTime, token: u64) {
        self.pending_timers += 1;
        self.scheduler.after(delay, Event::HostTimer { host, token });
    }

    /// Install a traffic source for a host and schedule its first injection.
    ///
    /// A host has exactly one source; installing a second replaces the
    /// first (its already-scheduled injections will then draw from the new
    /// source). Use one `Script` with the full schedule instead of several
    /// `OneShot`s.
    pub fn set_source(&mut self, host: HostId, s: Box<dyn TrafficSource>, first_at: SimTime) {
        debug_assert!(
            self.sources[host.0 as usize].is_none(),
            "replacing an existing traffic source for {host:?}; use one Script"
        );
        self.sources[host.0 as usize] = Some(s);
        self.pending_injects += 1;
        self.scheduler.at(first_at, Event::Inject { host });
    }

    /// True when nothing can happen any more without outside input: no worm
    /// is outstanding, no injection is scheduled, and no protocol timer is
    /// pending.
    pub fn is_quiescent(&self) -> bool {
        self.stats.active_worms == 0 && self.pending_injects == 0 && self.pending_timers == 0
    }

    // -- event loop ---------------------------------------------------------

    /// Run until `t_end` (or until the event queue drains, or a deadlock is
    /// detected by the watchdog / drain check).
    pub fn run_until(&mut self, t_end: SimTime) -> RunOutcome {
        self.begin_run(t_end);
        loop {
            let Some((t, ev)) = self.scheduler.pop() else {
                return self.finish_drained();
            };
            if let Some(outcome) = self.dispatch(t, ev) {
                return outcome;
            }
        }
    }

    /// Run prologue shared by the sequential loop and the shard workers:
    /// credit deferred span tails, arm the deadline Stop, arm the watchdog.
    pub(crate) fn begin_run(&mut self, t_end: SimTime) {
        self.run_deadline = t_end;
        // Credit span-tail bytes a previous run left beyond its deadline:
        // slots strictly before `t_end` (the slot at exactly `t_end` waits
        // for a later run, like its per-byte twin behind the Stop event).
        let mut moved = 0;
        self.deferred_moves.retain_mut(|(start, rem)| {
            let due = if *start > t_end {
                0
            } else {
                (t_end - *start).min(*rem)
            };
            moved += due;
            *start += due;
            *rem -= due;
            *rem > 0
        });
        self.stats.bytes_moved += moved;
        self.scheduler.at(t_end, Event::Stop);
        // A shard engine skips the watchdog: its local view cannot tell a
        // cross-shard stall from deadlock, so liveness analysis runs once
        // on the merged state after the shards join.
        if self.cfg.watchdog_interval > 0 && self.shard.is_none() {
            self.scheduler
                .after(self.cfg.watchdog_interval, Event::Watchdog);
            self.watchdog_last_bytes = self.stats.bytes_moved;
        }
    }

    /// Run epilogue for a drained event queue: with outstanding worms this
    /// is a deadlock (nothing can ever move again). A shard engine never
    /// reaches this — its deadline Stop keeps the wheel non-empty.
    pub(crate) fn finish_drained(&mut self) -> RunOutcome {
        self.flush_ctrl_trace();
        self.sync_event_stats();
        let deadlock = if self.stats.active_worms > 0 {
            Some(crate::deadlock::forensics(self))
        } else {
            None
        };
        RunOutcome {
            end_time: self.scheduler.now(),
            drained: true,
            deadlock,
            stats: self.stats.clone(),
        }
    }

    /// Execute one popped event. Returns `Some` when the run is over (the
    /// deadline Stop fired).
    pub(crate) fn dispatch(&mut self, t: SimTime, ev: Event) -> Option<RunOutcome> {
        if let Some(&(t0, _, _)) = self.pending_ctrl_trace.first() {
            if t > t0 {
                self.flush_ctrl_trace();
            }
        }
        match ev {
            Event::Stop => {
                if t >= self.run_deadline {
                    self.flush_ctrl_trace();
                    self.sync_event_stats();
                    // Worms still outstanding at the deadline: check for
                    // a genuine wait cycle so callers can tell overload
                    // apart from deadlock. A shard engine leaves this to
                    // the post-join merged analysis.
                    let deadlock = if self.shard.is_some() {
                        None
                    } else {
                        self.deadlock_seen.clone().or_else(|| {
                            if self.is_quiescent() {
                                None
                            } else {
                                crate::deadlock::analyze(self)
                            }
                        })
                    };
                    return Some(RunOutcome {
                        end_time: t,
                        drained: self.is_quiescent(),
                        deadlock,
                        stats: self.stats.clone(),
                    });
                }
            }
            Event::TxKick { ch, gen } => self.handle_tx_kick(ch, gen),
            Event::RxByte { ch, byte } => self.handle_rx_byte(ch, byte),
            Event::RxSpan { ch } => self.handle_rx_span(ch),
            Event::RxForeign { ch } => self.handle_rx_foreign(ch),
            Event::CtrlRx { ch, sym } => self.handle_ctrl(ch, sym),
            Event::Inject { host } => {
                self.pending_injects -= 1;
                self.handle_inject(host);
            }
            Event::HostTimer { host, token } => {
                self.pending_timers -= 1;
                self.notify_timer(host, token);
            }
            Event::Watchdog => {
                if self.stats.bytes_moved == self.watchdog_last_bytes
                    && self.stats.active_worms > 0
                    && self.deadlock_seen.is_none()
                {
                    self.deadlock_seen = Some(crate::deadlock::forensics(self));
                }
                self.watchdog_last_bytes = self.stats.bytes_moved;
                if !self.is_quiescent() {
                    self.scheduler
                        .after(self.cfg.watchdog_interval, Event::Watchdog);
                }
            }
        }
        None
    }

    /// The most recent deadlock report, if any watchdog tick found one.
    pub fn deadlock_seen(&self) -> Option<&DeadlockReport> {
        self.deadlock_seen.as_ref()
    }

    /// Mirror the scheduler's lifetime event counters into [`NetStats`].
    fn sync_event_stats(&mut self) {
        self.stats.events_scheduled = self.scheduler.events_scheduled();
        self.stats.events_fired = self.scheduler.events_fired();
    }

    // -- channel handling ----------------------------------------------------

    /// Ensure the transmit side of `ch` has a pending `TxKick`.
    pub(crate) fn kick_channel(&mut self, ch: ChanId) {
        let now = self.scheduler.now();
        if let Some((at, gen)) = self.lanes[ch.0 as usize].arm_kick(now) {
            self.scheduler.at(at, Event::TxKick { ch, gen });
        }
    }

    // -- shard boundary handling --------------------------------------------

    /// Install the sharding context (see [`crate::shard`]). Called once by
    /// `ShardedNetwork::new` before any event runs.
    pub(crate) fn install_shard_ctx(&mut self, ctx: crate::shard::ShardCtx) {
        debug_assert!(self.shard.is_none(), "shard context installed twice");
        self.shard = Some(Box::new(ctx));
    }

    /// True when the transmit-side endpoint of `ch` lives in another shard
    /// (its local channel copy is a dead mirror: `in_flight` stays 0).
    #[inline]
    pub(crate) fn chan_src_foreign(&self, ch: ChanId) -> bool {
        match &self.shard {
            None => false,
            Some(s) => s.chan_src_owner[ch.0 as usize] != s.me,
        }
    }

    /// True when the receive-side endpoint of `ch` lives in another shard.
    #[inline]
    pub(crate) fn chan_dst_foreign(&self, ch: ChanId) -> bool {
        match &self.shard {
            None => false,
            Some(s) => s.chan_dst_owner[ch.0 as usize] != s.me,
        }
    }

    /// Deliver a control symbol to the transmit side of `ch` after its
    /// propagation delay — locally, or across the shard boundary when the
    /// transmit side is foreign.
    pub(crate) fn send_ctrl(&mut self, ch: ChanId, sym: CtrlSym) {
        let delay = self.lanes[ch.0 as usize].delay();
        if self.chan_src_foreign(ch) {
            let now = self.scheduler.now();
            if sym == CtrlSym::Stop {
                // Remember where this STOP cuts the foreign transmitter's
                // send slots, so spans already in the mailbox can be
                // truncated on arrival exactly as the transmitter will
                // truncate its own copy (DESIGN.md §3.4).
                self.lanes[ch.0 as usize].note_foreign_stop(now);
            }
            let ts = now + delay;
            let s = self.shard.as_ref().expect("foreign src implies shard ctx");
            let to = s.chan_src_owner[ch.0 as usize] as usize;
            s.outboxes[to]
                .as_ref()
                .expect("cross-shard channel has a mailbox")
                .lock()
                .unwrap()
                .push_back(crate::shard::BoundaryMsg::Ctrl { ts, ch, sym });
        } else {
            self.scheduler.after(delay, Event::CtrlRx { ch, sym });
        }
    }

    /// Boundary-send bookkeeping shared by the per-byte and span paths:
    /// the destination shard of `ch`, the worm's canonical tag, and its
    /// snapshot iff this is the first contact between the two shards for
    /// this worm.
    fn boundary_tag_snap(
        &mut self,
        ch: ChanId,
        worm: WormId,
    ) -> (usize, u64, Option<Box<crate::shard::WormSnap>>) {
        let tag = self.worm_names.get(worm);
        debug_assert_ne!(tag, u64::MAX, "worm crossed a boundary without a name");
        let (to, need_snap) = {
            let s = self.shard.as_mut().expect("boundary send implies shard ctx");
            let to = s.chan_dst_owner[ch.0 as usize] as usize;
            let mask = s.snap_sent.get_mut(worm);
            let need = *mask & (1 << to) == 0;
            *mask |= 1 << to;
            (to, need)
        };
        let snap =
            need_snap.then(|| Box::new(crate::shard::WormSnap::of(&self.worms[worm.0 as usize])));
        (to, tag, snap)
    }

    /// Enqueue one boundary message in shard `to`'s mailbox.
    fn push_boundary(&self, to: usize, msg: crate::shard::BoundaryMsg) {
        let s = self.shard.as_ref().expect("boundary send implies shard ctx");
        s.outboxes[to]
            .as_ref()
            .expect("cross-shard channel has a mailbox")
            .lock()
            .unwrap()
            .push_back(msg);
    }

    /// Put `b` on cross-shard channel `ch`: enqueue the arrival in the
    /// receive-side owner's mailbox, attaching the worm snapshot the first
    /// time this shard sends that shard a byte of this worm.
    fn send_boundary_byte(&mut self, ch: ChanId, ts: SimTime, b: crate::worm::WireByte) {
        let (to, tag, snap) = self.boundary_tag_snap(ch, b.worm);
        self.push_boundary(
            to,
            crate::shard::BoundaryMsg::Rx {
                ts,
                ch,
                tag,
                kind: b.kind,
                snap,
            },
        );
    }

    /// Put an optimistic span of `len` data bytes of `worm` on cross-shard
    /// channel `ch`, first byte landing at `ts`. The receive-side owner
    /// truncates it against its own STOP watermarks on arrival.
    fn send_boundary_span(&mut self, ch: ChanId, ts: SimTime, worm: WormId, len: u64) {
        let (to, tag, snap) = self.boundary_tag_snap(ch, worm);
        self.push_boundary(
            to,
            crate::shard::BoundaryMsg::RxSpan {
                ts,
                ch,
                tag,
                len,
                snap,
            },
        );
    }

    /// Enqueue one boundary message into the local wheel, materialising
    /// the worm on first contact. Called by the shard worker loop while
    /// draining its inbound mailboxes; the conservative horizon guarantees
    /// `ts` has not been executed past.
    pub(crate) fn ingest_boundary(&mut self, msg: crate::shard::BoundaryMsg) {
        debug_assert!(
            msg.ts() >= self.scheduler.now(),
            "boundary message at {} arrived behind local time {}",
            msg.ts(),
            self.scheduler.now()
        );
        match msg {
            crate::shard::BoundaryMsg::Rx {
                ts,
                ch,
                tag,
                kind,
                snap,
            } => {
                let worm = self.worm_for_tag(tag, snap);
                self.scheduler
                    .at(ts, Event::RxByte { ch, byte: crate::worm::WireByte { worm, kind } });
            }
            crate::shard::BoundaryMsg::RxSpan {
                ts,
                ch,
                tag,
                len,
                snap,
            } => {
                let worm = self.worm_for_tag(tag, snap);
                let start = ts - self.lanes[ch.0 as usize].delay();
                // Queue the span on the local (receive-side) lane copy and
                // schedule its admission at first-byte arrival. A STOP this
                // side emitted before `ts` truncates it then, mirroring the
                // transmitter's own truncation (see `handle_rx_span`).
                self.lanes[ch.0 as usize].enqueue_foreign_span(SpanInFlight {
                    worm,
                    start,
                    len,
                });
                self.scheduler.at(ts, Event::RxSpan { ch });
            }
            crate::shard::BoundaryMsg::Ctrl { ts, ch, sym } => {
                self.scheduler.at(ts, Event::CtrlRx { ch, sym });
            }
        }
    }

    /// Resolve a boundary worm tag to the local dense [`WormId`],
    /// registering the worm from its snapshot on first contact. The
    /// injecting shard counted the worm's statistics; a mirror counts
    /// nothing here (its deliveries later drive this shard's
    /// `active_worms` negative, which the merged statistics balance out).
    fn worm_for_tag(&mut self, tag: u64, snap: Option<Box<crate::shard::WormSnap>>) -> WormId {
        let s = self.shard.as_mut().expect("boundary ingest implies shard ctx");
        if let Some(&w) = s.tag_to_worm.get(&tag) {
            return w;
        }
        let snap = snap.expect("first boundary byte of a worm carries its snapshot");
        let id = WormId(self.worms.len() as u32);
        s.tag_to_worm.insert(tag, id);
        *self.worm_names.get_mut(id) = tag;
        self.worms.push(snap.instantiate(id));
        id
    }

    /// The canonical name of a local worm, or `None` if it was never
    /// injected or materialized here. Used by the merged deadlock analysis
    /// to name one worm consistently across the shards that each hold a
    /// mirror of it under different dense ids.
    pub(crate) fn worm_tag(&self, worm: WormId) -> Option<u64> {
        let tag = self.worm_names.get(worm);
        (tag != u64::MAX).then_some(tag)
    }

    /// The canonical name of a local worm, for trace emission: every worm
    /// is named at injection ([`Network::inject_worm`]) or first boundary
    /// contact (`worm_for_tag`), so an unnamed worm here is a logic error.
    #[inline]
    pub(crate) fn worm_name(&self, worm: WormId) -> u64 {
        let tag = self.worm_names.get(worm);
        debug_assert_ne!(tag, u64::MAX, "traced worm {worm:?} was never named");
        tag
    }

    /// Resolve a canonical worm name (the `worm` field of
    /// [`TraceEvent`](crate::trace::TraceEvent)s) back to the local worm
    /// instance. Linear scan — meant for diagnostics and trace
    /// post-processing, not the simulation hot path.
    pub fn worm_by_name(&self, name: u64) -> Option<&WormInstance> {
        (0..self.worms.len() as u32)
            .find(|&i| self.worm_names.get(WormId(i)) == name)
            .map(|i| &self.worms[i as usize])
    }

    /// Sum of output-link utilization over the host adapters this engine
    /// owns (unowned mirrors never carry bytes and contribute zero).
    pub(crate) fn host_tx_utilization_total(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.adapters
            .iter()
            .filter_map(|a| a.chan_out)
            .map(|ch| self.lanes[ch.0 as usize].utilization(elapsed))
            .sum()
    }

    fn handle_tx_kick(&mut self, ch: ChanId, gen: u32) {
        let (src, stopped) = {
            let c = &self.lanes[ch.0 as usize];
            if !c.kick_is_current(gen) {
                // This kick belonged to a span chain a STOP truncated; the
                // GO that lifts the STOP starts a fresh chain.
                return;
            }
            (c.src(), c.is_stopped())
        };
        if stopped {
            self.lanes[ch.0 as usize].set_tx_idle();
            return;
        }
        if self.cfg.mode == SimMode::SpanBatched && self.try_emit_span(ch) {
            return;
        }
        let byte = match src.node {
            NodeRef::Switch(s) => self.switch_produce_byte(s, src.port.0),
            NodeRef::Host(h) => self.adapter_produce_byte(h),
        };
        match byte {
            Some(b) => {
                let now = self.scheduler.now();
                // A cross-shard lane's `in_flight` is owned by neither copy
                // alone; both leave it 0 (and the span probes treat such
                // lanes as unbatchable), so skip the increment the
                // receive-side owner will never see to decrement.
                let dst_foreign = self.chan_dst_foreign(ch);
                let payload = if matches!(b.kind, ByteKind::Idle) {
                    TxPayload::Idle
                } else {
                    TxPayload::Data
                };
                let ticket = TxPort::new(&mut self.lanes[ch.0 as usize])
                    .try_send(now, payload, !dst_foreign)
                    .expect("armed kick fires at the lane's ready time");
                if dst_foreign {
                    self.send_boundary_byte(ch, ticket.deliver_at, b);
                } else {
                    self.scheduler
                        .at(ticket.deliver_at, Event::RxByte { ch, byte: b });
                }
                self.scheduler.after(1, Event::TxKick { ch, gen: ticket.gen });
                // tx_active stays true: the follow-up kick is pending.
            }
            None => {
                self.lanes[ch.0 as usize].set_tx_idle();
            }
        }
    }

    /// Span-batched fast path (see DESIGN.md §3.1): when the producer holds
    /// a run of contiguous ready data bytes of one worm and moving them in
    /// a single event is provably indistinguishable from per-byte
    /// transmission, put the whole run on the wire at once. Returns true
    /// when a span went out (the end-of-span kick is scheduled); false
    /// means the caller must produce per-byte.
    fn try_emit_span(&mut self, ch: ChanId) -> bool {
        // Replication, IDLE fill and flushes (Section 3 machinery) make
        // byte-level interleaving observable; the fast path is off outright.
        if !self.switchcast_allows_spans() {
            return false;
        }
        // Bytes bound for another shard go out as an *optimistic* span:
        // the receive-side occupancy needed for an exact admission check
        // lives over there, so the owner performs it on arrival — either
        // admitting the span whole or expanding it back into per-byte
        // arrivals — and NACKs persistent congestion (DESIGN.md §3.4).
        let dst_foreign = self.chan_dst_foreign(ch);
        if dst_foreign && !self.lanes[ch.0 as usize].span_optimism() {
            // A NACK is in force; stay per-byte until a credit or GO
            // restores optimism.
            return false;
        }
        let (src, dst, wire) = {
            let c = &self.lanes[ch.0 as usize];
            (c.src(), c.dst(), c.in_flight() as u64)
        };
        let Some((worm, avail)) = (match src.node {
            NodeRef::Switch(s) => self.switch_span_ready(s, src.port.0),
            NodeRef::Host(h) => self.adapter_span_ready(h),
        }) else {
            return false;
        };
        let room = if dst_foreign {
            // Bound the optimistic span by the mirror's slack geometry
            // alone (shards are built from identical fabrics). Any bound
            // is semantics-safe — the owner truncates or expands on
            // arrival — this one just keeps the rejection rate low.
            let NodeRef::Switch(s) = dst.node else {
                // Host-terminated lanes never cross shards (hosts follow
                // their attach switch); fall back defensively.
                return false;
            };
            let mark =
                self.switches[s.0 as usize].inputs[dst.port.index()].slack.stop_mark as u64;
            let r = mark.saturating_sub(1 + wire);
            if r == 0 {
                return false;
            }
            r
        } else {
            let probed = match dst.node {
                NodeRef::Switch(s) => self.switch_span_room(s, dst.port.0, wire),
                NodeRef::Host(h) => self.adapter_span_room(h, worm),
            };
            let Some(room) = probed else {
                return false;
            };
            room
        };
        let mut k = avail.min(room);
        // Keep the watchdog's progress sampling meaningful: a span credits
        // all its bytes in one event, so cap the movement gap well below
        // the sampling interval. (Any cap is semantics-preserving.)
        if self.cfg.watchdog_interval > 0 {
            k = k.min((self.cfg.watchdog_interval / 2).max(1));
        }
        if k < MIN_SPAN {
            return false;
        }
        // Commit: dequeue the run from the producer...
        let producer_drained = match src.node {
            NodeRef::Switch(s) => {
                let owner = self.switches[s.0 as usize].outputs[src.port.index()]
                    .owner
                    .expect("span-ready output has an owner");
                let inp = &mut self.switches[s.0 as usize].inputs[owner as usize];
                for _ in 0..k {
                    let b = inp.buf.pop_front().expect("span-ready bytes buffered");
                    debug_assert!(b.worm == worm && matches!(b.kind, ByteKind::Data));
                }
                // No per-dequeue GO check: `switch_span_ready` guaranteed
                // `sent_stop` is false for the whole drain window.
                inp.buf.is_empty()
            }
            NodeRef::Host(h) => {
                let a = &mut self.adapters[h.0 as usize];
                a.tx_queue
                    .front_mut()
                    .expect("span-ready head worm")
                    .body_sent += k;
                a.counters.bytes_sent += k;
                // The tail byte (at least) is still owed, so the adapter
                // always needs the end-of-span kick.
                false
            }
        };
        // ...and move it as one span.
        let now = self.scheduler.now();
        let ticket = TxPort::new(&mut self.lanes[ch.0 as usize])
            .try_send(now, TxPayload::Span { worm, len: k }, true)
            .expect("span probe ran at the lane's ready time");
        if self.trace.enabled() {
            // Span-level engine events sit alongside the lifecycle stream;
            // the per-byte expander erases them (trace.rs module docs).
            let lane = self.lanes[ch.0 as usize].lane_index();
            let worm = self.worm_name(worm);
            self.trace
                .push(now, TraceEvent::SpanEmitted { worm, ch, lane, len: k });
        }
        if dst_foreign {
            self.send_boundary_span(ch, ticket.deliver_at, worm, k);
            // The receive-side owner delivers the bytes; this RxSpan fires
            // at end-of-transmission to retire the local wire-occupancy
            // entry, which must stay truncatable while still sending
            // (see `handle_rx_span`).
            self.scheduler.at(now + k, Event::RxSpan { ch });
        } else {
            self.scheduler.at(ticket.deliver_at, Event::RxSpan { ch });
        }
        if producer_drained {
            // The span took everything the producer had; an end-of-span
            // kick would only find an empty buffer (the dominant event cost
            // at light load). Go idle instead: whatever refills the buffer
            // re-kicks via `kick_channel`, which paces the kick to
            // `next_tx_time`, so send slots are unchanged.
            self.lanes[ch.0 as usize].set_tx_idle();
        } else {
            self.scheduler.after(k, Event::TxKick { ch, gen: ticket.gen });
            // tx_active stays true: the end-of-span kick is pending.
        }
        true
    }

    /// Deliver the oldest in-flight span on `ch`. Spans and single bytes on
    /// one channel share FIFO wire order, so the queue front is always the
    /// arriving span.
    ///
    /// On a cut lane this event plays two roles: at the transmit-side owner
    /// it fires at end-of-transmission and merely retires the local
    /// wire-occupancy entry; at the receive-side owner it fires at
    /// first-byte arrival and performs the admission check the transmitter
    /// optimistically skipped.
    fn handle_rx_span(&mut self, ch: ChanId) {
        if self.chan_dst_foreign(ch) {
            // Transmit-side retirement: the entry (possibly STOP-truncated
            // since emission) only tracked wire occupancy here. Entries and
            // retirement events pair up 1:1 in FIFO order, so the popped
            // lengths sum correctly even when truncations reordered the
            // nominal end-of-transmission times.
            let _ = RxPort::new(&mut self.lanes[ch.0 as usize]).deliver_span();
            return;
        }
        let src_foreign = self.chan_src_foreign(ch);
        if src_foreign {
            // Mirror, before taking the span off the wire, exactly the
            // truncation any STOP this side emitted has meanwhile forced
            // on the transmitter's copy (`Lane::truncate_arriving_foreign_span`).
            let revoked = self.lanes[ch.0 as usize].truncate_arriving_foreign_span();
            if revoked > 0 && self.trace.enabled() {
                let now = self.scheduler.now();
                let l = &self.lanes[ch.0 as usize];
                let (worm, lane) = (l.front_span_worm(), l.lane_index());
                if let Some(worm) = worm {
                    let worm = self.worm_name(worm);
                    self.trace
                        .push(now, TraceEvent::SpanTruncated { worm, ch, lane, revoked });
                }
            }
        }
        let (dst, span) = RxPort::new(&mut self.lanes[ch.0 as usize]).deliver_span();
        if span.len == 0 {
            // Fully revoked by a STOP truncation (only the already-sent
            // remainder of a span survives; an empty one is just the
            // placeholder for this event).
            return;
        }
        if src_foreign && !self.admit_foreign_span(ch, dst, &span) {
            return;
        }
        // Credit `bytes_moved` per-byte-exactly: byte `j` of the span
        // conceptually arrives at `now + j`, and only arrivals strictly
        // before the run deadline count — its per-byte twin would sort
        // behind the deadline's Stop event ([`Event::canon_key`]) and fire
        // next run. The tail is credited by whichever later run covers it.
        let now = self.scheduler.now();
        let counted = span.len.min(self.run_deadline.saturating_sub(now));
        self.stats.bytes_moved += counted;
        if counted < span.len {
            self.deferred_moves.push((now + counted, span.len - counted));
        }
        debug_assert!(
            self.flushed_count == 0,
            "spans and flushes cannot coexist (switchcast gates the fast path)"
        );
        if self.trace.enabled() {
            let lane = self.lanes[ch.0 as usize].lane_index();
            self.trace.push(now, TraceEvent::SpanDelivered {
                worm: self.worm_name(span.worm),
                ch,
                lane,
                len: span.len,
            });
        }
        match dst.node {
            NodeRef::Switch(s) => self.switch_rx_span(s, dst.port.0, span.worm, span.len),
            NodeRef::Host(h) => self.adapter_rx_span(h, span.worm, span.len),
        }
    }

    /// Receive-side admission of an optimistic cross-shard span: admit it
    /// whole iff bulk delivery is provably indistinguishable from per-byte
    /// arrival — the input has no STOP in force and the whole run stays
    /// strictly below the STOP watermark (`switch_span_room` with zero
    /// wire bytes: everything on the wire IS this span). Otherwise expand
    /// the span back into the per-byte arrival stream it stood for (one
    /// [`Event::RxForeign`] per wire slot, at exactly the canonical
    /// per-byte positions) and NACK the transmitter when the input is
    /// genuinely congested. Returns whether the span was admitted.
    fn admit_foreign_span(&mut self, ch: ChanId, dst: Endpoint, span: &SpanInFlight) -> bool {
        let NodeRef::Switch(s) = dst.node else {
            unreachable!("cut lanes terminate at switches (hosts follow their attach switch)");
        };
        if self
            .switch_span_room(s, dst.port.0, 0)
            .is_some_and(|room| span.len <= room)
        {
            return true;
        }
        let now = self.scheduler.now();
        self.lanes[ch.0 as usize].push_foreign_run(ForeignRun {
            worm: span.worm,
            next: now,
            end: now + span.len,
        });
        // Rank 4 (RxByte) sorts before this RxSpan's rank 5, so pushing at
        // `now` fires the first expansion byte immediately after this
        // event — at its exact canonical arrival slot.
        self.scheduler.at(now, Event::RxForeign { ch });
        let inp = &self.switches[s.0 as usize].inputs[dst.port.index()];
        if inp.occupancy() > inp.slack.go_mark && !self.lanes[ch.0 as usize].nack_pending() {
            // Congested beyond the GO threshold: further optimism is
            // wasted mailbox traffic. (A rejection with a near-empty
            // buffer — a STOP still in force during drain — clears on its
            // own, so no NACK there.)
            self.lanes[ch.0 as usize].set_nack_pending(true);
            self.send_ctrl(ch, CtrlSym::SpanNack);
        }
        false
    }

    /// One byte of a rejected cross-shard span lands: re-create exactly
    /// the per-byte arrival the span stood for. Self-scheduling: each
    /// delivery arms the next slot until the run is exhausted or a STOP
    /// clamp revoked its tail.
    fn handle_rx_foreign(&mut self, ch: ChanId) {
        let now = self.scheduler.now();
        let Some(run) = self.lanes[ch.0 as usize].foreign_run_front() else {
            return;
        };
        if now >= run.end {
            // A STOP clamp revoked everything still owed.
            self.lanes[ch.0 as usize].pop_foreign_run();
            return;
        }
        debug_assert_eq!(run.next, now, "expansion bytes arrive one per wire slot");
        let dst = self.lanes[ch.0 as usize].dst();
        if let Some(r) = self.lanes[ch.0 as usize].foreign_run_front_mut() {
            r.next = now + 1;
        }
        self.stats.bytes_moved += 1;
        let NodeRef::Switch(s) = dst.node else {
            unreachable!("cut lanes terminate at switches");
        };
        self.switch_rx_byte(
            s,
            dst.port.0,
            crate::worm::WireByte {
                worm: run.worm,
                kind: ByteKind::Data,
            },
        );
        // The arrival may have crossed the STOP mark, clamping this very
        // run's end through `note_foreign_stop` — re-read before arming
        // the next slot.
        match self.lanes[ch.0 as usize].foreign_run_front() {
            Some(r) if r.next < r.end => self.scheduler.at(r.next, Event::RxForeign { ch }),
            Some(_) => self.lanes[ch.0 as usize].pop_foreign_run(),
            None => {}
        }
    }

    /// A STOP just took effect on `ch` at time `now`. In per-byte mode the
    /// CtrlRx always fires before the same-timestamp TxKick (it was
    /// scheduled at least `delay` ≥ 1 byte-times earlier, and within its
    /// scheduling timestamp the RxByte that triggered it precedes the chain
    /// kick), so no byte with a send slot ≥ `now` has gone out — except the
    /// first byte of a span emitted by a kick that ran earlier this very
    /// timestamp. Cut every in-flight span back to its already-sent prefix
    /// and hand the revoked bytes back to the producer.
    fn truncate_spans(&mut self, ch: ChanId) {
        let now = self.scheduler.now();
        let Some((worm, revoked)) = self.lanes[ch.0 as usize].truncate_newest_span(now) else {
            return;
        };
        if self.trace.enabled() {
            let lane = self.lanes[ch.0 as usize].lane_index();
            let name = self.worm_name(worm);
            self.trace.push(now, TraceEvent::SpanTruncated {
                worm: name,
                ch,
                lane,
                revoked,
            });
        }
        let src = self.lanes[ch.0 as usize].src();
        match src.node {
            NodeRef::Switch(s) => {
                let owner = self.switches[s.0 as usize].outputs[src.port.index()]
                    .owner
                    .expect("truncated span has a crossbar owner");
                let inp = &mut self.switches[s.0 as usize].inputs[owner as usize];
                debug_assert!(matches!(
                    inp.state,
                    crate::switch::InState::Forwarding { worm: w, .. } if w == worm
                ));
                for _ in 0..revoked {
                    inp.buf.push_front(crate::worm::WireByte {
                        worm,
                        kind: ByteKind::Data,
                    });
                }
            }
            NodeRef::Host(h) => {
                let a = &mut self.adapters[h.0 as usize];
                let head = a.tx_queue.front_mut().expect("truncated span's worm queued");
                debug_assert_eq!(head.worm, worm);
                head.body_sent -= revoked;
                a.counters.bytes_sent -= revoked;
            }
        }
    }

    fn handle_rx_byte(&mut self, ch: ChanId, byte: crate::worm::WireByte) {
        // Bytes from a foreign transmit side never incremented the
        // local `in_flight` copy (see `handle_tx_kick`).
        let src_foreign = self.chan_src_foreign(ch);
        let dst = RxPort::new(&mut self.lanes[ch.0 as usize]).deliver(!src_foreign);
        self.stats.bytes_moved += 1;
        // Bytes of a flushed (Backward Reset) worm evaporate on arrival.
        if self.flushed_count > 0 && self.discard_if_flushed(&byte) {
            return;
        }
        match dst.node {
            NodeRef::Switch(s) => self.switch_rx_byte(s, dst.port.0, byte),
            NodeRef::Host(h) => self.adapter_rx_byte(h, byte),
        }
    }

    fn handle_ctrl(&mut self, ch: ChanId, sym: CtrlSym) {
        let now = self.scheduler.now();
        match sym {
            CtrlSym::Stop => {
                // Stall-interval accounting runs inside `Lane::stop`
                // whether or not tracing is on; STOP/GO symbols are rare
                // relative to bytes.
                let lane = {
                    let l = &mut self.lanes[ch.0 as usize];
                    l.stop(now);
                    l.lane_index()
                };
                if self.cfg.mode == SimMode::SpanBatched {
                    self.truncate_spans(ch);
                }
                if self.trace.enabled() {
                    self.trace.push(now, TraceEvent::StopInForce { ch, lane });
                    self.pending_ctrl_trace.push((now, ch, true));
                }
            }
            CtrlSym::Go => {
                let lane = {
                    let l = &mut self.lanes[ch.0 as usize];
                    l.go(now);
                    // A GO means the receive-side slack drained below the
                    // low watermark — on a cut lane that also restores
                    // span optimism (the receiver cleared its NACK flag
                    // when it emitted this GO).
                    l.set_span_optimism(true);
                    l.lane_index()
                };
                if self.trace.enabled() {
                    self.trace.push(now, TraceEvent::GoReceived { ch, lane });
                    self.pending_ctrl_trace.push((now, ch, false));
                }
                self.kick_channel(ch);
            }
            CtrlSym::SpanNack => {
                // The receive-side owner of this cut lane rejected an
                // optimistic span into congestion; stop shipping spans
                // until a credit (or GO) arrives. Pure engine throttle:
                // the rejected bytes still arrive per-byte-exactly.
                let l = &mut self.lanes[ch.0 as usize];
                l.set_span_optimism(false);
                let lane = l.lane_index();
                if self.trace.enabled() {
                    self.trace.push(now, TraceEvent::SpanNack { ch, lane });
                }
            }
            CtrlSym::SpanCredit => {
                let l = &mut self.lanes[ch.0 as usize];
                l.set_span_optimism(true);
                let lane = l.lane_index();
                if self.trace.enabled() {
                    self.trace.push(now, TraceEvent::SpanCredit { ch, lane });
                }
            }
            CtrlSym::BackwardReset => self.switchcast_backward_reset(ch),
        }
    }

    /// Resolve the deferred STOP/GO worm attributions queued during the
    /// tick that just ended. Called when simulated time is about to
    /// advance (and at run end), so [`Self::channel_carried_worm`] sees
    /// end-of-tick state — identical in both [`SimMode`]s — rather than
    /// whatever intra-tick event order the engine happened to use.
    fn flush_ctrl_trace(&mut self) {
        if self.pending_ctrl_trace.is_empty() {
            return;
        }
        for i in 0..self.pending_ctrl_trace.len() {
            let (t, ch, is_stop) = self.pending_ctrl_trace[i];
            if let Some(worm) = self.channel_carried_worm(ch) {
                let worm = self.worm_name(worm);
                let cause = BlockCause::StopBackpressure { ch };
                let ev = if is_stop {
                    TraceEvent::WormBlocked { worm, cause }
                } else {
                    TraceEvent::WormResumed { worm, cause }
                };
                self.trace.push(t, ev);
            }
        }
        self.pending_ctrl_trace.clear();
    }

    /// The worm whose bytes the transmit side of `ch` is (or would be)
    /// carrying right now — the worm a STOP on `ch` actually blocks.
    /// Only meaningful at whole byte-time boundaries (see
    /// [`Self::flush_ctrl_trace`]), where crossbar/adapter state is
    /// identical in both [`SimMode`]s.
    fn channel_carried_worm(&self, ch: ChanId) -> Option<WormId> {
        let c = &self.lanes[ch.0 as usize];
        match c.src().node {
            NodeRef::Switch(s) => {
                let sw = &self.switches[s.0 as usize];
                let owner = sw.outputs[c.src().port.index()].owner?;
                match &sw.inputs[owner as usize].state {
                    crate::switch::InState::Forwarding { worm, .. } => Some(*worm),
                    crate::switch::InState::Replicating(rep) => Some(rep.worm),
                    _ => None,
                }
            }
            NodeRef::Host(h) => self.adapters[h.0 as usize]
                .tx_queue
                .front()
                .map(|t| t.worm),
        }
    }

    fn handle_inject(&mut self, host: HostId) {
        let Some(mut src) = self.sources[host.0 as usize].take() else {
            return;
        };
        let now = self.scheduler.now();
        let (m, next) = src.next(now, host);
        self.sources[host.0 as usize] = Some(src);
        if let Some(delay) = next {
            self.pending_injects += 1;
            self.scheduler.after(delay, Event::Inject { host });
        }
        if let Some(sm) = m {
            let seq = &mut self.next_msg_seq[host.0 as usize];
            let msg = MessageId(((host.0 as u64) << 40) | *seq);
            *seq += 1;
            self.stats.messages_generated += 1;
            let app = AppMessage {
                msg,
                origin: host,
                dest: sm.dest,
                payload_len: sm.payload_len,
                created: now,
            };
            self.msgs.created.push(MessageRecord {
                msg,
                origin: host,
                dest: sm.dest,
                payload_len: sm.payload_len,
                created: now,
            });
            self.notify_generate(host, app);
        }
    }

    // -- protocol dispatch ---------------------------------------------------

    pub(crate) fn notify_generate(&mut self, host: HostId, msg: AppMessage) {
        let Some(mut proto) = self.protocols[host.0 as usize].take() else {
            return;
        };
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        {
            let mut ctx = ProtocolCtx {
                now: self.scheduler.now(),
                host,
                tx_backlog: self.adapters[host.0 as usize].tx_backlog(),
                rng: &mut self.rngs[host.0 as usize],
                commands: &mut cmds,
            };
            proto.on_generate(&mut ctx, msg);
        }
        self.protocols[host.0 as usize] = Some(proto);
        self.apply_commands(host, &mut cmds);
        self.cmd_scratch = cmds;
    }

    pub(crate) fn protocol_admission(&mut self, host: HostId, worm: WormId) -> Admission {
        let Some(mut proto) = self.protocols[host.0 as usize].take() else {
            return Admission::Accept;
        };
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        let admission = {
            let inst = &self.worms[worm.0 as usize];
            let mut ctx = ProtocolCtx {
                now: self.scheduler.now(),
                host,
                tx_backlog: self.adapters[host.0 as usize].tx_backlog(),
                rng: &mut self.rngs[host.0 as usize],
                commands: &mut cmds,
            };
            proto.on_header(&mut ctx, inst)
        };
        self.protocols[host.0 as usize] = Some(proto);
        if admission == Admission::Refuse && self.trace.enabled() {
            let worm = self.worm_name(worm);
            self.trace
                .push(self.scheduler.now(), TraceEvent::WormRefused { worm, host });
        }
        self.apply_commands(host, &mut cmds);
        self.cmd_scratch = cmds;
        admission
    }

    pub(crate) fn notify_worm_received(&mut self, host: HostId, worm: WormId) {
        self.stats.worms_delivered += 1;
        if self.trace.enabled() {
            let worm = self.worm_name(worm);
            self.trace
                .push(self.scheduler.now(), TraceEvent::WormReceived { worm, host });
        }
        let Some(mut proto) = self.protocols[host.0 as usize].take() else {
            return;
        };
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        {
            let inst = &self.worms[worm.0 as usize];
            let mut ctx = ProtocolCtx {
                now: self.scheduler.now(),
                host,
                tx_backlog: self.adapters[host.0 as usize].tx_backlog(),
                rng: &mut self.rngs[host.0 as usize],
                commands: &mut cmds,
            };
            proto.on_worm_received(&mut ctx, inst);
        }
        self.protocols[host.0 as usize] = Some(proto);
        self.apply_commands(host, &mut cmds);
        self.cmd_scratch = cmds;
    }

    pub(crate) fn notify_tx_complete(&mut self, host: HostId, worm: WormId) {
        let Some(mut proto) = self.protocols[host.0 as usize].take() else {
            return;
        };
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        {
            let inst = &self.worms[worm.0 as usize];
            let mut ctx = ProtocolCtx {
                now: self.scheduler.now(),
                host,
                tx_backlog: self.adapters[host.0 as usize].tx_backlog(),
                rng: &mut self.rngs[host.0 as usize],
                commands: &mut cmds,
            };
            proto.on_tx_complete(&mut ctx, inst);
        }
        self.protocols[host.0 as usize] = Some(proto);
        self.apply_commands(host, &mut cmds);
        self.cmd_scratch = cmds;
    }

    pub(crate) fn notify_flushed(&mut self, host: HostId, worm: WormId) {
        let Some(mut proto) = self.protocols[host.0 as usize].take() else {
            return;
        };
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        {
            let inst = &self.worms[worm.0 as usize];
            let mut ctx = ProtocolCtx {
                now: self.scheduler.now(),
                host,
                tx_backlog: self.adapters[host.0 as usize].tx_backlog(),
                rng: &mut self.rngs[host.0 as usize],
                commands: &mut cmds,
            };
            proto.on_worm_flushed(&mut ctx, inst);
        }
        self.protocols[host.0 as usize] = Some(proto);
        self.apply_commands(host, &mut cmds);
        self.cmd_scratch = cmds;
    }

    pub(crate) fn notify_timer(&mut self, host: HostId, token: u64) {
        let Some(mut proto) = self.protocols[host.0 as usize].take() else {
            return;
        };
        let mut cmds = std::mem::take(&mut self.cmd_scratch);
        {
            let mut ctx = ProtocolCtx {
                now: self.scheduler.now(),
                host,
                tx_backlog: self.adapters[host.0 as usize].tx_backlog(),
                rng: &mut self.rngs[host.0 as usize],
                commands: &mut cmds,
            };
            proto.on_timer(&mut ctx, token);
        }
        self.protocols[host.0 as usize] = Some(proto);
        self.apply_commands(host, &mut cmds);
        self.cmd_scratch = cmds;
    }

    fn apply_commands(&mut self, host: HostId, cmds: &mut Vec<Command>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Send(spec) => {
                    self.inject_worm(host, spec);
                }
                Command::DeliverLocal { msg } => {
                    let at = self.scheduler.now();
                    self.msgs.deliveries.push(Delivery { msg, host, at });
                    if self.trace.enabled() {
                        self.trace.push(at, TraceEvent::Delivered { msg, host });
                    }
                }
                Command::SetTimer { delay, token } => {
                    self.pending_timers += 1;
                    self.scheduler.after(delay, Event::HostTimer { host, token });
                }
            }
        }
    }

    // -- worm injection ------------------------------------------------------

    /// Create a worm instance per `spec` and queue it at `host`'s adapter.
    pub(crate) fn inject_worm(&mut self, host: HostId, mut spec: SendSpec) -> WormId {
        assert_ne!(
            host, spec.dest,
            "protocols must deliver locally instead of sending to self"
        );
        let route = match spec.route_override.take() {
            Some(r) => r,
            None => {
                let ports = self.routes.get(host, spec.dest);
                assert!(
                    !ports.is_empty(),
                    "no route from {host:?} to {:?}",
                    spec.dest
                );
                // Reuse a recycled route buffer: steady-state injection
                // performs no allocator calls.
                let mut buf = self.route_pool.take();
                buf.extend(ports.iter().map(|&p| crate::worm::RouteSym::Port(p)));
                buf
            }
        };
        let id = WormId(self.worms.len() as u32);
        let now = self.scheduler.now();
        // Cut-through sanity: following a worm that is not currently being
        // received would stall forever; treat it as fully available.
        let follow = spec.follow.filter(|w| {
            self.adapters[host.0 as usize]
                .rx_body_got
                .get(*w)
                .is_some_and(|g| g != u64::MAX)
        });
        let inst = WormInstance {
            id,
            sinks: spec.sinks.max(1),
            meta: WormMeta {
                kind: spec.kind,
                msg: spec.msg,
                injector: host,
                origin: spec.origin,
                dest: spec.dest,
                seq: spec.seq,
                hops_left: spec.hops_left,
                buffer_class: spec.buffer_class,
                frag_index: spec.frag_index,
                frag_last: spec.frag_last,
                advertised_size: spec.advertised_size,
                stage: spec.stage,
            },
            route_len: route.len() as u32,
            route,
            header_len: self.cfg.header_len,
            payload_len: spec.payload_len,
            created: spec.created,
            injected: now,
        };
        let sinks = inst.sinks.max(1) as u64;
        self.worms.push(inst);
        // Name the worm with its globally unique identity (`worm_names`):
        // boundary bytes use it to name the worm in other shards, and the
        // trace records it so sharded and sequential runs agree line for
        // line. Allocation order follows the injecting host's own event
        // order, which the canonical schedule makes identical to the
        // sequential engine's.
        let seq = &mut self.next_worm_seq[host.0 as usize];
        let tag = ((host.0 as u64) << 40) | *seq;
        *seq += 1;
        *self.worm_names.get_mut(id) = tag;
        if let Some(s) = self.shard.as_mut() {
            s.tag_to_worm.insert(tag, id);
        }
        self.stats.worms_injected += 1;
        self.stats.sinks_injected += sinks;
        self.stats.active_worms += sinks as i64;
        if self.cfg.corrupt_prob > 0.0 && self.fault_rng.gen_bool(self.cfg.corrupt_prob) {
            *self.worm_flags.get_mut(id) |= slab::FLAG_CORRUPT;
        }
        if self.trace.enabled() {
            self.trace
                .push(now, TraceEvent::WormInjected { worm: tag, host });
        }
        let a = &mut self.adapters[host.0 as usize];
        a.enqueue_tx(TxWorm::new(id, follow), spec.priority);
        if let Some(ch) = a.chan_out {
            self.kick_channel(ch);
        }
        id
    }

    // -- auditing ------------------------------------------------------------

    /// Check the conservation invariant. Call at any quiescent point; cheap
    /// enough to call after every test run.
    pub fn audit(&self) -> Result<(), String> {
        let s = &self.stats;
        let expect = s.worms_delivered + s.worms_refused + s.worms_corrupt + s.worms_flushed;
        if s.sinks_injected as i64 != expect as i64 + s.active_worms {
            return Err(format!(
                "worm conservation violated: sinks_injected={} delivered={} refused={} \
                 corrupt={} flushed={} active={}",
                s.sinks_injected,
                s.worms_delivered,
                s.worms_refused,
                s.worms_corrupt,
                s.worms_flushed,
                s.active_worms
            ));
        }
        if s.active_worms == 0 {
            for c in &self.lanes {
                if c.in_flight() != 0 {
                    return Err(format!(
                        "lane {:?} has {} bytes in flight with no active worms",
                        c.id(),
                        c.in_flight()
                    ));
                }
            }
            for sw in &self.switches {
                for (i, inp) in sw.inputs.iter().enumerate() {
                    if !inp.buf.is_empty() {
                        return Err(format!(
                            "switch {:?} input {} holds {} bytes with no active worms",
                            sw.id,
                            i,
                            inp.buf.len()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Aggregate output-link utilization across all host adapters over
    /// `elapsed` byte-times (the paper's "offered load" axis is per-host
    /// output-link utilization).
    pub fn mean_host_tx_utilization(&self, elapsed: SimTime) -> f64 {
        if self.adapters.is_empty() || elapsed == 0 {
            return 0.0;
        }
        let total: f64 = self
            .adapters
            .iter()
            .filter_map(|a| a.chan_out)
            .map(|ch| self.lanes[ch.0 as usize].utilization(elapsed))
            .sum();
        total / self.adapters.len() as f64
    }
}
