//! Validating configuration builders.
//!
//! [`NetworkConfig`] used to be assembled by struct-literal field poking,
//! with invariants enforced by scattered panicking asserts. The builder is
//! now the single construction path: every knob is set through a method,
//! [`NetworkConfigBuilder::build`] validates the whole configuration, and
//! violations come back as a typed [`ConfigError`] instead of an abort.

use crate::fault::FaultConfig;
use crate::link::LaneArbiterKind;
use crate::network::{NetworkConfig, SimMode};
use crate::switch::SlackCfg;
use crate::switchcast::SwitchcastMode;
use crate::time::SimTime;
use crate::trace::TraceConfig;
use std::fmt;

/// A rejected configuration value.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A numeric knob fell outside its legal interval.
    OutOfRange {
        field: &'static str,
        value: f64,
        min: f64,
        max: f64,
    },
    /// A structural invariant failed (e.g. inverted slack watermarks).
    Invalid {
        field: &'static str,
        reason: String,
    },
    /// A link was declared with zero propagation delay — the simulator
    /// needs at least one byte-time per hop (`index` names which entry
    /// of `field` was zero).
    ZeroDelay { field: &'static str, index: usize },
    /// The sharded engine cannot reproduce the sequential schedule with
    /// this feature enabled (switch-level multicast or fault injection —
    /// both need the global event order).
    Unshardable { feature: &'static str },
    /// A channel crosses two shards with zero propagation delay, leaving
    /// the conservative synchronization without lookahead.
    ZeroLookahead { ch: u32, from: u32, to: u32 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "{field} = {value} is outside [{min}, {max}]"),
            ConfigError::Invalid { field, reason } => write!(f, "{field}: {reason}"),
            ConfigError::ZeroDelay { field, index } => {
                write!(f, "{field}[{index}]: link delay must be >= 1 byte-time")
            }
            ConfigError::Unshardable { feature } => {
                write!(f, "sharded execution requires {feature} to be off")
            }
            ConfigError::ZeroLookahead { ch, from, to } => {
                write!(
                    f,
                    "channel {ch} crosses shards {from}->{to} with zero latency (no lookahead)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`NetworkConfig`]. Obtain one with
/// [`NetworkConfig::builder`]; finish with
/// [`build`](NetworkConfigBuilder::build).
#[derive(Clone, Debug, Default)]
pub struct NetworkConfigBuilder {
    cfg: NetworkConfig,
}

impl NetworkConfigBuilder {
    /// Slack buffer configuration; the default derives a safe one per link
    /// delay.
    pub fn slack(mut self, slack: SlackCfg) -> Self {
        self.cfg.slack = Some(slack);
        self
    }

    /// Logical worm header length in bytes (on-wire, after the route).
    pub fn header_len(mut self, header_len: u32) -> Self {
        self.cfg.header_len = header_len;
        self
    }

    /// Master seed for all per-host RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Liveness watchdog period; 0 disables it.
    pub fn watchdog_interval(mut self, interval: SimTime) -> Self {
        self.cfg.watchdog_interval = interval;
        self
    }

    /// Select the trace sink (default: [`TraceConfig::Off`]).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = trace;
        self
    }

    /// Switch-level multicast mode (Section 3 of the paper).
    pub fn switchcast(mut self, mode: SwitchcastMode) -> Self {
        self.cfg.switchcast = mode;
        self
    }

    /// Link-transmission engine mode.
    pub fn mode(mut self, mode: SimMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Fold fault injection into the configuration (replaces the old
    /// `FaultConfig::apply`).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.corrupt_prob = faults.corrupt_prob;
        self
    }

    /// Lanes per switch-to-switch link (virtual channels). 1 — the
    /// default — reproduces the paper's single-lane Myrinet byte-for-byte;
    /// individual links can override via [`crate::network::LinkSpec::lanes`].
    pub fn lanes(mut self, lanes: u8) -> Self {
        self.cfg.lanes = lanes;
        self
    }

    /// Lane-selection policy for multi-lane links (ignored with one lane).
    pub fn arbiter(mut self, arbiter: LaneArbiterKind) -> Self {
        self.cfg.arbiter = arbiter;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<NetworkConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.lanes == 0 {
            return Err(ConfigError::OutOfRange {
                field: "lanes",
                value: 0.0,
                min: 1.0,
                max: u8::MAX as f64,
            });
        }
        if cfg.lanes > 1 && cfg.switchcast != SwitchcastMode::Off {
            return Err(ConfigError::Invalid {
                field: "lanes",
                reason: "switch-level multicast requires single-lane links".into(),
            });
        }
        if !(0.0..=1.0).contains(&cfg.corrupt_prob) {
            return Err(ConfigError::OutOfRange {
                field: "corrupt_prob",
                value: cfg.corrupt_prob,
                min: 0.0,
                max: 1.0,
            });
        }
        if cfg.header_len == 0 {
            return Err(ConfigError::OutOfRange {
                field: "header_len",
                value: 0.0,
                min: 1.0,
                max: u32::MAX as f64,
            });
        }
        if let Some(slack) = &cfg.slack {
            slack.validate().map_err(|reason| ConfigError::Invalid {
                field: "slack",
                reason,
            })?;
        }
        if let TraceConfig::Ring { capacity } = cfg.trace {
            if capacity == 0 {
                return Err(ConfigError::OutOfRange {
                    field: "trace ring capacity",
                    value: 0.0,
                    min: 1.0,
                    max: usize::MAX as f64,
                });
            }
        }
        Ok(cfg)
    }
}

impl NetworkConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> NetworkConfigBuilder {
        NetworkConfigBuilder::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let cfg = NetworkConfig::builder().build().expect("defaults are valid");
        assert_eq!(cfg.seed, NetworkConfig::default().seed);
        assert_eq!(cfg.trace, TraceConfig::Off);
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = NetworkConfig::builder()
            .slack(SlackCfg::for_delay(3))
            .header_len(4)
            .seed(42)
            .watchdog_interval(5_000)
            .trace(TraceConfig::Ring { capacity: 16 })
            .switchcast(SwitchcastMode::IdleFlush)
            .mode(SimMode::PerByte)
            .faults(FaultConfig { corrupt_prob: 0.5 })
            .build()
            .expect("valid");
        assert_eq!(cfg.header_len, 4);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.watchdog_interval, 5_000);
        assert_eq!(cfg.trace, TraceConfig::Ring { capacity: 16 });
        assert_eq!(cfg.switchcast, SwitchcastMode::IdleFlush);
        assert_eq!(cfg.mode, SimMode::PerByte);
        assert_eq!(cfg.corrupt_prob, 0.5);
        assert!(cfg.slack.is_some());
    }

    #[test]
    fn rejects_bad_corrupt_prob() {
        let err = NetworkConfig::builder()
            .faults(FaultConfig { corrupt_prob: 1.5 })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { field: "corrupt_prob", .. }));
        assert!(err.to_string().contains("corrupt_prob"));
    }

    #[test]
    fn rejects_zero_header() {
        let err = NetworkConfig::builder().header_len(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { field: "header_len", .. }));
    }

    #[test]
    fn rejects_inverted_slack() {
        let err = NetworkConfig::builder()
            .slack(SlackCfg {
                capacity: 100,
                stop_mark: 10,
                go_mark: 20,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Invalid { field: "slack", .. }));
    }

    #[test]
    fn rejects_empty_ring() {
        let err = NetworkConfig::builder()
            .trace(TraceConfig::Ring { capacity: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { .. }));
    }

    #[test]
    fn rejects_zero_lanes() {
        let err = NetworkConfig::builder().lanes(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { field: "lanes", .. }));
    }

    #[test]
    fn rejects_lanes_with_switchcast() {
        let err = NetworkConfig::builder()
            .lanes(2)
            .switchcast(SwitchcastMode::IdleFlush)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Invalid { field: "lanes", .. }));
    }

    #[test]
    fn lanes_and_arbiter_round_trip() {
        let cfg = NetworkConfig::builder()
            .lanes(4)
            .arbiter(crate::link::LaneArbiterKind::LeastOccupied)
            .build()
            .expect("valid");
        assert_eq!(cfg.lanes, 4);
        assert_eq!(cfg.arbiter, crate::link::LaneArbiterKind::LeastOccupied);
    }

    #[test]
    fn zero_delay_error_displays_location() {
        let e = ConfigError::ZeroDelay { field: "links", index: 3 };
        assert!(e.to_string().contains("links[3]"));
    }
}
