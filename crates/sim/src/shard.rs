//! Sharded parallel execution of a *single* network (DESIGN.md §3.4).
//!
//! The topology is partitioned into shards (see `wormcast-topo`'s
//! `ShardPlan`); each shard owns a disjoint set of switches, the hosts
//! attached to them, and runs its own [`Network`] instance — its own
//! timing wheel, slabs and event loop — on its own worker thread. Events
//! whose target entity lives in another shard cross as *boundary
//! messages* over per-ordered-pair FIFO mailboxes:
//!
//! - a byte put on a cross-shard channel crosses as [`BoundaryMsg::Rx`]
//!   (the first byte of each worm carries a [`WormSnap`] so the receiving
//!   shard can materialise the worm locally),
//! - a batched run of data bytes crosses as [`BoundaryMsg::RxSpan`] — an
//!   *optimistic* span sized from sender-local state only; the receiving
//!   shard truncates it against its own STOP watermarks on arrival and
//!   either admits it whole or expands it back into the per-byte arrival
//!   stream it stood for (DESIGN.md §3.4), and
//! - a STOP/GO (or span credit/NACK) symbol emitted by a receive side
//!   whose transmit side is foreign crosses as [`BoundaryMsg::Ctrl`].
//!
//! Synchronization is conservative (Chandy–Misra–Bryant style) with
//! lookahead equal to the minimum inter-shard link latency. Each shard
//! publishes a monotone horizon clock `H = min(peek, safe)` where
//! `safe = min over in-neighbors n of (H_n + L(n→me))`, and executes only
//! events with `t < safe`. Publishing `min(peek, safe)` rather than the
//! raw queue head keeps the clock monotone even while boundary messages
//! are still in flight (a raw peek could *regress* when one lands, which
//! would break a neighbor's safety assumption). With every cross-shard
//! lookahead ≥ 1 the shard holding the globally minimal clock always has
//! `peek < safe`, so the system never stalls.
//!
//! Determinism: the scheduler's canonical same-timestamp key
//! ([`crate::engine::Event::canon_key`]) makes the execution order within
//! a byte-time independent of *when* (in wall-clock terms) boundary
//! events entered the wheel, so a sharded run replays exactly the
//! sequential schedule and produces byte-identical statistics, message
//! logs and deliveries. `tests/shard_equivalence.rs` enforces this
//! against the sequential engine on four topologies in both `SimMode`s.

use crate::config::ConfigError;
use crate::deadlock;
use crate::engine::{CtrlSym, HostId, SwitchId};
use crate::link::{ChanId, NodeRef};
use crate::network::{Delivery, MessageLog, MessageRecord, NetStats, Network, RunOutcome};
use crate::slab::PerWorm;
use crate::switchcast::SwitchcastMode;
use crate::time::SimTime;
use crate::trace::Trace;
use crate::worm::{ByteKind, WormId, WormInstance, WormMeta};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A FIFO mailbox carrying boundary messages from one shard to another.
/// One mailbox per ordered shard pair keeps per-sender order — all
/// control symbols for a given channel originate in a single shard, so
/// their emission order survives the crossing.
pub(crate) type Mailbox = Arc<Mutex<VecDeque<BoundaryMsg>>>;

/// Static identity of a worm, attached to the first boundary byte a shard
/// sends another shard for it. Everything the receiving shard needs to
/// materialise the worm locally — the route itself is *not* included:
/// route symbols travel as wire bytes and are consumed by switches, and
/// only the injecting adapter (always co-located with the worm's origin
/// shard) ever reads `WormInstance::route`.
#[derive(Clone, Debug)]
pub(crate) struct WormSnap {
    pub(crate) meta: WormMeta,
    pub(crate) sinks: u32,
    pub(crate) route_len: u32,
    pub(crate) header_len: u32,
    pub(crate) payload_len: u32,
    pub(crate) created: SimTime,
    pub(crate) injected: SimTime,
}

impl WormSnap {
    pub(crate) fn of(w: &WormInstance) -> Self {
        WormSnap {
            meta: w.meta.clone(),
            sinks: w.sinks,
            route_len: w.route_len,
            header_len: w.header_len,
            payload_len: w.payload_len,
            created: w.created,
            injected: w.injected,
        }
    }

    /// Materialise a local [`WormInstance`] under the local id `id`.
    pub(crate) fn instantiate(&self, id: WormId) -> WormInstance {
        WormInstance {
            id,
            meta: self.meta.clone(),
            sinks: self.sinks,
            route: Vec::new(),
            route_len: self.route_len,
            header_len: self.header_len,
            payload_len: self.payload_len,
            created: self.created,
            injected: self.injected,
        }
    }
}

/// An event crossing a shard boundary, stamped with the simulated time at
/// which it takes effect in the receiving shard.
#[derive(Debug)]
pub(crate) enum BoundaryMsg {
    /// A byte arriving at the receive side of cross-shard channel `ch`.
    /// `tag` is the worm's globally unique tag (`injector << 40 | seq`);
    /// `snap` rides along on the first byte the sending shard ever sends
    /// the receiving shard for this worm.
    Rx {
        ts: SimTime,
        ch: ChanId,
        tag: u64,
        kind: ByteKind,
        snap: Option<Box<WormSnap>>,
    },
    /// An optimistic span of `len` data bytes arriving at the receive side
    /// of cut channel `ch`, first byte at `ts`. The sender sized it from
    /// local state only; the receive-side owner truncates it against its
    /// own STOP watermarks on arrival and either admits it whole or
    /// expands it back into per-byte arrivals (DESIGN.md §3.4).
    RxSpan {
        ts: SimTime,
        ch: ChanId,
        tag: u64,
        len: u64,
        snap: Option<Box<WormSnap>>,
    },
    /// A control symbol arriving at the transmit side of cross-shard
    /// channel `ch` (it travelled the reverse channel).
    Ctrl {
        ts: SimTime,
        ch: ChanId,
        sym: CtrlSym,
    },
}

impl BoundaryMsg {
    pub(crate) fn ts(&self) -> SimTime {
        match self {
            BoundaryMsg::Rx { ts, .. }
            | BoundaryMsg::RxSpan { ts, .. }
            | BoundaryMsg::Ctrl { ts, .. } => *ts,
        }
    }
}

/// Per-shard sharding context installed into a [`Network`]. Present only
/// when the network runs as one shard of a [`ShardedNetwork`]; its
/// absence is the (free) "sequential engine" check on the hot paths.
pub(crate) struct ShardCtx {
    /// This shard's index.
    pub(crate) me: u32,
    /// Owning shard of each channel's transmit-side endpoint.
    pub(crate) chan_src_owner: Vec<u32>,
    /// Owning shard of each channel's receive-side endpoint.
    pub(crate) chan_dst_owner: Vec<u32>,
    /// Outgoing mailbox per destination shard (`None` for self and for
    /// shards this one shares no channel with).
    pub(crate) outboxes: Vec<Option<Mailbox>>,
    /// Bitmask of shards already sent a [`WormSnap`] for each local worm
    /// (bit = destination shard index; shard count is capped at 64).
    pub(crate) snap_sent: PerWorm<u64>,
    /// Canonical worm name → local dense [`WormId`]. The names themselves
    /// live in `Network::worm_names` (sequential runs assign them too, so
    /// the trace names worms identically however the run is partitioned);
    /// only this reverse index is shard-specific.
    pub(crate) tag_to_worm: HashMap<u64, WormId>,
}

/// A shard's published horizon clock, padded to its own cache line so the
/// cross-shard polling loop never false-shares.
#[repr(align(64))]
struct ShardClock(AtomicU64);

/// A single simulated network executed by `N` cooperating shard engines.
///
/// Build one `Network` per shard (identical fabric, sources installed
/// only for owned hosts — see `wormcast-bench`'s runner) and hand them to
/// [`ShardedNetwork::new`] together with the switch→shard assignment from
/// a `ShardPlan`. `run_until` then drives all shards on scoped worker
/// threads and the accessors expose merged statistics, message logs and
/// audits equivalent to a sequential run's.
pub struct ShardedNetwork {
    nets: Vec<Network>,
    switch_owner: Vec<u32>,
    host_owner: Vec<u32>,
    clocks: Vec<ShardClock>,
    /// Per shard: `(in-neighbor shard, lookahead)` pairs.
    neighbors: Vec<Vec<(usize, SimTime)>>,
    /// Per shard: `(sending shard, mailbox)` pairs to drain.
    inboxes: Vec<Vec<(usize, Mailbox)>>,
}

impl ShardedNetwork {
    /// Wire `nets` (one identically-built [`Network`] per shard) together
    /// according to `switch_owner` (switch index → shard index; hosts
    /// follow their attach switch). Fails when the configuration cannot
    /// be sharded soundly: switch-level multicast or fault injection in
    /// use (those need the global event order), a cross-shard link with
    /// zero latency (no lookahead), or more than 64 shards. Trace sinks
    /// shard cleanly: every lifecycle event is recorded by exactly one
    /// owning shard, and [`ShardedNetwork::trace`] merges the per-shard
    /// logs into one canonically-sortable stream.
    pub fn new(nets: Vec<Network>, switch_owner: Vec<u32>) -> Result<ShardedNetwork, ConfigError> {
        let num = nets.len();
        if num == 0 {
            return Err(ConfigError::Invalid {
                field: "shards",
                reason: "sharded network needs at least one shard".into(),
            });
        }
        if num > 64 {
            return Err(ConfigError::OutOfRange {
                field: "shards",
                value: num as f64,
                min: 1.0,
                max: 64.0,
            });
        }
        let n0 = &nets[0];
        if switch_owner.len() != n0.switches.len() {
            return Err(ConfigError::Invalid {
                field: "switch_owner",
                reason: format!(
                    "has {} entries for {} switches",
                    switch_owner.len(),
                    n0.switches.len()
                ),
            });
        }
        if let Some(bad) = switch_owner.iter().find(|&&o| o as usize >= num) {
            return Err(ConfigError::Invalid {
                field: "switch_owner",
                reason: format!("owner {bad} out of range for {num} shards"),
            });
        }
        if n0.cfg.switchcast != SwitchcastMode::Off {
            return Err(ConfigError::Unshardable {
                feature: "switch-level multicast",
            });
        }
        if n0.cfg.corrupt_prob != 0.0 {
            return Err(ConfigError::Unshardable {
                feature: "fault injection",
            });
        }
        for (i, n) in nets.iter().enumerate() {
            if n.switches.len() != n0.switches.len()
                || n.adapters.len() != n0.adapters.len()
                || n.lanes.len() != n0.lanes.len()
            {
                return Err(ConfigError::Invalid {
                    field: "nets",
                    reason: format!("shard {i} was built from a different fabric"),
                });
            }
        }

        // Hosts follow their attach switch.
        let host_owner: Vec<u32> = (0..n0.adapters.len())
            .map(|h| {
                let ch = n0.adapters[h].chan_out.expect("host has an uplink");
                match n0.lanes[ch.0 as usize].dst().node {
                    NodeRef::Switch(s) => switch_owner[s.0 as usize],
                    NodeRef::Host(_) => unreachable!("host uplink ends at a switch"),
                }
            })
            .collect();
        let owner = |node: NodeRef| match node {
            NodeRef::Switch(s) => switch_owner[s.0 as usize],
            NodeRef::Host(h) => host_owner[h.0 as usize],
        };

        let mut chan_src_owner = Vec::with_capacity(n0.lanes.len());
        let mut chan_dst_owner = Vec::with_capacity(n0.lanes.len());
        // Pairwise lookahead: the minimum latency of any channel between
        // the two shards, in either direction — data bytes cross with the
        // forward channel's delay, control symbols cross *back* with the
        // same channel's delay, so every channel bounds both directions.
        let mut lookahead = vec![vec![SimTime::MAX; num]; num];
        for c in &n0.lanes {
            let a = owner(c.src().node);
            let b = owner(c.dst().node);
            chan_src_owner.push(a);
            chan_dst_owner.push(b);
            if a != b {
                if c.delay() == 0 {
                    return Err(ConfigError::ZeroLookahead {
                        ch: c.id().0,
                        from: a,
                        to: b,
                    });
                }
                let (a, b) = (a as usize, b as usize);
                lookahead[a][b] = lookahead[a][b].min(c.delay());
                lookahead[b][a] = lookahead[b][a].min(c.delay());
            }
        }

        let mut mailboxes: Vec<Vec<Option<Mailbox>>> = (0..num)
            .map(|from| {
                (0..num)
                    .map(|to| {
                        (from != to && lookahead[from][to] != SimTime::MAX)
                            .then(|| Arc::new(Mutex::new(VecDeque::new())))
                    })
                    .collect()
            })
            .collect();
        let neighbors: Vec<Vec<(usize, SimTime)>> = (0..num)
            .map(|me| {
                (0..num)
                    .filter(|&x| x != me && lookahead[x][me] != SimTime::MAX)
                    .map(|x| (x, lookahead[x][me]))
                    .collect()
            })
            .collect();
        let inboxes: Vec<Vec<(usize, Mailbox)>> = (0..num)
            .map(|me| {
                (0..num)
                    .filter_map(|x| mailboxes[x][me].clone().map(|mb| (x, mb)))
                    .collect()
            })
            .collect();

        let mut nets = nets;
        for (i, net) in nets.iter_mut().enumerate() {
            net.install_shard_ctx(ShardCtx {
                me: i as u32,
                chan_src_owner: chan_src_owner.clone(),
                chan_dst_owner: chan_dst_owner.clone(),
                outboxes: std::mem::take(&mut mailboxes[i]),
                snap_sent: PerWorm::new(0),
                tag_to_worm: HashMap::new(),
            });
        }

        let clocks = (0..num).map(|_| ShardClock(AtomicU64::new(0))).collect();
        Ok(ShardedNetwork {
            nets,
            switch_owner,
            host_owner,
            clocks,
            neighbors,
            inboxes,
        })
    }

    pub fn num_shards(&self) -> usize {
        self.nets.len()
    }

    /// The shard engines themselves (tests poke per-shard state).
    pub fn nets(&self) -> &[Network] {
        &self.nets
    }

    /// Run all shards until `t_end`, merging the per-shard outcomes.
    pub fn run_until(&mut self, t_end: SimTime) -> RunOutcome {
        let clocks = &self.clocks;
        for (i, n) in self.nets.iter().enumerate() {
            clocks[i].0.store(n.scheduler.now(), Ordering::Release);
        }
        let neighbors = &self.neighbors;
        let inboxes = &self.inboxes;
        let outcomes: Vec<RunOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .nets
                .iter_mut()
                .enumerate()
                .map(|(me, net)| {
                    s.spawn(move || shard_loop(net, me, clocks, &neighbors[me], &inboxes[me], t_end))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let end_time = outcomes.iter().map(|o| o.end_time).max().unwrap_or(t_end);
        let stats = self.stats();
        // A sequential run reports "drained" when its queue empties; the
        // merged equivalent is global quiescence (a shard's queue alone
        // says nothing — its work may be parked in a peer's mailbox).
        let drained = self.is_quiescent();
        let deadlock = if stats.active_worms > 0 {
            deadlock::analyze_multi(&self.nets, &self.switch_owner, &self.host_owner)
        } else {
            None
        };
        RunOutcome {
            end_time,
            drained,
            deadlock,
            stats,
        }
    }

    /// Merged quiescence: counters sum to zero and no boundary message is
    /// parked in any mailbox. (Per-shard `active_worms` is allowed to go
    /// negative — a receive-heavy shard resolves sinks it never counted.)
    pub fn is_quiescent(&self) -> bool {
        self.nets.iter().map(|n| n.stats.active_worms).sum::<i64>() == 0
            && self
                .nets
                .iter()
                .all(|n| n.pending_injects == 0 && n.pending_timers == 0)
            && self.all_parked()
    }

    fn all_parked(&self) -> bool {
        self.inboxes
            .iter()
            .flatten()
            .all(|(_, mb)| mb.lock().unwrap().is_empty())
    }

    /// Merged run-wide counters: every field is additive across shards
    /// (each injection, delivery and byte-hop is counted by exactly one
    /// shard). The event counters measure *engine* cost and legitimately
    /// differ from a sequential run — mask them when comparing, as the
    /// `SimMode` differential tests already do.
    pub fn stats(&self) -> NetStats {
        let mut m = NetStats::default();
        for n in &self.nets {
            let s = &n.stats;
            m.worms_injected += s.worms_injected;
            m.sinks_injected += s.sinks_injected;
            m.worms_delivered += s.worms_delivered;
            m.worms_refused += s.worms_refused;
            m.worms_corrupt += s.worms_corrupt;
            m.worms_flushed += s.worms_flushed;
            m.active_worms += s.active_worms;
            m.bytes_moved += s.bytes_moved;
            m.messages_generated += s.messages_generated;
            m.events_scheduled += s.events_scheduled;
            m.events_fired += s.events_fired;
        }
        m
    }

    /// Merged message journal, canonically sorted (creation by time then
    /// id; deliveries by time, id, host). The sequential engine's log is
    /// already in this order for creations; delivery order within a tick
    /// follows event-key order there, so comparisons should sort both
    /// sides the same way.
    pub fn msgs(&self) -> MessageLog {
        let mut created: Vec<MessageRecord> = self
            .nets
            .iter()
            .flat_map(|n| n.msgs.created.iter().copied())
            .collect();
        let mut deliveries: Vec<Delivery> = self
            .nets
            .iter()
            .flat_map(|n| n.msgs.deliveries.iter().copied())
            .collect();
        created.sort_by_key(|r| (r.created, r.msg.0));
        deliveries.sort_by_key(|d| (d.at, d.msg.0, d.host.0));
        MessageLog { created, deliveries }
    }

    /// Merged trace: the concatenation of every shard's event log. Each
    /// lifecycle event is recorded by exactly one shard (injection and
    /// reception by the host's owner, route consumption by the switch's
    /// owner, STOP/GO and blocked/resumed attribution by the channel's
    /// transmit-side owner), so concatenation neither duplicates nor
    /// drops anything, and [`Trace::to_jsonl`]'s canonical `(t, line)`
    /// sort puts the merged stream in the same order a sequential run
    /// produces. A [`crate::trace::TraceConfig::Ring`] capacity applies
    /// *per shard* (each engine owns its own ring); `dropped` counts are
    /// summed.
    pub fn trace(&self) -> Trace {
        let mut merged = Trace::new(self.nets[0].trace.config());
        for n in &self.nets {
            merged.absorb(&n.trace);
        }
        merged
    }

    /// Merged conservation audit. Per-shard conservation does not hold
    /// (injection and delivery may land on different shards), so the
    /// counter invariant is checked on the merged statistics while the
    /// structural checks (no bytes in flight or buffered at quiescence)
    /// run per shard.
    pub fn audit(&self) -> Result<(), String> {
        let s = self.stats();
        let expect = s.worms_delivered + s.worms_refused + s.worms_corrupt + s.worms_flushed;
        if s.sinks_injected as i64 != expect as i64 + s.active_worms {
            return Err(format!(
                "worm conservation violated (merged): sinks_injected={} delivered={} \
                 refused={} corrupt={} flushed={} active={}",
                s.sinks_injected,
                s.worms_delivered,
                s.worms_refused,
                s.worms_corrupt,
                s.worms_flushed,
                s.active_worms
            ));
        }
        if s.active_worms == 0 {
            if !self.all_parked() {
                return Err("boundary mailbox holds messages with no active worms".into());
            }
            for (i, n) in self.nets.iter().enumerate() {
                for c in &n.lanes {
                    if c.in_flight() != 0 {
                        return Err(format!(
                            "shard {i}: lane {:?} has {} bytes in flight with no active worms",
                            c.id(),
                            c.in_flight()
                        ));
                    }
                    if c.has_foreign_in_transit() {
                        return Err(format!(
                            "shard {i}: lane {:?} still holds a foreign span or \
                             expansion run with no active worms",
                            c.id()
                        ));
                    }
                }
                for sw in &n.switches {
                    for (p, inp) in sw.inputs.iter().enumerate() {
                        if !inp.buf.is_empty() {
                            return Err(format!(
                                "shard {i}: switch {:?} input {p} holds {} bytes \
                                 with no active worms",
                                sw.id,
                                inp.buf.len()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Merged per-host output-link utilization (the paper's offered-load
    /// axis). Each adapter's uplink is owned by exactly one shard; the
    /// other shards' copies never carry bytes and contribute zero.
    pub fn mean_host_tx_utilization(&self, elapsed: SimTime) -> f64 {
        let hosts = self.host_owner.len();
        if hosts == 0 || elapsed == 0 {
            return 0.0;
        }
        let total: f64 = self
            .nets
            .iter()
            .map(|n| n.host_tx_utilization_total(elapsed))
            .sum();
        total / hosts as f64
    }

    /// Owning shard of each host (tests and the bench runner use this to
    /// install sources on the right shard).
    pub fn host_owner(&self) -> &[u32] {
        &self.host_owner
    }

    /// Resolve a host's owning shard engine mutably (e.g. to install a
    /// protocol or source after construction).
    pub fn net_of_host_mut(&mut self, host: HostId) -> &mut Network {
        let s = self.host_owner[host.0 as usize] as usize;
        &mut self.nets[s]
    }

    /// Owning shard of each switch.
    pub fn switch_owner_of(&self, sw: SwitchId) -> u32 {
        self.switch_owner[sw.0 as usize]
    }
}

/// One shard's conservative event loop: load neighbor clocks, drain
/// inbound mailboxes, execute everything strictly below the safe bound,
/// publish the new horizon, back off briefly when nothing moved.
fn shard_loop(
    net: &mut Network,
    me: usize,
    clocks: &[ShardClock],
    neighbors: &[(usize, SimTime)],
    inboxes: &[(usize, Mailbox)],
    t_end: SimTime,
) -> RunOutcome {
    net.begin_run(t_end);
    let mut scratch: VecDeque<BoundaryMsg> = VecDeque::new();
    // Spinning only helps if the neighbor whose clock we're watching can
    // actually run concurrently; on a single hardware thread, yield
    // immediately so the peer gets scheduled.
    let spin_limit = if std::thread::available_parallelism().is_ok_and(|n| n.get() > 1) {
        64
    } else {
        0
    };
    let mut idle_spins = 0u32;
    loop {
        // Load in-neighbor horizons first: any message sent before a
        // loaded clock value was published is already in its mailbox (the
        // sender pushes before it publishes; Acquire pairs with the
        // Release store), so after the drain below every boundary event
        // with `ts < safe` is in the wheel.
        let mut safe = u64::MAX;
        for &(x, l) in neighbors {
            let c = clocks[x].0.load(Ordering::Acquire);
            safe = safe.min(c.saturating_add(l));
        }
        let mut progress = false;
        for (_, mb) in inboxes {
            {
                let mut q = mb.lock().unwrap();
                if !q.is_empty() {
                    std::mem::swap(&mut *q, &mut scratch);
                }
            }
            for m in scratch.drain(..) {
                net.ingest_boundary(m);
                progress = true;
            }
        }
        while net.scheduler.peek_time().is_some_and(|pt| pt < safe) {
            let Some((t, ev)) = net.scheduler.pop() else { break };
            progress = true;
            if let Some(out) = net.dispatch(t, ev) {
                // Done (Stop at the deadline). Unblock everyone for good;
                // messages still arriving are beyond t_end and wait in
                // the mailbox for a later run.
                clocks[me].0.store(u64::MAX, Ordering::Release);
                return out;
            }
        }
        // Publish `min(peek, safe)`: monotone (standard CMB null-message
        // horizon), and a sound bound on this shard's earliest possible
        // future send — new work can only come from the wheel (≥ peek) or
        // from not-yet-ingested boundary events (≥ safe).
        let horizon = net.scheduler.peek_time().unwrap_or(u64::MAX).min(safe);
        if clocks[me].0.load(Ordering::Relaxed) < horizon {
            clocks[me].0.store(horizon, Ordering::Release);
        }
        if progress {
            idle_spins = 0;
        } else {
            idle_spins += 1;
            if idle_spins < spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}
