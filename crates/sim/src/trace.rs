//! Per-worm lifecycle tracing.
//!
//! When a [`TraceConfig`] other than [`TraceConfig::Off`] is selected (via
//! [`crate::config::NetworkConfigBuilder::trace`]), the network records a
//! structured timeline of every worm's life: injection, route-byte
//! consumption at each switch, blocking (with the cause: STOP backpressure,
//! a busy crossbar output, a switchcast branch wait), resumption, fragment
//! park/resume (the V2 interrupt/resume scheme), Backward-Reset flushes
//! (V3), reception, refusal, corruption, and application delivery — plus
//! the channel-level STOP/GO timeline.
//!
//! # Determinism guarantee
//!
//! The trace is a pure function of seed and configuration, identical under
//! [`crate::network::SimMode::PerByte`] and
//! [`crate::network::SimMode::SpanBatched`]. Span batching preserves every
//! worm-visible observable, but STOP-watermark crossings depend on
//! arrival-versus-dequeue ordering *within* a byte-time, which batching
//! legitimately permutes — so an attached trace sink disables the span
//! fast path (exactly as switchcast replication does) and both modes step
//! the per-byte reference engine. Events therefore occur at per-byte-exact
//! times; only the processing order within one timestamp is incidental,
//! and [`Trace::to_jsonl`] sorts lines by `(time, line)` so the rendered
//! JSONL is byte-identical across modes (enforced by
//! `tests/span_equivalence.rs`). Tracing costs the span speed-up while a
//! sink is attached; with [`TraceConfig::Off`] the fast path is unchanged.
//!
//! # Cost when disabled
//!
//! With [`TraceConfig::Off`] every emission site reduces to one predicted
//! branch on a cached boolean ([`Trace::enabled`]); nothing is allocated
//! and no event is constructed.

use crate::engine::{HostId, SwitchId};
use crate::link::ChanId;
use crate::time::SimTime;
use crate::worm::{MessageId, WormId};
use serde::{Deserialize, Serialize};

/// Trace sink selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceConfig {
    /// No tracing; emission sites compile to a single branch.
    #[default]
    Off,
    /// Record every event in memory (grows unbounded with the run).
    Memory,
    /// Keep only the most recent `capacity` events (oldest are dropped);
    /// the sink tests and long soak runs use this.
    Ring { capacity: usize },
}

/// Why a worm stopped making progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockCause {
    /// STOP backpressure took effect on the channel the worm was
    /// transmitting on.
    StopBackpressure { ch: ChanId },
    /// The worm's head is queued for a crossbar output another worm owns.
    OutputBusy { switch: SwitchId, out: u8 },
    /// A switchcast replica branch is queued for a busy output (Section 3:
    /// this is where V1 fills IDLEs, V2 interrupts, V3 flushes).
    BranchWait { switch: SwitchId, out: u8 },
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worm entered a transmit queue at `host`.
    WormInjected { worm: WormId, host: HostId },
    /// A switch consumed the worm's head route byte and selected `out`.
    RouteConsumed { worm: WormId, switch: SwitchId, out: u8 },
    /// The worm stopped making progress; see [`BlockCause`].
    WormBlocked { worm: WormId, cause: BlockCause },
    /// The matching resumption (GO received, or the output was granted).
    WormResumed { worm: WormId, cause: BlockCause },
    /// A worm was fully received (checksum good) at `host`.
    WormReceived { worm: WormId, host: HostId },
    /// A worm was refused admission (dropped) at `host`.
    WormRefused { worm: WormId, host: HostId },
    /// A worm failed its checksum at `host` and was discarded.
    WormCorrupt { worm: WormId, host: HostId },
    /// A worm was evicted by a Backward Reset flush (V3); `host` is the
    /// injector that will be told to retransmit.
    WormFlushed { worm: WormId, host: HostId },
    /// A fragment boundary parked a partial reception at `host` with
    /// `body_got` body bytes reassembled so far (V2 interrupt/resume).
    FragmentParked { worm: WormId, host: HostId, body_got: u64 },
    /// A parked reception resumed reassembly at `host`.
    FragmentResumed { worm: WormId, host: HostId, body_got: u64 },
    /// The protocol delivered `msg` to the local host.
    Delivered { msg: MessageId, host: HostId },
    /// A STOP took effect on the transmit side of `ch` (lane `lane` of
    /// its link; 0 on single-lane links).
    StopInForce { ch: ChanId, lane: u8 },
    /// A GO released the transmit side of `ch`.
    GoReceived { ch: ChanId, lane: u8 },
}

impl TraceEvent {
    /// The host this event concerns, if it is host-scoped.
    fn host(&self) -> Option<HostId> {
        match self {
            TraceEvent::WormInjected { host, .. }
            | TraceEvent::WormReceived { host, .. }
            | TraceEvent::WormRefused { host, .. }
            | TraceEvent::WormCorrupt { host, .. }
            | TraceEvent::WormFlushed { host, .. }
            | TraceEvent::FragmentParked { host, .. }
            | TraceEvent::FragmentResumed { host, .. }
            | TraceEvent::Delivered { host, .. } => Some(*host),
            _ => None,
        }
    }
}

/// The trace recorder: a no-op when disabled, an in-memory log or a
/// bounded ring otherwise.
#[derive(Clone, Debug)]
pub struct Trace {
    cfg: TraceConfig,
    enabled: bool,
    events: Vec<(SimTime, TraceEvent)>,
    /// Events discarded by ring overflow.
    dropped: u64,
}

impl Default for Trace {
    /// An unbounded in-memory trace (what tests that poke [`Trace`]
    /// directly want; a network's trace follows its [`TraceConfig`]).
    fn default() -> Self {
        Trace::new(TraceConfig::Memory)
    }
}

impl Trace {
    pub fn new(cfg: TraceConfig) -> Self {
        Trace {
            cfg,
            enabled: !matches!(cfg, TraceConfig::Off),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// True when events should be recorded. Emission sites guard on this;
    /// it is a cached boolean load, so disabled tracing costs one
    /// predictable branch per site.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The sink configuration this recorder was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Events discarded by ring overflow (0 for the other sinks).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn push(&mut self, at: SimTime, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let TraceConfig::Ring { capacity } = self.cfg {
            if self.events.len() >= capacity {
                self.events.remove(0);
                self.dropped += 1;
            }
        }
        self.events.push((at, ev));
    }

    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events concerning a particular host, in time order.
    pub fn for_host(&self, host: HostId) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events
            .iter()
            .filter(move |(_, e)| e.host() == Some(host))
    }

    /// The sequence of message deliveries observed at `host`, in time order.
    /// Used by total-ordering checks.
    pub fn delivery_order(&self, host: HostId) -> Vec<MessageId> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Delivered { msg, host: h } if *h == host => Some(*msg),
                _ => None,
            })
            .collect()
    }

    /// Serialize the trace as JSON Lines, one event per line.
    ///
    /// Lines are sorted stably by `(time, line content)`: emission order
    /// within one timestamp is the only thing that may differ between
    /// [`crate::network::SimMode`]s, so the sorted output is byte-identical
    /// for identical seed and configuration in both modes.
    pub fn to_jsonl(&self) -> String {
        let mut lines: Vec<(SimTime, String)> = self
            .events
            .iter()
            .map(|(t, e)| (*t, jsonl_line(*t, e)))
            .collect();
        lines.sort();
        let mut out = String::with_capacity(lines.iter().map(|(_, l)| l.len() + 1).sum());
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Format one event as a JSONL line. Field order is fixed (`t`, `ev`,
/// then event-specific fields) so the output is reproducible.
pub fn jsonl_line(t: SimTime, ev: &TraceEvent) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{{\"t\":{t},\"ev\":");
    match ev {
        TraceEvent::WormInjected { worm, host } => {
            let _ = write!(s, "\"worm-injected\",\"worm\":{},\"host\":{}", worm.0, host.0);
        }
        TraceEvent::RouteConsumed { worm, switch, out } => {
            let _ = write!(
                s,
                "\"route-consumed\",\"worm\":{},\"switch\":{},\"out\":{}",
                worm.0, switch.0, out
            );
        }
        TraceEvent::WormBlocked { worm, cause } => {
            let _ = write!(s, "\"blocked\",\"worm\":{},", worm.0);
            write_cause(&mut s, cause);
        }
        TraceEvent::WormResumed { worm, cause } => {
            let _ = write!(s, "\"resumed\",\"worm\":{},", worm.0);
            write_cause(&mut s, cause);
        }
        TraceEvent::WormReceived { worm, host } => {
            let _ = write!(s, "\"worm-received\",\"worm\":{},\"host\":{}", worm.0, host.0);
        }
        TraceEvent::WormRefused { worm, host } => {
            let _ = write!(s, "\"worm-refused\",\"worm\":{},\"host\":{}", worm.0, host.0);
        }
        TraceEvent::WormCorrupt { worm, host } => {
            let _ = write!(s, "\"worm-corrupt\",\"worm\":{},\"host\":{}", worm.0, host.0);
        }
        TraceEvent::WormFlushed { worm, host } => {
            let _ = write!(s, "\"worm-flushed\",\"worm\":{},\"host\":{}", worm.0, host.0);
        }
        TraceEvent::FragmentParked { worm, host, body_got } => {
            let _ = write!(
                s,
                "\"fragment-parked\",\"worm\":{},\"host\":{},\"body_got\":{}",
                worm.0, host.0, body_got
            );
        }
        TraceEvent::FragmentResumed { worm, host, body_got } => {
            let _ = write!(
                s,
                "\"fragment-resumed\",\"worm\":{},\"host\":{},\"body_got\":{}",
                worm.0, host.0, body_got
            );
        }
        TraceEvent::Delivered { msg, host } => {
            let _ = write!(s, "\"delivered\",\"msg\":{},\"host\":{}", msg.0, host.0);
        }
        TraceEvent::StopInForce { ch, lane } => {
            let _ = write!(s, "\"stop\",\"ch\":{},\"lane\":{}", ch.0, lane);
        }
        TraceEvent::GoReceived { ch, lane } => {
            let _ = write!(s, "\"go\",\"ch\":{},\"lane\":{}", ch.0, lane);
        }
    }
    s.push('}');
    s
}

fn write_cause(s: &mut String, cause: &BlockCause) {
    use std::fmt::Write;
    match cause {
        BlockCause::StopBackpressure { ch } => {
            let _ = write!(s, "\"cause\":\"stop\",\"ch\":{}", ch.0);
        }
        BlockCause::OutputBusy { switch, out } => {
            let _ = write!(
                s,
                "\"cause\":\"output-busy\",\"switch\":{},\"out\":{}",
                switch.0, out
            );
        }
        BlockCause::BranchWait { switch, out } => {
            let _ = write!(
                s,
                "\"cause\":\"branch-wait\",\"switch\":{},\"out\":{}",
                switch.0, out
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_order_filters_by_host() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::Delivered {
            msg: MessageId(10),
            host: HostId(0),
        });
        t.push(2, TraceEvent::Delivered {
            msg: MessageId(11),
            host: HostId(1),
        });
        t.push(3, TraceEvent::Delivered {
            msg: MessageId(12),
            host: HostId(0),
        });
        assert_eq!(t.delivery_order(HostId(0)), vec![MessageId(10), MessageId(12)]);
        assert_eq!(t.delivery_order(HostId(1)), vec![MessageId(11)]);
    }

    #[test]
    fn for_host_ignores_channel_events() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::StopInForce { ch: ChanId(0), lane: 0 });
        t.push(2, TraceEvent::WormInjected {
            worm: WormId(0),
            host: HostId(3),
        });
        assert_eq!(t.for_host(HostId(3)).count(), 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn off_sink_records_nothing() {
        let mut t = Trace::new(TraceConfig::Off);
        assert!(!t.enabled());
        t.push(1, TraceEvent::StopInForce { ch: ChanId(0), lane: 0 });
        assert!(t.is_empty());
    }

    #[test]
    fn ring_sink_drops_oldest() {
        let mut t = Trace::new(TraceConfig::Ring { capacity: 2 });
        for i in 0..5u32 {
            t.push(i as SimTime, TraceEvent::WormInjected {
                worm: WormId(i),
                host: HostId(0),
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0].0, 3, "oldest surviving event");
        assert_eq!(t.events()[1].0, 4);
    }

    #[test]
    fn jsonl_sorts_within_timestamp() {
        let mut t = Trace::default();
        // Two events at the same time, pushed in "wrong" lexicographic
        // order; to_jsonl must normalize.
        t.push(7, TraceEvent::StopInForce { ch: ChanId(9), lane: 0 });
        t.push(7, TraceEvent::GoReceived { ch: ChanId(1), lane: 0 });
        let a = t.to_jsonl();
        let mut t2 = Trace::default();
        t2.push(7, TraceEvent::GoReceived { ch: ChanId(1), lane: 0 });
        t2.push(7, TraceEvent::StopInForce { ch: ChanId(9), lane: 0 });
        assert_eq!(a, t2.to_jsonl());
        assert_eq!(a.lines().count(), 2);
        assert!(a.starts_with("{\"t\":7,\"ev\":\"go\",\"ch\":1,\"lane\":0}\n"));
    }

    #[test]
    fn jsonl_line_shapes() {
        let line = jsonl_line(3, &TraceEvent::WormBlocked {
            worm: WormId(4),
            cause: BlockCause::OutputBusy {
                switch: SwitchId(2),
                out: 5,
            },
        });
        assert_eq!(
            line,
            "{\"t\":3,\"ev\":\"blocked\",\"worm\":4,\"cause\":\"output-busy\",\"switch\":2,\"out\":5}"
        );
        let line = jsonl_line(9, &TraceEvent::WormResumed {
            worm: WormId(4),
            cause: BlockCause::StopBackpressure { ch: ChanId(1) },
        });
        assert_eq!(
            line,
            "{\"t\":9,\"ev\":\"resumed\",\"worm\":4,\"cause\":\"stop\",\"ch\":1}"
        );
    }
}
