//! Per-worm lifecycle tracing.
//!
//! When a [`TraceConfig`] other than [`TraceConfig::Off`] is selected (via
//! [`crate::config::NetworkConfigBuilder::trace`]), the network records a
//! structured timeline of every worm's life: injection, route-byte
//! consumption at each switch, blocking (with the cause: STOP backpressure,
//! a busy crossbar output, a switchcast branch wait), resumption, fragment
//! park/resume (the V2 interrupt/resume scheme), Backward-Reset flushes
//! (V3), reception, refusal, corruption, and application delivery — plus
//! the channel-level STOP/GO timeline.
//!
//! # Determinism guarantee
//!
//! The thirteen *lifecycle* events above are a pure function of seed and
//! configuration, identical under [`crate::network::SimMode::PerByte`] and
//! [`crate::network::SimMode::SpanBatched`]: spans carry only body (Data)
//! bytes of a single worm, so route parsing, admission, completion and
//! delivery stay per-byte-exact, and the span emission guards
//! (`switch_span_ready` / `switch_span_room`) keep slack occupancy
//! strictly below the STOP watermark with no GO owed for the whole drain
//! window, so the STOP/GO timeline cannot differ either. Under
//! `SpanBatched` the trace *additionally* records span-level engine
//! events ([`TraceEvent::SpanEmitted`] and friends) interleaved with the
//! lifecycle stream. Because the canonical per-byte schema contains no
//! per-data-byte events, expansion back to the canonical JSONL is pure
//! erasure: `wormcast_bench::trace_io::expand_spans` drops the
//! `span-*` lines and what remains is byte-identical to the per-byte
//! trace (enforced by `tests/span_equivalence.rs` and the sharded
//! differential harness). Events occur at per-byte-exact times; only the
//! processing order within one timestamp is incidental, and
//! [`Trace::to_jsonl`] sorts lines by `(time, line)` so the rendered
//! JSONL is reproducible.
//!
//! # Cost when disabled
//!
//! With [`TraceConfig::Off`] every emission site reduces to one predicted
//! branch on a cached boolean ([`Trace::enabled`]); nothing is allocated
//! and no event is constructed.

use crate::engine::{HostId, SwitchId};
use crate::link::ChanId;
use crate::time::SimTime;
use crate::worm::MessageId;
use serde::{Deserialize, Serialize};

/// Trace sink selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceConfig {
    /// No tracing; emission sites compile to a single branch.
    #[default]
    Off,
    /// Record every event in memory (grows unbounded with the run).
    Memory,
    /// Keep only the most recent `capacity` events (oldest are dropped);
    /// the sink tests and long soak runs use this.
    Ring { capacity: usize },
}

/// Why a worm stopped making progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockCause {
    /// STOP backpressure took effect on the channel the worm was
    /// transmitting on.
    StopBackpressure { ch: ChanId },
    /// The worm's head is queued for a crossbar output another worm owns.
    OutputBusy { switch: SwitchId, out: u8 },
    /// A switchcast replica branch is queued for a busy output (Section 3:
    /// this is where V1 fills IDLEs, V2 interrupts, V3 flushes).
    BranchWait { switch: SwitchId, out: u8 },
}

/// One recorded event.
///
/// The `worm` field of worm-scoped events is the worm's *canonical name*
/// `(injecting host << 40) | per-host sequence`, not its dense
/// [`crate::worm::WormId`] arena index: dense ids are per-engine (each
/// shard of a sharded run allocates its own), while the canonical name
/// depends only on the injecting host's own history, so the rendered
/// trace is identical however the run is partitioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worm entered a transmit queue at `host`.
    WormInjected { worm: u64, host: HostId },
    /// A switch consumed the worm's head route byte and selected `out`.
    RouteConsumed { worm: u64, switch: SwitchId, out: u8 },
    /// The worm stopped making progress; see [`BlockCause`].
    WormBlocked { worm: u64, cause: BlockCause },
    /// The matching resumption (GO received, or the output was granted).
    WormResumed { worm: u64, cause: BlockCause },
    /// A worm was fully received (checksum good) at `host`.
    WormReceived { worm: u64, host: HostId },
    /// A worm was refused admission (dropped) at `host`.
    WormRefused { worm: u64, host: HostId },
    /// A worm failed its checksum at `host` and was discarded.
    WormCorrupt { worm: u64, host: HostId },
    /// A worm was evicted by a Backward Reset flush (V3); `host` is the
    /// injector that will be told to retransmit.
    WormFlushed { worm: u64, host: HostId },
    /// A fragment boundary parked a partial reception at `host` with
    /// `body_got` body bytes reassembled so far (V2 interrupt/resume).
    FragmentParked { worm: u64, host: HostId, body_got: u64 },
    /// A parked reception resumed reassembly at `host`.
    FragmentResumed { worm: u64, host: HostId, body_got: u64 },
    /// The protocol delivered `msg` to the local host.
    Delivered { msg: MessageId, host: HostId },
    /// A STOP took effect on the transmit side of `ch` (lane `lane` of
    /// its link; 0 on single-lane links).
    StopInForce { ch: ChanId, lane: u8 },
    /// A GO released the transmit side of `ch`.
    GoReceived { ch: ChanId, lane: u8 },
    /// Span-batched engine only: `len` body bytes of `worm` left the
    /// transmit side of `ch` as one batched span. Erased by the
    /// per-byte expander.
    SpanEmitted { worm: u64, ch: ChanId, lane: u8, len: u64 },
    /// Span-batched engine only: a STOP (or a receive-side watermark on a
    /// cut link) cut `revoked` not-yet-wire-committed bytes off the
    /// newest in-flight span on `ch`. Erased by the per-byte expander.
    SpanTruncated { worm: u64, ch: ChanId, lane: u8, revoked: u64 },
    /// Span-batched engine only: `len` body bytes of `worm` were admitted
    /// in one batch at the receive side of `ch`. Erased by the per-byte
    /// expander.
    SpanDelivered { worm: u64, ch: ChanId, lane: u8, len: u64 },
    /// Span-batched engine only: a `SpanNack` control symbol arrived on
    /// the transmit side of `ch` (receive shard of a cut link rejected an
    /// optimistic span), standing sender optimism down. Erased by the
    /// per-byte expander.
    SpanNack { ch: ChanId, lane: u8 },
    /// Span-batched engine only: a `SpanCredit` control symbol arrived on
    /// the transmit side of `ch`, restoring sender optimism. Erased by
    /// the per-byte expander.
    SpanCredit { ch: ChanId, lane: u8 },
}

impl TraceEvent {
    /// The host this event concerns, if it is host-scoped.
    fn host(&self) -> Option<HostId> {
        match self {
            TraceEvent::WormInjected { host, .. }
            | TraceEvent::WormReceived { host, .. }
            | TraceEvent::WormRefused { host, .. }
            | TraceEvent::WormCorrupt { host, .. }
            | TraceEvent::WormFlushed { host, .. }
            | TraceEvent::FragmentParked { host, .. }
            | TraceEvent::FragmentResumed { host, .. }
            | TraceEvent::Delivered { host, .. } => Some(*host),
            _ => None,
        }
    }
}

/// The trace recorder: a no-op when disabled, an in-memory log or a
/// bounded ring otherwise.
#[derive(Clone, Debug)]
pub struct Trace {
    cfg: TraceConfig,
    enabled: bool,
    events: Vec<(SimTime, TraceEvent)>,
    /// Events discarded by ring overflow.
    dropped: u64,
}

impl Default for Trace {
    /// An unbounded in-memory trace (what tests that poke [`Trace`]
    /// directly want; a network's trace follows its [`TraceConfig`]).
    fn default() -> Self {
        Trace::new(TraceConfig::Memory)
    }
}

impl Trace {
    pub fn new(cfg: TraceConfig) -> Self {
        Trace {
            cfg,
            enabled: !matches!(cfg, TraceConfig::Off),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// True when events should be recorded. Emission sites guard on this;
    /// it is a cached boolean load, so disabled tracing costs one
    /// predictable branch per site.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The sink configuration this recorder was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Events discarded by ring overflow (0 for the other sinks).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn push(&mut self, at: SimTime, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let TraceConfig::Ring { capacity } = self.cfg {
            if self.events.len() >= capacity {
                self.events.remove(0);
                self.dropped += 1;
            }
        }
        self.events.push((at, ev));
    }

    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Append another recorder's log verbatim (sharded-run merging):
    /// events concatenate — `to_jsonl`'s canonical sort orders them —
    /// and ring-drop counts sum. Ring capacity is deliberately NOT
    /// re-applied here; a ring budget is per engine, so a merged
    /// sharded trace may hold up to `shards × capacity` events.
    pub(crate) fn absorb(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
        self.dropped += other.dropped;
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events concerning a particular host, in time order.
    pub fn for_host(&self, host: HostId) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events
            .iter()
            .filter(move |(_, e)| e.host() == Some(host))
    }

    /// The sequence of message deliveries observed at `host`, in time order.
    /// Used by total-ordering checks.
    pub fn delivery_order(&self, host: HostId) -> Vec<MessageId> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Delivered { msg, host: h } if *h == host => Some(*msg),
                _ => None,
            })
            .collect()
    }

    /// Serialize the trace as JSON Lines, one event per line.
    ///
    /// Lines are sorted stably by `(time, line content)`: emission order
    /// within one timestamp is the only thing that may differ between
    /// [`crate::network::SimMode`]s, so the sorted output is byte-identical
    /// for identical seed and configuration in both modes. Thin wrapper
    /// over [`Trace::write_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = Vec::new();
        self.write_jsonl(&mut out)
            .expect("writing to a Vec<u8> cannot fail");
        String::from_utf8(out).expect("JSONL lines are ASCII")
    }

    /// Stream the sorted JSONL straight to `w`, rendering every event into
    /// one shared arena (a single allocation amortized over the whole
    /// trace) instead of one `String` per event. Same output as
    /// [`Trace::to_jsonl`].
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut arena = String::with_capacity(self.events.len() * 48);
        let mut index: Vec<(SimTime, usize, usize)> = Vec::with_capacity(self.events.len());
        for (t, e) in &self.events {
            let start = arena.len();
            render_line(&mut arena, *t, e);
            index.push((*t, start, arena.len()));
        }
        index.sort_by(|a, b| (a.0, &arena[a.1..a.2]).cmp(&(b.0, &arena[b.1..b.2])));
        for (_, start, end) in index {
            w.write_all(&arena.as_bytes()[start..end])?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// Format one event as a JSONL line. Thin wrapper over [`render_line`].
pub fn jsonl_line(t: SimTime, ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(64);
    render_line(&mut s, t, ev);
    s
}

/// Append one event as a JSONL line onto `s` (no trailing newline). Field
/// order is fixed (`t`, `ev`, then event-specific fields) so the output is
/// reproducible; appending into a caller-owned buffer lets serialization
/// reuse one allocation across events.
pub fn render_line(s: &mut String, t: SimTime, ev: &TraceEvent) {
    use std::fmt::Write;
    let _ = write!(s, "{{\"t\":{t},\"ev\":");
    match ev {
        TraceEvent::WormInjected { worm, host } => {
            let _ = write!(s, "\"worm-injected\",\"worm\":{},\"host\":{}", worm, host.0);
        }
        TraceEvent::RouteConsumed { worm, switch, out } => {
            let _ = write!(
                s,
                "\"route-consumed\",\"worm\":{},\"switch\":{},\"out\":{}",
                worm, switch.0, out
            );
        }
        TraceEvent::WormBlocked { worm, cause } => {
            let _ = write!(s, "\"blocked\",\"worm\":{},", worm);
            write_cause(s, cause);
        }
        TraceEvent::WormResumed { worm, cause } => {
            let _ = write!(s, "\"resumed\",\"worm\":{},", worm);
            write_cause(s, cause);
        }
        TraceEvent::WormReceived { worm, host } => {
            let _ = write!(s, "\"worm-received\",\"worm\":{},\"host\":{}", worm, host.0);
        }
        TraceEvent::WormRefused { worm, host } => {
            let _ = write!(s, "\"worm-refused\",\"worm\":{},\"host\":{}", worm, host.0);
        }
        TraceEvent::WormCorrupt { worm, host } => {
            let _ = write!(s, "\"worm-corrupt\",\"worm\":{},\"host\":{}", worm, host.0);
        }
        TraceEvent::WormFlushed { worm, host } => {
            let _ = write!(s, "\"worm-flushed\",\"worm\":{},\"host\":{}", worm, host.0);
        }
        TraceEvent::FragmentParked { worm, host, body_got } => {
            let _ = write!(
                s,
                "\"fragment-parked\",\"worm\":{},\"host\":{},\"body_got\":{}",
                worm, host.0, body_got
            );
        }
        TraceEvent::FragmentResumed { worm, host, body_got } => {
            let _ = write!(
                s,
                "\"fragment-resumed\",\"worm\":{},\"host\":{},\"body_got\":{}",
                worm, host.0, body_got
            );
        }
        TraceEvent::Delivered { msg, host } => {
            let _ = write!(s, "\"delivered\",\"msg\":{},\"host\":{}", msg.0, host.0);
        }
        TraceEvent::StopInForce { ch, lane } => {
            let _ = write!(s, "\"stop\",\"ch\":{},\"lane\":{}", ch.0, lane);
        }
        TraceEvent::GoReceived { ch, lane } => {
            let _ = write!(s, "\"go\",\"ch\":{},\"lane\":{}", ch.0, lane);
        }
        TraceEvent::SpanEmitted { worm, ch, lane, len } => {
            let _ = write!(
                s,
                "\"span-emitted\",\"worm\":{},\"ch\":{},\"lane\":{},\"len\":{}",
                worm, ch.0, lane, len
            );
        }
        TraceEvent::SpanTruncated { worm, ch, lane, revoked } => {
            let _ = write!(
                s,
                "\"span-truncated\",\"worm\":{},\"ch\":{},\"lane\":{},\"revoked\":{}",
                worm, ch.0, lane, revoked
            );
        }
        TraceEvent::SpanDelivered { worm, ch, lane, len } => {
            let _ = write!(
                s,
                "\"span-delivered\",\"worm\":{},\"ch\":{},\"lane\":{},\"len\":{}",
                worm, ch.0, lane, len
            );
        }
        TraceEvent::SpanNack { ch, lane } => {
            let _ = write!(s, "\"span-nack\",\"ch\":{},\"lane\":{}", ch.0, lane);
        }
        TraceEvent::SpanCredit { ch, lane } => {
            let _ = write!(s, "\"span-credit\",\"ch\":{},\"lane\":{}", ch.0, lane);
        }
    }
    s.push('}');
}

fn write_cause(s: &mut String, cause: &BlockCause) {
    use std::fmt::Write;
    match cause {
        BlockCause::StopBackpressure { ch } => {
            let _ = write!(s, "\"cause\":\"stop\",\"ch\":{}", ch.0);
        }
        BlockCause::OutputBusy { switch, out } => {
            let _ = write!(
                s,
                "\"cause\":\"output-busy\",\"switch\":{},\"out\":{}",
                switch.0, out
            );
        }
        BlockCause::BranchWait { switch, out } => {
            let _ = write!(
                s,
                "\"cause\":\"branch-wait\",\"switch\":{},\"out\":{}",
                switch.0, out
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_order_filters_by_host() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::Delivered {
            msg: MessageId(10),
            host: HostId(0),
        });
        t.push(2, TraceEvent::Delivered {
            msg: MessageId(11),
            host: HostId(1),
        });
        t.push(3, TraceEvent::Delivered {
            msg: MessageId(12),
            host: HostId(0),
        });
        assert_eq!(t.delivery_order(HostId(0)), vec![MessageId(10), MessageId(12)]);
        assert_eq!(t.delivery_order(HostId(1)), vec![MessageId(11)]);
    }

    #[test]
    fn for_host_ignores_channel_events() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::StopInForce { ch: ChanId(0), lane: 0 });
        t.push(2, TraceEvent::WormInjected {
            worm: 0,
            host: HostId(3),
        });
        assert_eq!(t.for_host(HostId(3)).count(), 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn off_sink_records_nothing() {
        let mut t = Trace::new(TraceConfig::Off);
        assert!(!t.enabled());
        t.push(1, TraceEvent::StopInForce { ch: ChanId(0), lane: 0 });
        assert!(t.is_empty());
    }

    #[test]
    fn ring_sink_drops_oldest() {
        let mut t = Trace::new(TraceConfig::Ring { capacity: 2 });
        for i in 0..5u32 {
            t.push(i as SimTime, TraceEvent::WormInjected {
                worm: u64::from(i),
                host: HostId(0),
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0].0, 3, "oldest surviving event");
        assert_eq!(t.events()[1].0, 4);
    }

    #[test]
    fn jsonl_sorts_within_timestamp() {
        let mut t = Trace::default();
        // Two events at the same time, pushed in "wrong" lexicographic
        // order; to_jsonl must normalize.
        t.push(7, TraceEvent::StopInForce { ch: ChanId(9), lane: 0 });
        t.push(7, TraceEvent::GoReceived { ch: ChanId(1), lane: 0 });
        let a = t.to_jsonl();
        let mut t2 = Trace::default();
        t2.push(7, TraceEvent::GoReceived { ch: ChanId(1), lane: 0 });
        t2.push(7, TraceEvent::StopInForce { ch: ChanId(9), lane: 0 });
        assert_eq!(a, t2.to_jsonl());
        assert_eq!(a.lines().count(), 2);
        assert!(a.starts_with("{\"t\":7,\"ev\":\"go\",\"ch\":1,\"lane\":0}\n"));
    }

    #[test]
    fn jsonl_line_shapes() {
        let line = jsonl_line(3, &TraceEvent::WormBlocked {
            worm: 4,
            cause: BlockCause::OutputBusy {
                switch: SwitchId(2),
                out: 5,
            },
        });
        assert_eq!(
            line,
            "{\"t\":3,\"ev\":\"blocked\",\"worm\":4,\"cause\":\"output-busy\",\"switch\":2,\"out\":5}"
        );
        let line = jsonl_line(9, &TraceEvent::WormResumed {
            worm: 4,
            cause: BlockCause::StopBackpressure { ch: ChanId(1) },
        });
        assert_eq!(
            line,
            "{\"t\":9,\"ev\":\"resumed\",\"worm\":4,\"cause\":\"stop\",\"ch\":1}"
        );
    }

    #[test]
    fn span_line_shapes() {
        assert_eq!(
            jsonl_line(5, &TraceEvent::SpanEmitted {
                worm: 7,
                ch: ChanId(3),
                lane: 1,
                len: 40,
            }),
            "{\"t\":5,\"ev\":\"span-emitted\",\"worm\":7,\"ch\":3,\"lane\":1,\"len\":40}"
        );
        assert_eq!(
            jsonl_line(6, &TraceEvent::SpanTruncated {
                worm: 7,
                ch: ChanId(3),
                lane: 0,
                revoked: 12,
            }),
            "{\"t\":6,\"ev\":\"span-truncated\",\"worm\":7,\"ch\":3,\"lane\":0,\"revoked\":12}"
        );
        assert_eq!(
            jsonl_line(8, &TraceEvent::SpanDelivered {
                worm: 7,
                ch: ChanId(3),
                lane: 0,
                len: 28,
            }),
            "{\"t\":8,\"ev\":\"span-delivered\",\"worm\":7,\"ch\":3,\"lane\":0,\"len\":28}"
        );
        assert_eq!(
            jsonl_line(9, &TraceEvent::SpanNack { ch: ChanId(2), lane: 0 }),
            "{\"t\":9,\"ev\":\"span-nack\",\"ch\":2,\"lane\":0}"
        );
        assert_eq!(
            jsonl_line(9, &TraceEvent::SpanCredit { ch: ChanId(2), lane: 1 }),
            "{\"t\":9,\"ev\":\"span-credit\",\"ch\":2,\"lane\":1}"
        );
    }

    #[test]
    fn write_jsonl_matches_to_jsonl() {
        let mut t = Trace::default();
        t.push(7, TraceEvent::StopInForce { ch: ChanId(9), lane: 0 });
        t.push(3, TraceEvent::WormInjected {
            worm: 1,
            host: HostId(0),
        });
        t.push(7, TraceEvent::GoReceived { ch: ChanId(1), lane: 0 });
        t.push(7, TraceEvent::SpanEmitted {
            worm: 1,
            ch: ChanId(9),
            lane: 0,
            len: 16,
        });
        let mut streamed = Vec::new();
        t.write_jsonl(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), t.to_jsonl());
        assert_eq!(t.to_jsonl().lines().count(), 4);
    }
}
