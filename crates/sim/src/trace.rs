//! Optional event tracing.
//!
//! When [`crate::NetworkConfig::trace`] is set, the network records a
//! timeline of protocol-visible events. Examples use it to print per-hop
//! timelines; tests use it to assert ordering properties (e.g. total
//! ordering of multicast deliveries).

use crate::engine::HostId;
use crate::link::ChanId;
use crate::time::SimTime;
use crate::worm::{MessageId, WormId};

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worm entered a transmit queue at `host`.
    WormInjected { worm: WormId, host: HostId },
    /// A worm was fully received (checksum good) at `host`.
    WormReceived { worm: WormId, host: HostId },
    /// A worm was refused admission (dropped) at `host`.
    WormRefused { worm: WormId, host: HostId },
    /// The protocol delivered `msg` to the local host.
    Delivered { msg: MessageId, host: HostId },
    /// A STOP took effect on the transmit side of `ch`.
    StopInForce { ch: ChanId },
    /// A GO released the transmit side of `ch`.
    GoReceived { ch: ChanId },
}

/// An in-memory trace buffer.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    pub fn push(&mut self, at: SimTime, ev: TraceEvent) {
        self.events.push((at, ev));
    }

    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events concerning a particular host, in time order.
    pub fn for_host(&self, host: HostId) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter().filter(move |(_, e)| match e {
            TraceEvent::WormInjected { host: h, .. }
            | TraceEvent::WormReceived { host: h, .. }
            | TraceEvent::WormRefused { host: h, .. }
            | TraceEvent::Delivered { host: h, .. } => *h == host,
            _ => false,
        })
    }

    /// The sequence of message deliveries observed at `host`, in time order.
    /// Used by total-ordering checks.
    pub fn delivery_order(&self, host: HostId) -> Vec<MessageId> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Delivered { msg, host: h } if *h == host => Some(*msg),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_order_filters_by_host() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::Delivered {
            msg: MessageId(10),
            host: HostId(0),
        });
        t.push(2, TraceEvent::Delivered {
            msg: MessageId(11),
            host: HostId(1),
        });
        t.push(3, TraceEvent::Delivered {
            msg: MessageId(12),
            host: HostId(0),
        });
        assert_eq!(t.delivery_order(HostId(0)), vec![MessageId(10), MessageId(12)]);
        assert_eq!(t.delivery_order(HostId(1)), vec![MessageId(11)]);
    }

    #[test]
    fn for_host_ignores_channel_events() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::StopInForce { ch: ChanId(0) });
        t.push(2, TraceEvent::WormInjected {
            worm: WormId(0),
            host: HostId(3),
        });
        assert_eq!(t.for_host(HostId(3)).count(), 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
