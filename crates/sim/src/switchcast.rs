//! Switch-level multicast (Section 3 of the paper).
//!
//! Replicating a worm inside the crossbar needs three new mechanisms:
//!
//! 1. **A linearized tree source route** (the paper's Figure 2). A unicast
//!    route is a list of port bytes; a multicast route is a *tree* of them.
//!    This module implements an explicit, unambiguous variant of the paper's
//!    `port / pointer / end-marker` encoding: every branch is
//!    `Port(p) Ptr(n) <n subtree symbols>`, and every directive ends with an
//!    `End` marker. (The paper's sketch omits the pointer on the last
//!    branch; we always carry it, trading one byte per directive for a
//!    parser with no lookahead — a divergence documented in DESIGN.md.)
//! 2. **Backpressure aggregation** over the branches of the tree: a byte
//!    advances only when *every* branch can take it; stalled progress is
//!    covered on non-blocked branches by IDLE fills (mode
//!    [`SwitchcastMode::RestrictedIdle`]), by interrupting and later
//!    resuming with re-stamped headers ([`SwitchcastMode::RootedInterrupt`]),
//!    or IDLE fills plus flushing of blocked unicasts
//!    ([`SwitchcastMode::IdleFlush`]).
//! 3. **Deadlock avoidance** rules, which are the modes' reason to exist.
//!
//! The replication state machine lives in [`ReplicaState`]; the `Network`
//! methods at the bottom are invoked from the generic switch input logic
//! when it sees a [`crate::worm::WormKind::SwitchMulticast`] worm.

use crate::worm::{RouteSym, WormId};
use serde::{Deserialize, Serialize};

/// Which Section-3 scheme the switches run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SwitchcastMode {
    /// No switch-level multicast: `SwitchMulticast` worms are illegal.
    Off,
    /// Scheme 1: all worms restricted to the up/down spanning tree; blocked
    /// multicasts fill their non-blocked branches with IDLEs.
    RestrictedIdle,
    /// Scheme 2: multicasts serialized through the up/down root; blocked
    /// multicasts interrupt non-blocked branches (releasing the paths) and
    /// resume as fragments that destinations reassemble.
    RootedInterrupt,
    /// Scheme 3: like `RestrictedIdle`, but a unicast blocked behind a port
    /// that has been transmitting IDLEs for a while is flushed with a
    /// Backward Reset and retransmitted by its source.
    IdleFlush,
}

// ---------------------------------------------------------------------------
// Tree route encoding (Figure 2).
// ---------------------------------------------------------------------------

/// Where a branch leads after its output port.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Subroute {
    /// The port leads directly to a host: nothing to stamp.
    Host,
    /// The port leads to another switch with its own directive.
    Next(Directive),
}

/// The multicast routing directive consumed by one switch: an ordered list
/// of (output port, subtree route) branches.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Directive {
    pub branches: Vec<(u8, Subroute)>,
}

/// Errors from encoding or decoding tree routes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RouteCodeError {
    /// A subtree's encoding exceeds the 255-byte pointer range.
    SubtreeTooLong { len: usize },
    /// The directive has no branches (a multicast to nobody).
    EmptyDirective,
    /// Decoder: unexpected symbol or truncated input.
    Malformed { at: usize },
}

impl std::fmt::Display for RouteCodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteCodeError::SubtreeTooLong { len } => {
                write!(f, "subtree encoding of {len} bytes exceeds pointer range")
            }
            RouteCodeError::EmptyDirective => write!(f, "directive with no branches"),
            RouteCodeError::Malformed { at } => write!(f, "malformed route at symbol {at}"),
        }
    }
}

impl std::error::Error for RouteCodeError {}

/// Encode a directive tree into the linear route representation.
///
/// ```
/// use wormcast_sim::switchcast::{encode, decode, Directive, Subroute};
/// // Replicate to port 3 (a host) and port 1 (a switch that forwards to
/// // its port 5).
/// let d = Directive { branches: vec![
///     (3, Subroute::Host),
///     (1, Subroute::Next(Directive { branches: vec![(5, Subroute::Host)] })),
/// ]};
/// let wire = encode(&d).unwrap();
/// let (back, used) = decode(&wire).unwrap();
/// assert_eq!(back, d);
/// assert_eq!(used, wire.len());
/// ```
pub fn encode(d: &Directive) -> Result<Vec<RouteSym>, RouteCodeError> {
    if d.branches.is_empty() {
        return Err(RouteCodeError::EmptyDirective);
    }
    let mut out = Vec::new();
    for (port, sub) in &d.branches {
        out.push(RouteSym::Port(*port));
        let sub_syms = match sub {
            Subroute::Host => Vec::new(),
            Subroute::Next(inner) => encode(inner)?,
        };
        if sub_syms.len() > u8::MAX as usize {
            return Err(RouteCodeError::SubtreeTooLong {
                len: sub_syms.len(),
            });
        }
        out.push(RouteSym::Ptr(sub_syms.len() as u8));
        out.extend(sub_syms);
    }
    out.push(RouteSym::End);
    Ok(out)
}

/// Decode one directive from the front of `syms`, returning it and the
/// number of symbols consumed.
pub fn decode(syms: &[RouteSym]) -> Result<(Directive, usize), RouteCodeError> {
    let mut i = 0;
    let mut branches = Vec::new();
    loop {
        match syms.get(i) {
            Some(RouteSym::End) => {
                i += 1;
                break;
            }
            Some(RouteSym::Port(p)) => {
                let port = *p;
                i += 1;
                let Some(RouteSym::Ptr(n)) = syms.get(i) else {
                    return Err(RouteCodeError::Malformed { at: i });
                };
                let n = *n as usize;
                i += 1;
                if syms.len() < i + n {
                    return Err(RouteCodeError::Malformed { at: i });
                }
                let sub = if n == 0 {
                    Subroute::Host
                } else {
                    let (inner, used) = decode(&syms[i..i + n])?;
                    if used != n {
                        return Err(RouteCodeError::Malformed { at: i + used });
                    }
                    Subroute::Next(inner)
                };
                i += n;
                branches.push((port, sub));
            }
            _ => return Err(RouteCodeError::Malformed { at: i }),
        }
    }
    if branches.is_empty() {
        return Err(RouteCodeError::EmptyDirective);
    }
    Ok((Directive { branches }, i))
}

/// Build a directive tree by merging unicast port-paths that all start at
/// the same switch. Paths sharing a port prefix share the corresponding
/// branch (they traverse the same switches). Each path's final port is the
/// hop onto its destination host.
pub fn merge_paths(paths: &[&[u8]]) -> Result<Directive, RouteCodeError> {
    if paths.is_empty() || paths.iter().any(|p| p.is_empty()) {
        return Err(RouteCodeError::EmptyDirective);
    }
    // Group by first port, preserving first-seen order (determinism).
    let mut order: Vec<u8> = Vec::new();
    let mut groups: Vec<Vec<&[u8]>> = Vec::new();
    for p in paths {
        let head = p[0];
        match order.iter().position(|&o| o == head) {
            Some(ix) => groups[ix].push(p),
            None => {
                order.push(head);
                groups.push(vec![p]);
            }
        }
    }
    let mut branches = Vec::new();
    for (head, group) in order.into_iter().zip(groups) {
        let rests: Vec<&[u8]> = group
            .iter()
            .map(|p| &p[1..])
            .filter(|r| !r.is_empty())
            .collect();
        let sub = if rests.is_empty() {
            Subroute::Host
        } else {
            debug_assert_eq!(
                rests.len(),
                group.len(),
                "a path ending at a switch another path continues through \
                 means a destination host *is* a switch — invalid input"
            );
            Subroute::Next(merge_paths(&rests)?)
        };
        branches.push((head, sub));
    }
    Ok(Directive { branches })
}

impl Directive {
    /// Number of leaf (host) ports reached by this directive.
    pub fn num_leaves(&self) -> usize {
        self.branches
            .iter()
            .map(|(_, s)| match s {
                Subroute::Host => 1,
                Subroute::Next(d) => d.num_leaves(),
            })
            .sum()
    }

    /// Depth of the tree in switches.
    pub fn depth(&self) -> usize {
        1 + self
            .branches
            .iter()
            .map(|(_, s)| match s {
                Subroute::Host => 0,
                Subroute::Next(d) => d.depth(),
            })
            .max()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Replication state (driven from the switch input logic).
// ---------------------------------------------------------------------------

/// Per-branch progress of a replicating multicast worm (one fragment's
/// worth in the RootedInterrupt scheme — each resume restarts the prefix).
#[derive(Clone, Debug)]
pub struct BranchState {
    /// Output port of this branch.
    pub out: u8,
    /// Route symbols to stamp at the head of this branch('s fragment).
    pub prefix: Vec<RouteSym>,
    pub prefix_sent: usize,
    /// Crossbar grant obtained for `out`.
    pub granted: bool,
    /// A request for `out` is queued or granted.
    pub requested: bool,
    /// Absolute body-byte cursor (bytes of the worm body sent so far).
    pub body_sent: u64,
    pub tail_sent: bool,
    /// RootedInterrupt: this branch released its path mid-worm and will
    /// resume as a fresh fragment when data flows again.
    pub interrupted: bool,
    /// Body cursor at the start of the current fragment (guards against
    /// zero-length fragments).
    pub frag_base: u64,
}

/// What a replicating input is doing.
#[derive(Clone, Debug)]
pub enum ReplicaPhase {
    /// Collecting the directive symbols from the buffer front.
    Parsing { collected: Vec<RouteSym> },
    /// Replicating body bytes to the branches.
    Active,
}

/// Replication state attached to a switch input port while a
/// `SwitchMulticast` worm passes through it.
#[derive(Clone, Debug)]
pub struct ReplicaState {
    pub worm: WormId,
    pub mode: SwitchcastMode,
    pub phase: ReplicaPhase,
    pub branches: Vec<BranchState>,
    /// Body bytes already popped from the slack buffer (consumed by every
    /// branch). `buf[i]` holds absolute body byte `body_released + i`.
    pub body_released: u64,
}

impl ReplicaState {
    /// Absolute index one past the last body/tail byte currently available
    /// in `buf` for this worm.
    fn available(&self, buf: &std::collections::VecDeque<WireByte>) -> u64 {
        let mut n = 0u64;
        for b in buf.iter() {
            if b.worm != self.worm {
                break;
            }
            n += 1;
        }
        self.body_released + n
    }

    /// Smallest unsent body index across branches that still need bytes.
    fn min_cursor(&self) -> u64 {
        self.branches
            .iter()
            .map(|b| if b.tail_sent { u64::MAX } else { b.body_sent })
            .min()
            .unwrap_or(u64::MAX)
    }
}

use crate::engine::SwitchId;
use crate::link::NodeRef;
use crate::network::Network;
use crate::switch::InState;
use crate::worm::{ByteKind, WireByte, WormKind};

impl Network {
    /// Whether the span-batched fast path may run at all. Switch-level
    /// multicast makes byte-level interleaving observable (replication
    /// branch points, IDLE fill, Backward Reset flushes), so any mode other
    /// than `Off` forces per-byte transmission everywhere.
    pub(crate) fn switchcast_allows_spans(&self) -> bool {
        matches!(self.cfg.switchcast, SwitchcastMode::Off)
    }

    /// A `SwitchMulticast` worm's head reached the front of an idle input:
    /// decide between a plain transit hop (single leading port byte) and a
    /// replication directive, and set up the state machine.
    ///
    /// Returns without consuming anything when more symbols must arrive
    /// before the decision can be made.
    pub(crate) fn switchcast_begin_parse(&mut self, sw: SwitchId, port: u8) {
        enum Begin {
            Wait,
            PlainHop { worm: crate::worm::WormId, out: u8 },
            Directive { worm: crate::worm::WormId },
            Broadcast { worm: crate::worm::WormId },
        }
        let decision = {
            let inp = &self.switches[sw.0 as usize].inputs[port as usize];
            match inp.buf.front().map(|b| (b.worm, b.kind)) {
                Some((worm, ByteKind::Route(RouteSym::Broadcast))) => Begin::Broadcast { worm },
                Some((worm, ByteKind::Route(RouteSym::Port(p)))) => {
                    // Need the second symbol to disambiguate directive
                    // (Port Ptr ...) from transit hop (Port <rest>).
                    match inp.buf.get(1) {
                        None => Begin::Wait,
                        Some(second) if second.worm != worm => {
                            // Worm of exactly one byte cannot happen (there
                            // is always a body); treat as transit.
                            Begin::PlainHop { worm, out: p }
                        }
                        Some(second) => match second.kind {
                            ByteKind::Route(RouteSym::Ptr(_)) => Begin::Directive { worm },
                            _ => Begin::PlainHop { worm, out: p },
                        },
                    }
                }
                Some((_, other)) => {
                    unreachable!("switchcast parse saw non-route head {other:?}")
                }
                None => Begin::Wait,
            }
        };
        match decision {
            Begin::Wait => {}
            Begin::PlainHop { worm, out } => {
                {
                    let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
                    inp.buf.pop_front();
                    inp.state = InState::Requesting { worm, out };
                }
                self.after_slack_dequeue(sw, port);
                self.switch_request_output(sw, out, port);
            }
            Begin::Directive { worm } => {
                let mode = self.cfg.switchcast;
                assert!(
                    mode != SwitchcastMode::Off,
                    "switch-level multicast worm at {sw:?} with switchcast disabled"
                );
                self.switches[sw.0 as usize].inputs[port as usize].state =
                    InState::Replicating(Box::new(ReplicaState {
                        worm,
                        mode,
                        phase: ReplicaPhase::Parsing {
                            collected: Vec::new(),
                        },
                        branches: Vec::new(),
                        body_released: 0,
                    }));
                self.switchcast_advance(sw, port);
            }
            Begin::Broadcast { worm } => {
                let mode = self.cfg.switchcast;
                assert!(
                    mode != SwitchcastMode::Off,
                    "broadcast worm at {sw:?} with switchcast disabled"
                );
                assert!(
                    !self.broadcast_ports.is_empty(),
                    "broadcast worm without set_broadcast_ports()"
                );
                // Consume the broadcast byte and replicate to every
                // down-tree link and host port. The arrival port is NOT
                // excluded: at the root it points back into the subtree the
                // worm climbed out of (which must be flooded too), and on
                // the way down it is the parent link, which is never in the
                // broadcast port set. The originator therefore receives its
                // own broadcast and filters it — uniform sink accounting.
                {
                    let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
                    inp.buf.pop_front();
                }
                self.after_slack_dequeue(sw, port);
                let outs: Vec<u8> = self.broadcast_ports[sw.0 as usize].to_vec();
                let branches: Vec<BranchState> = outs
                    .iter()
                    .map(|&o| {
                        // Stamp the broadcast address again on branches that
                        // lead to another switch; host branches get nothing.
                        let to_switch = self.switches[sw.0 as usize].outputs[o as usize]
                            .chan_out
                            .map(|ch| {
                                matches!(self.lanes[ch.0 as usize].dst().node, NodeRef::Switch(_))
                            })
                            .unwrap_or(false);
                        BranchState {
                            out: o,
                            prefix: if to_switch {
                                vec![RouteSym::Broadcast]
                            } else {
                                Vec::new()
                            },
                            prefix_sent: 0,
                            granted: false,
                            requested: false,
                            body_sent: 0,
                            tail_sent: false,
                            interrupted: false,
                            frag_base: 0,
                        }
                    })
                    .collect();
                self.switches[sw.0 as usize].inputs[port as usize].state =
                    InState::Replicating(Box::new(ReplicaState {
                        worm,
                        mode,
                        phase: ReplicaPhase::Active,
                        branches,
                        body_released: 0,
                    }));
                for o in outs {
                    self.switchcast_request(sw, o, port);
                }
            }
        }
    }

    /// Queue a branch request for output `out` (marks it requested).
    fn switchcast_request(&mut self, sw: SwitchId, out: u8, in_port: u8) {
        if let InState::Replicating(rep) =
            &mut self.switches[sw.0 as usize].inputs[in_port as usize].state
        {
            if let Some(b) = rep.branches.iter_mut().find(|b| b.out == out) {
                b.requested = true;
            }
        }
        self.switch_request_output(sw, out, in_port);
    }

    /// Drive a replicating input: finish directive parsing, kick granted
    /// branches when new data arrives, and resume interrupted branches.
    pub(crate) fn switchcast_advance(&mut self, sw: SwitchId, port: u8) {
        // -- parsing phase ---------------------------------------------------
        loop {
            let (consume, complete) = {
                let inp = &self.switches[sw.0 as usize].inputs[port as usize];
                let InState::Replicating(rep) = &inp.state else {
                    return;
                };
                let ReplicaPhase::Parsing { collected } = &rep.phase else {
                    break;
                };
                match inp.buf.front() {
                    Some(b) if b.worm == rep.worm => match b.kind {
                        ByteKind::Route(sym) => {
                            let mut c = collected.clone();
                            c.push(sym);
                            let complete = matches!(decode(&c), Ok((_, used)) if used == c.len());
                            (Some(sym), complete)
                        }
                        other => unreachable!(
                            "non-route byte {other:?} while parsing a directive at {sw:?}:{port}"
                        ),
                    },
                    _ => return, // wait for more symbols
                }
            };
            if let Some(sym) = consume {
                {
                    let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
                    inp.buf.pop_front();
                    if let InState::Replicating(rep) = &mut inp.state {
                        if let ReplicaPhase::Parsing { collected } = &mut rep.phase {
                            collected.push(sym);
                        }
                    }
                }
                self.after_slack_dequeue(sw, port);
                if complete {
                    self.switchcast_activate(sw, port);
                    break;
                }
            }
        }
        // -- active phase ----------------------------------------------------
        let kicks = {
            let inp = &self.switches[sw.0 as usize].inputs[port as usize];
            let InState::Replicating(rep) = &inp.state else {
                return;
            };
            if !matches!(rep.phase, ReplicaPhase::Active) {
                return;
            }
            let mut kicks = Vec::new();
            for b in &rep.branches {
                if !b.tail_sent && !b.interrupted && b.granted {
                    if let Some(ch) =
                        self.switches[sw.0 as usize].outputs[b.out as usize].chan_out
                    {
                        kicks.push(ch);
                    }
                }
            }
            kicks
        };
        self.switchcast_resume_interrupted(sw, port);
        for ch in kicks {
            self.kick_channel(ch);
        }
    }

    /// Re-request output ports for interrupted (or not-yet-requested)
    /// branches that have something to send again.
    fn switchcast_resume_interrupted(&mut self, sw: SwitchId, port: u8) {
        let resumes: Vec<u8> = {
            let inp = &self.switches[sw.0 as usize].inputs[port as usize];
            let InState::Replicating(rep) = &inp.state else {
                return;
            };
            if !matches!(rep.phase, ReplicaPhase::Active) {
                return;
            }
            let avail = rep.available(&inp.buf);
            rep.branches
                .iter()
                .filter(|b| !b.tail_sent && !b.requested)
                .filter(|b| !b.interrupted || b.body_sent < avail)
                .map(|b| b.out)
                .collect()
        };
        for out in resumes {
            if let InState::Replicating(rep) =
                &mut self.switches[sw.0 as usize].inputs[port as usize].state
            {
                if let Some(b) = rep.branches.iter_mut().find(|b| b.out == out) {
                    if b.interrupted {
                        b.interrupted = false;
                        b.prefix_sent = 0;
                        b.frag_base = b.body_sent;
                    }
                }
            }
            self.switchcast_request(sw, out, port);
        }
    }

    /// The directive is fully collected: build the branch set and request
    /// every output port.
    fn switchcast_activate(&mut self, sw: SwitchId, port: u8) {
        let outs: Vec<(u8, Vec<RouteSym>)> = {
            let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
            let InState::Replicating(rep) = &mut inp.state else {
                unreachable!("activate on a non-replicating input")
            };
            let ReplicaPhase::Parsing { collected } = &rep.phase else {
                unreachable!("activate outside the parsing phase")
            };
            let (directive, used) = decode(collected).expect("parser validated completeness");
            debug_assert_eq!(used, collected.len());
            let outs: Vec<(u8, Vec<RouteSym>)> = directive
                .branches
                .iter()
                .map(|(p, sub)| {
                    let prefix = match sub {
                        Subroute::Host => Vec::new(),
                        Subroute::Next(d) => encode(d).expect("re-encode decoded subtree"),
                    };
                    (*p, prefix)
                })
                .collect();
            rep.branches = outs
                .iter()
                .map(|(o, prefix)| BranchState {
                    out: *o,
                    prefix: prefix.clone(),
                    prefix_sent: 0,
                    granted: false,
                    requested: false,
                    body_sent: 0,
                    tail_sent: false,
                    interrupted: false,
                    frag_base: 0,
                })
                .collect();
            rep.phase = ReplicaPhase::Active;
            outs
        };
        for (o, _) in outs {
            self.switchcast_request(sw, o, port);
        }
    }

    /// A grant arrived for a replicating input's branch.
    pub(crate) fn switchcast_granted(&mut self, sw: SwitchId, out: u8, in_port: u8) {
        if let InState::Replicating(rep) =
            &mut self.switches[sw.0 as usize].inputs[in_port as usize].state
        {
            if let Some(b) = rep.branches.iter_mut().find(|b| b.out == out) {
                b.granted = true;
            }
        }
        if let Some(ch) = self.switches[sw.0 as usize].outputs[out as usize].chan_out {
            self.kick_channel(ch);
        }
    }

    /// Produce the next byte for one branch of a replicating input.
    ///
    /// Semantics per mode when the branch has nothing real to send:
    /// * `RestrictedIdle` / `IdleFlush` — transmit IDLE fill bytes, keeping
    ///   the path; `IdleFlush` additionally flags the port `multicast-IDLE`
    ///   after a threshold and flushes unicast worms waiting behind it.
    /// * `RootedInterrupt` — terminate the current fragment (emit an early
    ///   tail), release the path, and resume later with a re-stamped prefix.
    pub(crate) fn switchcast_produce_byte(
        &mut self,
        sw: SwitchId,
        out: u8,
        owner: u8,
    ) -> Option<WireByte> {
        enum Prod {
            Route(RouteSym),
            Body(ByteKind),
            Tail,
            FragTail,
            Idle,
            Nothing,
        }
        let (worm, action) = {
            let inp = &self.switches[sw.0 as usize].inputs[owner as usize];
            let InState::Replicating(rep) = &inp.state else {
                return None;
            };
            if !matches!(rep.phase, ReplicaPhase::Active) {
                return None;
            }
            let avail = rep.available(&inp.buf);
            let b = rep.branches.iter().find(|b| b.out == out)?;
            if b.tail_sent || b.interrupted || !b.granted {
                return None;
            }
            let act = if b.prefix_sent < b.prefix.len() {
                Prod::Route(b.prefix[b.prefix_sent])
            } else if b.body_sent < avail {
                let offset = (b.body_sent - rep.body_released) as usize;
                let byte = inp.buf[offset];
                debug_assert_eq!(byte.worm, rep.worm);
                match byte.kind {
                    ByteKind::Tail => Prod::Tail,
                    k => Prod::Body(k),
                }
            } else {
                // Nothing real to send: mode-specific stall behaviour.
                match rep.mode {
                    SwitchcastMode::RestrictedIdle | SwitchcastMode::IdleFlush => Prod::Idle,
                    SwitchcastMode::RootedInterrupt => {
                        if b.body_sent > b.frag_base {
                            Prod::FragTail
                        } else {
                            Prod::Nothing // nothing sent yet: just wait
                        }
                    }
                    SwitchcastMode::Off => unreachable!("replica in Off mode"),
                }
            };
            (rep.worm, act)
        };
        match action {
            Prod::Route(sym) => {
                if let InState::Replicating(rep) =
                    &mut self.switches[sw.0 as usize].inputs[owner as usize].state
                {
                    let b = rep.branches.iter_mut().find(|b| b.out == out).expect("branch");
                    b.prefix_sent += 1;
                }
                self.note_real_byte(sw, out);
                Some(WireByte {
                    worm,
                    kind: ByteKind::Route(sym),
                })
            }
            Prod::Body(kind) => {
                if let InState::Replicating(rep) =
                    &mut self.switches[sw.0 as usize].inputs[owner as usize].state
                {
                    let b = rep.branches.iter_mut().find(|b| b.out == out).expect("branch");
                    b.body_sent += 1;
                }
                self.switchcast_pop_released(sw, owner);
                self.note_real_byte(sw, out);
                // Progress may unblock an interrupted sibling even without
                // new arrivals (e.g. the whole worm is already buffered).
                self.switchcast_resume_interrupted(sw, owner);
                Some(WireByte { worm, kind })
            }
            Prod::Tail => {
                let all_done = {
                    let inp = &mut self.switches[sw.0 as usize].inputs[owner as usize];
                    let InState::Replicating(rep) = &mut inp.state else {
                        unreachable!()
                    };
                    let b = rep.branches.iter_mut().find(|b| b.out == out).expect("branch");
                    b.tail_sent = true;
                    b.body_sent += 1;
                    rep.branches.iter().all(|b| b.tail_sent)
                };
                self.note_real_byte(sw, out);
                self.switch_release_output(sw, out);
                self.switchcast_resume_interrupted(sw, owner);
                if all_done {
                    {
                        let inp = &mut self.switches[sw.0 as usize].inputs[owner as usize];
                        let tail = inp.buf.pop_front();
                        debug_assert!(
                            matches!(tail, Some(WireByte { kind: ByteKind::Tail, .. })),
                            "replica completion must pop the tail"
                        );
                        inp.state = InState::Idle;
                    }
                    self.after_slack_dequeue(sw, owner);
                    self.switch_advance_input(sw, owner);
                }
                Some(WireByte {
                    worm,
                    kind: ByteKind::Tail,
                })
            }
            Prod::FragTail => {
                // RootedInterrupt: end this fragment and give up the path.
                if let InState::Replicating(rep) =
                    &mut self.switches[sw.0 as usize].inputs[owner as usize].state
                {
                    let b = rep.branches.iter_mut().find(|b| b.out == out).expect("branch");
                    b.interrupted = true;
                    b.requested = false;
                    b.granted = false;
                }
                self.note_real_byte(sw, out);
                self.switch_release_output(sw, out);
                Some(WireByte {
                    worm,
                    kind: ByteKind::Tail,
                })
            }
            Prod::Idle => {
                self.note_idle_byte(sw, out);
                Some(WireByte {
                    worm,
                    kind: ByteKind::Idle,
                })
            }
            Prod::Nothing => None,
        }
    }

    /// Pop buffer bytes every branch has consumed.
    fn switchcast_pop_released(&mut self, sw: SwitchId, in_port: u8) {
        loop {
            let popped = {
                let inp = &mut self.switches[sw.0 as usize].inputs[in_port as usize];
                let InState::Replicating(rep) = &mut inp.state else {
                    return;
                };
                let min = rep.min_cursor();
                if min > rep.body_released && !inp.buf.is_empty() {
                    // Never pop the tail here: completion handles it so the
                    // state transition is atomic.
                    if matches!(inp.buf.front().map(|b| b.kind), Some(ByteKind::Tail)) {
                        false
                    } else {
                        inp.buf.pop_front();
                        rep.body_released += 1;
                        true
                    }
                } else {
                    false
                }
            };
            if !popped {
                return;
            }
            self.after_slack_dequeue(sw, in_port);
        }
    }

    /// Bookkeeping for a real (non-IDLE) byte leaving an output port.
    fn note_real_byte(&mut self, sw: SwitchId, out: u8) {
        let o = &mut self.switches[sw.0 as usize].outputs[out as usize];
        o.idle_since = None;
        o.multicast_idle = false;
    }

    /// Bookkeeping for an IDLE fill byte: after a threshold the port is
    /// flagged multicast-IDLE and (IdleFlush mode) any unicast worm waiting
    /// on it is flushed back to its source.
    fn note_idle_byte(&mut self, sw: SwitchId, out: u8) {
        let now = self.scheduler.now();
        let flush_mode = self.cfg.switchcast == SwitchcastMode::IdleFlush;
        let newly_flagged = {
            let o = &mut self.switches[sw.0 as usize].outputs[out as usize];
            match o.idle_since {
                None => {
                    o.idle_since = Some(now);
                    false
                }
                Some(since) => {
                    if !o.multicast_idle && now - since >= MULTICAST_IDLE_THRESHOLD {
                        o.multicast_idle = true;
                        true
                    } else {
                        false
                    }
                }
            }
        };
        if newly_flagged && flush_mode {
            self.switchcast_flush_waiters(sw, out);
        }
    }

    /// Flush every unicast worm waiting on a multicast-IDLE output port
    /// (the Section 3 scheme 3): the worm is removed from the network hop
    /// by hop (a Backward Reset) and its source is told to retransmit
    /// after a random timeout.
    pub(crate) fn switchcast_flush_waiters(&mut self, sw: SwitchId, out: u8) {
        let waiting: Vec<u8> = self.switches[sw.0 as usize].arbs[out as usize]
            .waiting
            .clone();
        for in_port in waiting {
            let flushable = {
                let inp = &self.switches[sw.0 as usize].inputs[in_port as usize];
                match &inp.state {
                    InState::Requesting { worm, out: o } if *o == out => {
                        let w = &self.worms[worm.0 as usize];
                        if matches!(w.meta.kind, WormKind::Unicast) {
                            Some(*worm)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            };
            if let Some(worm) = flushable {
                // Remove it from the arbitration queue first.
                let o = &mut self.switches[sw.0 as usize].arbs[out as usize];
                o.waiting.retain(|&w| w != in_port);
                self.flush_worm(worm, sw, in_port);
            }
        }
    }

    /// Remove every trace of `worm` from the fabric, starting at the
    /// blocked input `(sw, in_port)` and walking upstream to the source
    /// adapter; in-flight bytes are discarded on arrival. The source's
    /// protocol is notified so it can retransmit (`on_worm_flushed`).
    ///
    /// The real Myrinet would do this with a Backward Reset control symbol
    /// creeping hop by hop; the simulator performs the walk atomically
    /// (the propagation-delay difference is a few byte-times and no other
    /// event can interleave meaningfully).
    pub(crate) fn flush_worm(&mut self, worm: crate::worm::WormId, sw: SwitchId, in_port: u8) {
        let flags = self.worm_flags.get_mut(worm);
        if *flags & crate::slab::FLAG_FLUSHED == 0 {
            *flags |= crate::slab::FLAG_FLUSHED;
            self.flushed_count += 1;
        }
        let injector = self.worms[worm.0 as usize].meta.injector;
        let mut cur = Some((sw, in_port));
        while let Some((s, p)) = cur {
            let chan_in = {
                let inp = &mut self.switches[s.0 as usize].inputs[p as usize];
                // Drop this worm's bytes (they are contiguous at the front).
                while matches!(inp.buf.front(), Some(b) if b.worm == worm) {
                    inp.buf.pop_front();
                    inp.dropped_bytes += 1;
                }
                // Fix the state machine.
                let release = match &inp.state {
                    InState::Forwarding { worm: w, out } if *w == worm => Some(*out),
                    _ => None,
                };
                if matches!(
                    &inp.state,
                    InState::Requesting { worm: w, .. } | InState::Forwarding { worm: w, .. }
                        if *w == worm
                ) {
                    inp.state = InState::Idle;
                }
                let chan_in = inp.chan_in;
                (release, chan_in)
            };
            let (release, chan_in) = chan_in;
            if let Some(out) = release {
                self.switch_release_output(s, out);
            }
            self.after_slack_dequeue(s, p);
            self.switch_advance_input(s, p);
            // Walk upstream.
            cur = match chan_in {
                Some(ch) => match self.lanes[ch.0 as usize].src().node {
                    NodeRef::Switch(up) => {
                        // Find the upstream output feeding this channel and
                        // its owner; continue only if that owner is still
                        // moving OUR worm.
                        let src_port = self.lanes[ch.0 as usize].src().port;
                        let owner =
                            self.switches[up.0 as usize].outputs[src_port.index()].owner;
                        match owner {
                            Some(op)
                                if matches!(
                                    &self.switches[up.0 as usize].inputs[op as usize].state,
                                    InState::Forwarding { worm: w, .. } if *w == worm
                                ) =>
                            {
                                self.switch_release_output(up, src_port.0);
                                Some((up, op))
                            }
                            _ => None,
                        }
                    }
                    NodeRef::Host(h) => {
                        // The source adapter: abort the transmission.
                        let a = &mut self.adapters[h.0 as usize];
                        if let Some(pos) = a.tx_queue.iter().position(|t| t.worm == worm) {
                            a.tx_queue.remove(pos);
                        }
                        debug_assert_eq!(h, injector, "flush walked to a foreign adapter");
                        None
                    }
                },
                None => None,
            };
        }
        self.stats.worms_flushed += 1;
        self.stats.active_worms -= 1;
        if self.trace.enabled() {
            let at = self.scheduler.now();
            let worm = self.worm_name(worm);
            self.trace
                .push(at, crate::trace::TraceEvent::WormFlushed { worm, host: injector });
        }
        self.notify_flushed(injector, worm);
    }

    /// A byte of an already-flushed worm arrived somewhere: discard it.
    /// Returns true if the byte was consumed.
    pub(crate) fn discard_if_flushed(&mut self, byte: &WireByte) -> bool {
        self.worm_flags.get(byte.worm) & crate::slab::FLAG_FLUSHED != 0
    }

    /// Unused legacy entry point: flushes are performed synchronously by
    /// [`Network::flush_worm`]; no Backward Reset symbols are scheduled.
    pub(crate) fn switchcast_backward_reset(&mut self, ch: crate::link::ChanId) {
        let _ = ch;
        unreachable!("Backward Reset symbols are never scheduled")
    }
}

/// IDLE fill duration after which an output is flagged `multicast-IDLE`
/// (Section 3, scheme 3).
pub const MULTICAST_IDLE_THRESHOLD: crate::time::SimTime = 512;

#[cfg(test)]
mod tests {
    use super::*;

    fn host(p: u8) -> (u8, Subroute) {
        (p, Subroute::Host)
    }

    #[test]
    fn encode_single_host_branch() {
        let d = Directive {
            branches: vec![host(3)],
        };
        let e = encode(&d).unwrap();
        assert_eq!(e, vec![RouteSym::Port(3), RouteSym::Ptr(0), RouteSym::End]);
    }

    #[test]
    fn encode_empty_directive_fails() {
        assert_eq!(
            encode(&Directive::default()),
            Err(RouteCodeError::EmptyDirective)
        );
    }

    #[test]
    fn roundtrip_figure2_shape() {
        // The paper's Figure 2 tree: at the first switch, branches on ports
        // 1 (leading to a switch with ports 2 and 5), 3 (leading to a switch
        // with ports 4 and 1), and 7 (a host).
        let d = Directive {
            branches: vec![
                (
                    1,
                    Subroute::Next(Directive {
                        branches: vec![host(2), host(5)],
                    }),
                ),
                (
                    3,
                    Subroute::Next(Directive {
                        branches: vec![host(4), host(1)],
                    }),
                ),
                host(7),
            ],
        };
        let e = encode(&d).unwrap();
        let (back, used) = decode(&e).unwrap();
        assert_eq!(back, d);
        assert_eq!(used, e.len());
        assert_eq!(d.num_leaves(), 5);
        assert_eq!(d.depth(), 2);
    }

    #[test]
    fn decode_rejects_truncation() {
        let d = Directive {
            branches: vec![host(1), host(2)],
        };
        let e = encode(&d).unwrap();
        for cut in 0..e.len() {
            assert!(decode(&e[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn decode_rejects_garbage_start() {
        assert!(decode(&[RouteSym::Ptr(1)]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn merge_paths_single() {
        let p1: &[u8] = &[1, 2, 3];
        let d = merge_paths(&[p1]).unwrap();
        assert_eq!(d.num_leaves(), 1);
        assert_eq!(d.depth(), 3);
        let e = encode(&d).unwrap();
        let (back, _) = decode(&e).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn merge_paths_shares_prefix() {
        // Two destinations behind the same first hop, one behind another.
        let a: &[u8] = &[1, 2];
        let b: &[u8] = &[1, 4];
        let c: &[u8] = &[6];
        let d = merge_paths(&[a, b, c]).unwrap();
        assert_eq!(d.branches.len(), 2);
        assert_eq!(d.num_leaves(), 3);
        match &d.branches[0] {
            (1, Subroute::Next(inner)) => {
                assert_eq!(inner.branches, vec![host(2), host(4)]);
            }
            other => panic!("unexpected branch {other:?}"),
        }
        assert_eq!(d.branches[1], host(6));
    }

    #[test]
    fn merge_paths_rejects_empty() {
        assert!(merge_paths(&[]).is_err());
        let empty: &[u8] = &[];
        assert!(merge_paths(&[empty]).is_err());
    }

    proptest::proptest! {
        /// encode/decode round-trips arbitrary small trees.
        #[test]
        fn prop_roundtrip(seed in 0u64..10_000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            fn gen_tree(rng: &mut rand::rngs::SmallRng, depth: u8) -> Directive {
                let n = rng.gen_range(1..=3usize);
                let branches = (0..n)
                    .map(|_| {
                        let port = rng.gen_range(0..16u8);
                        let sub = if depth == 0 || rng.gen_bool(0.5) {
                            Subroute::Host
                        } else {
                            Subroute::Next(gen_tree(rng, depth - 1))
                        };
                        (port, sub)
                    })
                    .collect();
                Directive { branches }
            }
            let d = gen_tree(&mut rng, 3);
            let e = encode(&d).unwrap();
            let (back, used) = decode(&e).unwrap();
            proptest::prop_assert_eq!(back, d);
            proptest::prop_assert_eq!(used, e.len());
        }

        /// Merging random path sets yields a tree whose leaf count equals
        /// the number of distinct paths, and whose encoding round-trips.
        #[test]
        fn prop_merge_paths(paths in proptest::collection::vec(
            proptest::collection::vec(0u8..8, 1..5), 1..6))
        {
            // Deduplicate and drop prefix-contained paths: a path that is a
            // prefix of another would mean a host in the middle of a route.
            let mut uniq: Vec<Vec<u8>> = Vec::new();
            'outer: for p in &paths {
                for q in &paths {
                    if p != q && q.starts_with(p) {
                        continue 'outer; // p is a proper prefix of q
                    }
                }
                if !uniq.contains(p) {
                    uniq.push(p.clone());
                }
            }
            let refs: Vec<&[u8]> = uniq.iter().map(|v| v.as_slice()).collect();
            let d = merge_paths(&refs).unwrap();
            // Distinct paths (post-dedup) = leaves only if no two paths are
            // equal, which dedup guarantees... but two paths may still merge
            // entirely if equal — removed. So:
            proptest::prop_assert_eq!(d.num_leaves(), uniq.len());
            let e = encode(&d).unwrap();
            let (back, _) = decode(&e).unwrap();
            proptest::prop_assert_eq!(back, d);
        }
    }
}
