//! Host adapters (the Myrinet "LANai" interface cards).
//!
//! The adapter is where the paper's host-adapter multicast protocols live:
//! it recognises multicast worms, copies them to the local host, and
//! retransmits them to successors — in store-and-forward or cut-through
//! mode. The *policy* (Hamiltonian circuit, rooted tree, ACK/NACK
//! reservation, buffer classes) is supplied by an
//! [`crate::protocol::AdapterProtocol`]; this module implements the
//! *mechanism*: a serialised transmit queue with cut-through support, and a
//! receive path that — like the paper's simulator and the real Myrinet
//! implementation — never backpressures the network: a worm the protocol
//! refuses is dropped and counted.

use crate::engine::HostId;
use crate::link::ChanId;
use crate::network::Network;
use crate::protocol::Admission;

use crate::slab::FollowMap;
use crate::worm::{ByteKind, RouteSym, WireByte, WormId};
use std::collections::VecDeque;

/// A worm queued for transmission at an adapter.
#[derive(Debug)]
pub struct TxWorm {
    pub worm: WormId,
    /// Cut-through: body byte `i` may only be sent once body byte `i` of
    /// this (currently arriving) worm has been received.
    pub follow: Option<WormId>,
    /// Progress: route symbols already sent.
    pub route_sent: usize,
    /// Progress: body (header + payload) bytes already sent.
    pub body_sent: u64,
}

impl TxWorm {
    pub fn new(worm: WormId, follow: Option<WormId>) -> Self {
        TxWorm {
            worm,
            follow,
            route_sent: 0,
            body_sent: 0,
        }
    }

    /// True once transmission has begun (a priority insert must not preempt
    /// a worm already on the wire — worms are indivisible on a link).
    pub fn started(&self) -> bool {
        self.route_sent > 0 || self.body_sent > 0
    }
}

/// Receive-path state of an adapter.
#[derive(Debug, PartialEq, Eq)]
pub enum RxState {
    Idle,
    /// Accumulating a worm the protocol admitted.
    Receiving { worm: WormId, body_got: u64 },
    /// Discarding a worm the protocol refused (or that failed its checksum).
    Dropping { worm: WormId },
}

/// Per-adapter drop/delivery counters (Figure 13's "reception loss" comes
/// from `worms_refused` in the all-senders experiment).
#[derive(Debug, Default, Clone)]
pub struct AdapterCounters {
    pub worms_received: u64,
    pub bytes_received: u64,
    pub worms_refused: u64,
    pub bytes_refused: u64,
    pub worms_corrupt: u64,
    pub worms_sent: u64,
    pub bytes_sent: u64,
}

/// A host adapter.
#[derive(Debug)]
pub struct Adapter {
    pub id: HostId,
    /// Channel adapter → switch.
    pub chan_out: Option<ChanId>,
    /// Channel switch → adapter.
    pub chan_in: Option<ChanId>,
    /// Serialised transmit queue; only the front worm transmits.
    pub tx_queue: VecDeque<TxWorm>,
    pub rx: RxState,
    /// Body bytes received so far for worms that cut-through followers are
    /// tracking. `u64::MAX` marks a fully-received worm. A linear-scan map:
    /// at most a handful of worms are ever live here (see [`FollowMap`]).
    pub rx_body_got: FollowMap,
    /// Fragmented receptions (switch-level interrupt/resume) parked between
    /// fragments; other worms may complete in the gap.
    pub parked: FollowMap,
    pub counters: AdapterCounters,
}

impl Adapter {
    pub fn new(id: HostId) -> Self {
        Adapter {
            id,
            chan_out: None,
            chan_in: None,
            tx_queue: VecDeque::new(),
            rx: RxState::Idle,
            rx_body_got: FollowMap::new(),
            parked: FollowMap::new(),
            counters: AdapterCounters::default(),
        }
    }

    /// Queue depth including the worm currently transmitting.
    pub fn tx_backlog(&self) -> usize {
        self.tx_queue.len()
    }

    /// Enqueue for transmission. `priority` worms jump the queue but never
    /// preempt the worm already on the wire.
    pub fn enqueue_tx(&mut self, tx: TxWorm, priority: bool) {
        if priority {
            let insert_at = usize::from(self.tx_queue.front().is_some_and(|f| f.started()));
            self.tx_queue.insert(insert_at, tx);
        } else {
            self.tx_queue.push_back(tx);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapter event logic.
// ---------------------------------------------------------------------------

impl Network {
    /// Produce the next byte for the adapter's outgoing channel, or `None`
    /// when the queue is empty or the head worm is waiting on cut-through
    /// data that has not arrived yet.
    pub(crate) fn adapter_produce_byte(&mut self, host: HostId) -> Option<WireByte> {
        enum Produced {
            Byte(WireByte),
            TailAndPop(WireByte),
        }
        let produced = {
            let a = &mut self.adapters[host.0 as usize];
            let head = a.tx_queue.front_mut()?;
            let inst = &self.worms[head.worm.0 as usize];
            if head.route_sent < inst.route.len() {
                let sym = inst.route[head.route_sent];
                head.route_sent += 1;
                Produced::Byte(WireByte {
                    worm: head.worm,
                    kind: ByteKind::Route(sym),
                })
            } else if head.body_sent < inst.body_len() {
                // Cut-through constraint: don't run ahead of the source worm.
                if let Some(src) = head.follow {
                    let got = a.rx_body_got.get(src).unwrap_or(0);
                    if got != u64::MAX && head.body_sent >= got {
                        return None;
                    }
                }
                head.body_sent += 1;
                Produced::Byte(WireByte {
                    worm: head.worm,
                    kind: ByteKind::Data,
                })
            } else {
                // Tail: the source worm must be fully received first (the
                // checksum cannot be emitted before the data exists).
                if let Some(src) = head.follow {
                    let got = a.rx_body_got.get(src).unwrap_or(0);
                    if got != u64::MAX {
                        return None;
                    }
                }
                Produced::TailAndPop(WireByte {
                    worm: head.worm,
                    kind: ByteKind::Tail,
                })
            }
        };
        match produced {
            Produced::Byte(b) => {
                self.adapters[host.0 as usize].counters.bytes_sent += 1;
                Some(b)
            }
            Produced::TailAndPop(b) => {
                let finished = {
                    let a = &mut self.adapters[host.0 as usize];
                    a.counters.bytes_sent += 1;
                    a.counters.worms_sent += 1;
                    a.tx_queue.pop_front().expect("head exists")
                };
                // Drop the cut-through bookkeeping if no one else follows it.
                if let Some(src) = finished.follow {
                    let a = &mut self.adapters[host.0 as usize];
                    if !a.tx_queue.iter().any(|t| t.follow == Some(src)) {
                        a.rx_body_got.remove(src);
                    }
                }
                // The route left the wire byte by byte; recycle its buffer
                // (wire-length accounting uses the cached `route_len`).
                let route = std::mem::take(&mut self.worms[finished.worm.0 as usize].route);
                self.route_pool.give(route);
                self.notify_tx_complete(host, finished.worm);
                Some(b)
            }
        }
    }

    /// A byte arrived at the adapter from its switch.
    pub(crate) fn adapter_rx_byte(&mut self, host: HostId, byte: WireByte) {
        // IDLE fill bytes are holes in a stalled multicast worm; the
        // interface discards them.
        if matches!(byte.kind, ByteKind::Idle) {
            return;
        }
        debug_assert!(
            !matches!(byte.kind, ByteKind::Route(_)),
            "route byte leaked to host {host:?}: all route bytes must be \
             consumed by switches"
        );
        let state_action = {
            let a = &self.adapters[host.0 as usize];
            match &a.rx {
                RxState::Idle => {
                    if a.parked.contains(byte.worm) {
                        RxAction::ResumeFragment(byte.worm)
                    } else {
                        RxAction::NewWorm(byte.worm)
                    }
                }
                RxState::Receiving { worm, body_got } => {
                    debug_assert_eq!(
                        *worm, byte.worm,
                        "interleaved worms at adapter {host:?} rx"
                    );
                    match byte.kind {
                        ByteKind::Tail => {
                            // A Tail before the full body is a fragment
                            // boundary (the switch-level interrupt/resume
                            // scheme); reassembly continues.
                            if *body_got < self.worms[worm.0 as usize].body_len() {
                                RxAction::FragmentBoundary
                            } else {
                                RxAction::Complete(*worm)
                            }
                        }
                        _ => RxAction::Accumulate(*worm),
                    }
                }
                RxState::Dropping { worm } => {
                    debug_assert_eq!(*worm, byte.worm);
                    match byte.kind {
                        ByteKind::Tail => RxAction::DropComplete(*worm),
                        _ => RxAction::DropByte,
                    }
                }
            }
        };
        match state_action {
            RxAction::NewWorm(worm) => {
                // First byte of a new worm: ask the protocol whether there is
                // buffer space (the implicit-reservation admission check of
                // Figure 5). A refused worm is dropped in its entirety.
                let admission = self.protocol_admission(host, worm);
                let a = &mut self.adapters[host.0 as usize];
                match admission {
                    Admission::Accept => {
                        a.rx = RxState::Receiving { worm, body_got: 1 };
                        a.rx_body_got.insert(worm, 1);
                        a.counters.bytes_received += 1;
                        self.adapter_kick_followers(host);
                    }
                    Admission::Refuse => {
                        a.rx = RxState::Dropping { worm };
                        a.counters.bytes_refused += 1;
                    }
                }
            }
            RxAction::Accumulate(worm) => {
                let a = &mut self.adapters[host.0 as usize];
                if let RxState::Receiving { body_got, .. } = &mut a.rx {
                    *body_got += 1;
                }
                if let Some(g) = a.rx_body_got.get_mut(worm) {
                    // u64::MAX marks "fully received" and must stay sticky.
                    *g = g.saturating_add(1);
                }
                a.counters.bytes_received += 1;
                self.adapter_kick_followers(host);
            }
            RxAction::Complete(worm) => {
                let corrupt = self.worm_flags.get(worm) & crate::slab::FLAG_CORRUPT != 0;
                {
                    let a = &mut self.adapters[host.0 as usize];
                    a.rx = RxState::Idle;
                    a.counters.bytes_received += 1;
                    if corrupt {
                        a.counters.worms_corrupt += 1;
                        a.rx_body_got.remove(worm);
                    } else {
                        a.counters.worms_received += 1;
                        if let Some(g) = a.rx_body_got.get_mut(worm) {
                            *g = u64::MAX;
                        }
                    }
                }
                self.resolve_sink(worm);
                self.stats.active_worms -= 1;
                if corrupt {
                    self.stats.worms_corrupt += 1;
                    if self.trace.enabled() {
                        let worm = self.worm_name(worm);
                        self.trace.push(
                            self.scheduler.now(),
                            crate::trace::TraceEvent::WormCorrupt { worm, host },
                        );
                    }
                } else {
                    self.adapter_kick_followers(host);
                    self.notify_worm_received(host, worm);
                }
            }
            RxAction::FragmentBoundary => {
                // Park the reassembly; other worms may complete in between
                // fragments (their paths were released by the interrupt).
                let a = &mut self.adapters[host.0 as usize];
                if let RxState::Receiving { worm, body_got } = a.rx {
                    a.parked.insert(worm, body_got);
                    if self.trace.enabled() {
                        let worm = self.worm_name(worm);
                        self.trace.push(
                            self.scheduler.now(),
                            crate::trace::TraceEvent::FragmentParked {
                                worm,
                                host,
                                body_got,
                            },
                        );
                    }
                }
                let a = &mut self.adapters[host.0 as usize];
                a.rx = RxState::Idle;
                a.counters.bytes_received += 1;
            }
            RxAction::ResumeFragment(worm) => {
                let body_got = {
                    let a = &mut self.adapters[host.0 as usize];
                    a.parked.remove(worm).expect("parked")
                };
                if self.trace.enabled() {
                    let worm = self.worm_name(worm);
                    self.trace.push(
                        self.scheduler.now(),
                        crate::trace::TraceEvent::FragmentResumed {
                            worm,
                            host,
                            body_got,
                        },
                    );
                }
                match byte.kind {
                    ByteKind::Tail => {
                        // Zero-data continuation carrying just the tail.
                        let done = body_got >= self.worms[worm.0 as usize].body_len();
                        let a = &mut self.adapters[host.0 as usize];
                        a.rx = RxState::Receiving { worm, body_got };
                        if done {
                            // Re-dispatch as a completion.
                            self.adapter_rx_byte(host, byte);
                        } else {
                            a.parked.insert(worm, body_got);
                            a.rx = RxState::Idle;
                            a.counters.bytes_received += 1;
                            if self.trace.enabled() {
                                let worm = self.worm_name(worm);
                                self.trace.push(
                                    self.scheduler.now(),
                                    crate::trace::TraceEvent::FragmentParked {
                                        worm,
                                        host,
                                        body_got,
                                    },
                                );
                            }
                        }
                    }
                    _ => {
                        let a = &mut self.adapters[host.0 as usize];
                        a.rx = RxState::Receiving {
                            worm,
                            body_got: body_got + 1,
                        };
                        if let Some(g) = a.rx_body_got.get_mut(worm) {
                            // u64::MAX (fully received) stays sticky.
                            *g = g.saturating_add(1);
                        }
                        a.counters.bytes_received += 1;
                        self.adapter_kick_followers(host);
                    }
                }
            }
            RxAction::DropByte => {
                self.adapters[host.0 as usize].counters.bytes_refused += 1;
            }
            RxAction::DropComplete(worm) => {
                {
                    let a = &mut self.adapters[host.0 as usize];
                    a.rx = RxState::Idle;
                    a.counters.bytes_refused += 1;
                    a.counters.worms_refused += 1;
                }
                self.resolve_sink(worm);
                self.stats.active_worms -= 1;
                self.stats.worms_refused += 1;
            }
        }
    }

    /// Span fast-path probe for an adapter's outgoing channel: how many body
    /// bytes of the head worm are unconditionally ready. Route symbols and
    /// the tail stay per-byte (they drive switch parsing and completion),
    /// and a cut-through follower of a still-arriving worm is paced by the
    /// per-byte arrival stream, so only a fully-available body batches.
    pub(crate) fn adapter_span_ready(&self, host: HostId) -> Option<(WormId, u64)> {
        let a = &self.adapters[host.0 as usize];
        let head = a.tx_queue.front()?;
        let inst = &self.worms[head.worm.0 as usize];
        if head.route_sent < inst.route.len() {
            return None;
        }
        let body_left = inst.body_len().saturating_sub(head.body_sent);
        if body_left == 0 {
            return None;
        }
        if let Some(src) = head.follow {
            if a.rx_body_got.get(src) != Some(u64::MAX) {
                return None;
            }
        }
        Some((head.worm, body_left))
    }

    /// Span fast-path check for a receiving adapter: the adapter never
    /// backpressures, so any amount fits — but only mid-worm, once the
    /// admission decision (taken on the first body byte) is behind us.
    pub(crate) fn adapter_span_room(&self, host: HostId, worm: WormId) -> Option<u64> {
        let a = &self.adapters[host.0 as usize];
        match a.rx {
            RxState::Receiving { worm: w, .. } if w == worm => Some(u64::MAX),
            RxState::Dropping { worm: w } if w == worm => Some(u64::MAX),
            _ => None,
        }
    }

    /// A batched run of `len` body bytes of `worm` arrived (span-batched
    /// mode). Credits the whole run in one event; this is byte-exact because
    /// every reader of the reception progress (the cut-through transmit
    /// pacing) moves at one byte per byte-time itself and so can never
    /// overtake the per-byte arrival slots the credit stands for.
    pub(crate) fn adapter_rx_span(&mut self, host: HostId, worm: WormId, len: u64) {
        let refused = {
            let a = &mut self.adapters[host.0 as usize];
            match &mut a.rx {
                RxState::Receiving { worm: w, body_got } => {
                    debug_assert_eq!(*w, worm, "span for a worm not being received");
                    *body_got += len;
                    if let Some(g) = a.rx_body_got.get_mut(worm) {
                        // u64::MAX (fully received) stays sticky.
                        *g = g.saturating_add(len);
                    }
                    a.counters.bytes_received += len;
                    false
                }
                RxState::Dropping { worm: w } => {
                    debug_assert_eq!(*w, worm, "span for a worm not being dropped");
                    a.counters.bytes_refused += len;
                    true
                }
                RxState::Idle => unreachable!(
                    "span delivered to idle adapter {host:?}: emission guard failed"
                ),
            }
        };
        if !refused {
            self.adapter_kick_followers(host);
        }
    }

    /// A byte of a followed worm arrived (or the worm completed): if the
    /// transmit head is a cut-through follower it may be able to move again.
    fn adapter_kick_followers(&mut self, host: HostId) {
        let a = &self.adapters[host.0 as usize];
        let head_follows = a
            .tx_queue
            .front()
            .is_some_and(|h| h.follow.is_some());
        if head_follows {
            if let Some(ch) = a.chan_out {
                self.kick_channel(ch);
            }
        }
    }
}

enum RxAction {
    NewWorm(WormId),
    ResumeFragment(WormId),
    Accumulate(WormId),
    Complete(WormId),
    FragmentBoundary,
    DropByte,
    DropComplete(WormId),
}

/// Expand a plain port-list route into route symbols.
pub fn ports_to_route(ports: &[u8]) -> Vec<RouteSym> {
    ports.iter().map(|&p| RouteSym::Port(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_enqueue_respects_started_head() {
        let mut a = Adapter::new(HostId(0));
        let mut head = TxWorm::new(WormId(0), None);
        head.route_sent = 2; // already on the wire
        a.tx_queue.push_back(head);
        a.tx_queue.push_back(TxWorm::new(WormId(1), None));
        a.enqueue_tx(TxWorm::new(WormId(2), None), true);
        let order: Vec<u32> = a.tx_queue.iter().map(|t| t.worm.0).collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn priority_enqueue_preempts_unstarted_head() {
        let mut a = Adapter::new(HostId(0));
        a.tx_queue.push_back(TxWorm::new(WormId(0), None));
        a.enqueue_tx(TxWorm::new(WormId(2), None), true);
        let order: Vec<u32> = a.tx_queue.iter().map(|t| t.worm.0).collect();
        assert_eq!(order, vec![2, 0]);
    }

    #[test]
    fn non_priority_appends() {
        let mut a = Adapter::new(HostId(0));
        a.enqueue_tx(TxWorm::new(WormId(0), None), false);
        a.enqueue_tx(TxWorm::new(WormId(1), None), false);
        let order: Vec<u32> = a.tx_queue.iter().map(|t| t.worm.0).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn ports_to_route_maps_ports() {
        let r = ports_to_route(&[3, 1, 4]);
        assert_eq!(
            r,
            vec![RouteSym::Port(3), RouteSym::Port(1), RouteSym::Port(4)]
        );
    }
}
