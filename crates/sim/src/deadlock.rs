//! Wait-for-graph construction and cycle detection.
//!
//! Wormhole networks deadlock when blocked worms form a circular wait
//! (Figure 3 of the paper). This module reconstructs the wait-for graph
//! from a live network snapshot:
//!
//! * an input port whose worm is **requesting** an output waits on the
//!   input that currently owns that output;
//! * an input port **forwarding** into a STOPped channel waits on the
//!   downstream input whose slack buffer filled up;
//! * an input port whose worm has a **hole** (bytes not yet arrived) waits
//!   on the upstream producer;
//! * a host adapter whose outgoing channel is STOPped waits on the switch
//!   input it feeds.
//!
//! Host adapter *receive* sides never appear: the paper's design point is
//! that adapters always drain the network (no backpressure from the host
//! interface), so every wait chain that reaches a host terminates.
//!
//! A cycle in this graph is a genuine deadlock: no byte on the cycle can
//! ever move again. The up/down routing restriction exists precisely to
//! make such cycles impossible; integration tests use this module both to
//! *demonstrate* deadlock when the rules are violated and to prove runs
//! clean when they are followed.

use crate::engine::{HostId, SwitchId};
use crate::link::NodeRef;
use crate::network::Network;
use crate::switch::InState;
use std::collections::HashMap;

/// A vertex of the wait-for graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WaitNode {
    /// An input port of a switch holding (part of) a blocked worm.
    SwitchIn(SwitchId, u8),
    /// A host adapter's transmit side.
    HostTx(HostId),
}

/// A detected deadlock: one representative cycle, plus how many worms were
/// outstanding at detection time.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// The wait cycle (empty when detection fired without a reconstructable
    /// cycle — e.g. stuck protocol state rather than fabric state).
    pub cycle: Vec<WaitNode>,
    pub stuck_worms: u64,
}

/// Identify the entity currently *producing* bytes into a switch input port:
/// the upstream output's owner input, or the upstream host.
fn upstream_producer(net: &Network, sw: SwitchId, port: u8) -> Option<WaitNode> {
    let ch = net.switches[sw.0 as usize].inputs[port as usize].chan_in?;
    let src = net.channels[ch.0 as usize].src;
    match src.node {
        NodeRef::Host(h) => Some(WaitNode::HostTx(h)),
        NodeRef::Switch(up) => {
            let owner = net.switches[up.0 as usize].outputs[src.port as usize].owner?;
            Some(WaitNode::SwitchIn(up, owner))
        }
    }
}

/// Build the wait-for graph of the current network state.
pub fn wait_graph(net: &Network) -> HashMap<WaitNode, Vec<WaitNode>> {
    let mut g: HashMap<WaitNode, Vec<WaitNode>> = HashMap::new();
    for sw in &net.switches {
        for (pi, inp) in sw.inputs.iter().enumerate() {
            let me = WaitNode::SwitchIn(sw.id, pi as u8);
            let mut edges = Vec::new();
            match &inp.state {
                InState::Idle | InState::Draining { .. } => {}
                InState::Requesting { out, .. } => {
                    if let Some(owner) = sw.outputs[*out as usize].owner {
                        edges.push(WaitNode::SwitchIn(sw.id, owner));
                    }
                }
                InState::Forwarding { out, worm } => {
                    let blocked_downstream = sw.outputs[*out as usize]
                        .chan_out
                        .is_some_and(|ch| net.channels[ch.0 as usize].stopped);
                    if blocked_downstream {
                        if let Some(ch) = sw.outputs[*out as usize].chan_out {
                            let dst = net.channels[ch.0 as usize].dst;
                            if let NodeRef::Switch(down) = dst.node {
                                edges.push(WaitNode::SwitchIn(down, dst.port));
                            }
                        }
                    }
                    // Starved (hole in the worm): wait on upstream producer.
                    let starved = match inp.buf.front() {
                        None => true,
                        Some(front) => front.worm != *worm,
                    };
                    if starved {
                        if let Some(up) = upstream_producer(net, sw.id, pi as u8) {
                            edges.push(up);
                        }
                    }
                }
                InState::Replicating(rep) => {
                    // Any stopped branch blocks the replica.
                    for b in &rep.branches {
                        if let Some(ch) = sw.outputs[b.out as usize].chan_out {
                            if net.channels[ch.0 as usize].stopped {
                                let dst = net.channels[ch.0 as usize].dst;
                                if let NodeRef::Switch(down) = dst.node {
                                    edges.push(WaitNode::SwitchIn(down, dst.port));
                                }
                            }
                        }
                    }
                }
            }
            if !edges.is_empty() {
                g.insert(me, edges);
            }
        }
    }
    for a in &net.adapters {
        if a.tx_queue.is_empty() {
            continue;
        }
        if let Some(ch) = a.chan_out {
            let c = &net.channels[ch.0 as usize];
            if c.stopped {
                if let NodeRef::Switch(sw) = c.dst.node {
                    g.insert(
                        WaitNode::HostTx(a.id),
                        vec![WaitNode::SwitchIn(sw, c.dst.port)],
                    );
                }
            }
        }
    }
    g
}

/// Find one cycle in the wait-for graph, if any.
pub fn find_cycle(g: &HashMap<WaitNode, Vec<WaitNode>>) -> Option<Vec<WaitNode>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: HashMap<WaitNode, Mark> = g.keys().map(|&k| (k, Mark::White)).collect();

    fn dfs(
        node: WaitNode,
        g: &HashMap<WaitNode, Vec<WaitNode>>,
        marks: &mut HashMap<WaitNode, Mark>,
        stack: &mut Vec<WaitNode>,
    ) -> Option<Vec<WaitNode>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        if let Some(succs) = g.get(&node) {
            for &next in succs {
                match marks.get(&next).copied().unwrap_or(Mark::Black) {
                    Mark::Grey => {
                        // Found a cycle: slice the stack from `next` onward.
                        let start = stack.iter().position(|&n| n == next).expect("on stack");
                        return Some(stack[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(next, g, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<WaitNode> = g.keys().copied().collect();
    for n in nodes {
        if marks.get(&n) == Some(&Mark::White) {
            let mut stack = Vec::new();
            if let Some(c) = dfs(n, g, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Analyze a network snapshot for a deadlock cycle.
pub fn analyze(net: &Network) -> Option<DeadlockReport> {
    let g = wait_graph(net);
    find_cycle(&g).map(|cycle| DeadlockReport {
        cycle,
        stuck_worms: net.stats.active_worms.max(0) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> WaitNode {
        WaitNode::SwitchIn(SwitchId(i), 0)
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        let g = HashMap::new();
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn chain_has_no_cycle() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1)]);
        g.insert(n(1), vec![n(2)]);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn self_loop_detected() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(0)]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c, vec![n(0)]);
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1)]);
        g.insert(n(1), vec![n(0)]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn branch_into_cycle_detected() {
        // 0 -> 1 -> 2 -> 3 -> 1 : cycle is {1,2,3}.
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1)]);
        g.insert(n(1), vec![n(2)]);
        g.insert(n(2), vec![n(3)]);
        g.insert(n(3), vec![n(1)]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 3);
        assert!(!c.contains(&n(0)));
    }

    #[test]
    fn diamond_without_cycle() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1), n(2)]);
        g.insert(n(1), vec![n(3)]);
        g.insert(n(2), vec![n(3)]);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn mixed_node_kinds_in_cycle() {
        let h = WaitNode::HostTx(HostId(5));
        let mut g = HashMap::new();
        g.insert(h, vec![n(1)]);
        g.insert(n(1), vec![h]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 2);
        assert!(c.contains(&h));
    }
}
