//! Wait-for-graph construction and cycle detection.
//!
//! Wormhole networks deadlock when blocked worms form a circular wait
//! (Figure 3 of the paper). This module reconstructs the wait-for graph
//! from a live network snapshot:
//!
//! * an input port whose worm is **requesting** an output waits on the
//!   input that currently owns that output;
//! * an input port **forwarding** into a STOPped channel waits on the
//!   downstream input whose slack buffer filled up;
//! * an input port whose worm has a **hole** (bytes not yet arrived) waits
//!   on the upstream producer;
//! * a host adapter whose outgoing channel is STOPped waits on the switch
//!   input it feeds.
//!
//! Host adapter *receive* sides never appear: the paper's design point is
//! that adapters always drain the network (no backpressure from the host
//! interface), so every wait chain that reaches a host terminates.
//!
//! A cycle in this graph is a genuine deadlock: no byte on the cycle can
//! ever move again. The up/down routing restriction exists precisely to
//! make such cycles impossible; integration tests use this module both to
//! *demonstrate* deadlock when the rules are violated and to prove runs
//! clean when they are followed.

use crate::engine::{HostId, SwitchId};
use crate::link::{ChanId, NodeRef};
use crate::network::Network;
use crate::switch::InState;
use crate::worm::WormId;
use std::collections::HashMap;
use std::fmt;

/// A vertex of the wait-for graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WaitNode {
    /// An input port of a switch holding (part of) a blocked worm.
    SwitchIn(SwitchId, u8),
    /// A host adapter's transmit side.
    HostTx(HostId),
}

impl fmt::Display for WaitNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitNode::SwitchIn(sw, p) => write!(f, "sw{}:in{}", sw.0, p),
            WaitNode::HostTx(h) => write!(f, "host{}:tx", h.0),
        }
    }
}

/// Why one wait-for edge exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitCause {
    /// The worm's head requested an output another input owns.
    OutputHeldBy { switch: SwitchId, out: u8 },
    /// The worm is forwarding into a channel with a STOP in force.
    StoppedDownstream { ch: ChanId },
    /// The worm has a hole: its next byte has not arrived from upstream.
    StarvedUpstream { ch: ChanId },
    /// The worm's next bytes are crossing a shard boundary — an optimistic
    /// span (or its per-byte expansion) is still in transit on cut channel
    /// `ch`. Transit latency, not a genuine wait: these edges are excluded
    /// from cycle detection (the bytes arrive without anyone yielding).
    SpanInTransit { ch: ChanId },
    /// A switchcast replica branch transmits into a STOPped channel.
    BranchStopped { ch: ChanId },
    /// The host's outgoing link itself has a STOP in force.
    HostLinkStopped { ch: ChanId },
}

impl fmt::Display for WaitCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitCause::OutputHeldBy { switch, out } => {
                write!(f, "output sw{}:out{} held", switch.0, out)
            }
            WaitCause::StoppedDownstream { ch } => write!(f, "STOP in force on ch{}", ch.0),
            WaitCause::StarvedUpstream { ch } => write!(f, "starved, waiting bytes on ch{}", ch.0),
            WaitCause::SpanInTransit { ch } => {
                write!(f, "cross-shard span in transit on ch{}", ch.0)
            }
            WaitCause::BranchStopped { ch } => {
                write!(f, "multicast branch STOPped on ch{}", ch.0)
            }
            WaitCause::HostLinkStopped { ch } => write!(f, "host link ch{} STOPped", ch.0),
        }
    }
}

/// One annotated edge of the wait-for graph: `from` cannot make progress
/// until `to` does. `worm` is the blocked worm at `from`; `holds` is the
/// worm currently occupying `to` (the one holding the contended resource).
#[derive(Clone, Copy, Debug)]
pub struct WaitEdge {
    pub from: WaitNode,
    pub to: WaitNode,
    pub worm: Option<WormId>,
    pub holds: Option<WormId>,
    pub cause: WaitCause,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.from)?;
        if let Some(w) = self.worm {
            write!(f, " [worm {}]", w.0)?;
        }
        write!(f, " -> {}", self.to)?;
        if let Some(w) = self.holds {
            write!(f, " [holds worm {}]", w.0)?;
        }
        write!(f, ": {}", self.cause)
    }
}

/// A detected deadlock (or a watchdog forensics snapshot): one
/// representative cycle, the full annotated wait-for graph at detection
/// time, and how many worms were outstanding. Its `Display` renders the
/// human-readable dump.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// The wait cycle (empty when detection fired without a reconstructable
    /// cycle — e.g. stuck protocol state rather than fabric state).
    pub cycle: Vec<WaitNode>,
    pub stuck_worms: u64,
    /// Every wait-for edge at detection time, annotated with the blocked
    /// worm, the holding worm, and the blocking cause.
    pub edges: Vec<WaitEdge>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock forensics: {} stuck worm(s), {} wait-for edge(s)",
            self.stuck_worms,
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        if self.cycle.is_empty() {
            write!(f, "  no wait cycle reconstructed")
        } else {
            write!(f, "  cycle:")?;
            for n in &self.cycle {
                write!(f, " {n} ->")?;
            }
            write!(f, " {}", self.cycle[0])
        }
    }
}

/// The worm currently occupying a wait-for node, if any.
fn node_worm(net: &Network, node: WaitNode) -> Option<WormId> {
    match node {
        WaitNode::SwitchIn(sw, p) => {
            match &net.switches[sw.0 as usize].inputs[p as usize].state {
                InState::Idle => None,
                InState::Requesting { worm, .. }
                | InState::Forwarding { worm, .. }
                | InState::Draining { worm } => Some(*worm),
                InState::Replicating(rep) => Some(rep.worm),
            }
        }
        WaitNode::HostTx(h) => net.adapters[h.0 as usize].tx_queue.front().map(|t| t.worm),
    }
}

/// Identify the entity currently *producing* bytes into a switch input port:
/// the upstream output's owner input, or the upstream host.
fn upstream_producer(net: &Network, sw: SwitchId, port: u8) -> Option<(WaitNode, ChanId)> {
    let ch = net.switches[sw.0 as usize].inputs[port as usize].chan_in?;
    let src = net.lane(ch).src();
    match src.node {
        NodeRef::Host(h) => Some((WaitNode::HostTx(h), ch)),
        NodeRef::Switch(up) => {
            let owner = net.switches[up.0 as usize].outputs[src.port.index()].owner?;
            Some((WaitNode::SwitchIn(up, owner), ch))
        }
    }
}

/// Build the annotated wait-for edge list of the current network state —
/// the forensics view the watchdog dumps when it trips.
pub fn wait_edges(net: &Network) -> Vec<WaitEdge> {
    let mut edges: Vec<WaitEdge> = Vec::new();
    let mut push = |net: &Network, from: WaitNode, to: WaitNode, worm: Option<WormId>, cause| {
        edges.push(WaitEdge {
            from,
            to,
            worm,
            holds: node_worm(net, to),
            cause,
        });
    };
    for sw in &net.switches {
        for (pi, inp) in sw.inputs.iter().enumerate() {
            let me = WaitNode::SwitchIn(sw.id, pi as u8);
            match &inp.state {
                InState::Idle | InState::Draining { .. } => {}
                InState::Requesting { out, worm } => {
                    // `out` is the physical port; the head waits on every
                    // lane's current owner (any one freeing unblocks it).
                    for slot in sw.slots_of(*out) {
                        if let Some(owner) = sw.outputs[slot].owner {
                            push(
                                net,
                                me,
                                WaitNode::SwitchIn(sw.id, owner),
                                Some(*worm),
                                WaitCause::OutputHeldBy {
                                    switch: sw.id,
                                    out: *out,
                                },
                            );
                        }
                    }
                }
                InState::Forwarding { out, worm } => {
                    if let Some(ch) = sw.outputs[*out as usize].chan_out {
                        if net.lane(ch).is_stopped() {
                            let dst = net.lane(ch).dst();
                            if let NodeRef::Switch(down) = dst.node {
                                push(
                                    net,
                                    me,
                                    WaitNode::SwitchIn(down, dst.port.0),
                                    Some(*worm),
                                    WaitCause::StoppedDownstream { ch },
                                );
                            }
                        }
                    }
                    // Starved (hole in the worm): wait on upstream producer.
                    let starved = match inp.buf.front() {
                        None => true,
                        Some(front) => front.worm != *worm,
                    };
                    if starved {
                        if let Some((up, ch)) = upstream_producer(net, sw.id, pi as u8) {
                            push(net, me, up, Some(*worm), WaitCause::StarvedUpstream { ch });
                        }
                    }
                }
                InState::Replicating(rep) => {
                    // Any stopped branch blocks the replica.
                    for b in &rep.branches {
                        if let Some(ch) = sw.outputs[b.out as usize].chan_out {
                            if net.lane(ch).is_stopped() {
                                let dst = net.lane(ch).dst();
                                if let NodeRef::Switch(down) = dst.node {
                                    push(
                                        net,
                                        me,
                                        WaitNode::SwitchIn(down, dst.port.0),
                                        Some(rep.worm),
                                        WaitCause::BranchStopped { ch },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    for a in &net.adapters {
        let Some(head) = a.tx_queue.front() else {
            continue;
        };
        if let Some(ch) = a.chan_out {
            let c = net.lane(ch);
            if c.is_stopped() {
                if let NodeRef::Switch(sw) = c.dst().node {
                    push(
                        net,
                        WaitNode::HostTx(a.id),
                        WaitNode::SwitchIn(sw, c.dst().port.0),
                        Some(head.worm),
                        WaitCause::HostLinkStopped { ch },
                    );
                }
            }
        }
    }
    edges
}

/// Build the wait-for graph of the current network state (the adjacency
/// view of [`wait_edges`]).
pub fn wait_graph(net: &Network) -> HashMap<WaitNode, Vec<WaitNode>> {
    graph_from_edges(&wait_edges(net))
}

/// Collapse an edge list into the adjacency map [`find_cycle`] consumes.
pub fn graph_from_edges(edges: &[WaitEdge]) -> HashMap<WaitNode, Vec<WaitNode>> {
    let mut g: HashMap<WaitNode, Vec<WaitNode>> = HashMap::new();
    for e in edges {
        g.entry(e.from).or_default().push(e.to);
    }
    g
}

/// Find one cycle in the wait-for graph, if any.
pub fn find_cycle(g: &HashMap<WaitNode, Vec<WaitNode>>) -> Option<Vec<WaitNode>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: HashMap<WaitNode, Mark> = g.keys().map(|&k| (k, Mark::White)).collect();

    fn dfs(
        node: WaitNode,
        g: &HashMap<WaitNode, Vec<WaitNode>>,
        marks: &mut HashMap<WaitNode, Mark>,
        stack: &mut Vec<WaitNode>,
    ) -> Option<Vec<WaitNode>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        if let Some(succs) = g.get(&node) {
            for &next in succs {
                match marks.get(&next).copied().unwrap_or(Mark::Black) {
                    Mark::Grey => {
                        // Found a cycle: slice the stack from `next` onward.
                        let start = stack.iter().position(|&n| n == next).expect("on stack");
                        return Some(stack[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(next, g, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<WaitNode> = g.keys().copied().collect();
    for n in nodes {
        if marks.get(&n) == Some(&Mark::White) {
            let mut stack = Vec::new();
            if let Some(c) = dfs(n, g, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Analyze a network snapshot for a deadlock cycle. `Some` only when a
/// genuine wait cycle exists (overload alone is not deadlock).
pub fn analyze(net: &Network) -> Option<DeadlockReport> {
    let report = forensics(net);
    if report.cycle.is_empty() {
        None
    } else {
        Some(report)
    }
}

/// Unconditional forensics snapshot: the full annotated wait-for graph, a
/// representative cycle when one exists (empty otherwise — e.g. worms stuck
/// in protocol state rather than fabric state), and the outstanding-worm
/// count. The watchdog and the drained-queue deadlock check dump this.
pub fn forensics(net: &Network) -> DeadlockReport {
    let edges = wait_edges(net);
    let cycle = find_cycle(&graph_from_edges(&edges)).unwrap_or_default();
    DeadlockReport {
        cycle,
        stuck_worms: net.stats.active_worms.max(0) as u64,
        edges,
    }
}

// ---------------------------------------------------------------------------
// Sharded (multi-engine) aggregation
// ---------------------------------------------------------------------------

/// Build the merged wait-for edge list across the shard engines of one
/// sharded run. Each shard walks its *owned* switches and adapters using
/// its own (authoritative) state; whenever an edge's far side — the
/// downstream input a STOP points at, the upstream producer of a starved
/// worm, the holder of a contended output — lives in another shard, that
/// shard's engine is consulted instead of the local idle mirror. Worm ids
/// in the result are canonical *across* shards: each distinct worm tag is
/// assigned a dense id in tag order, so the same worm blocked in one
/// shard and holding a resource in another carries one name.
pub fn wait_edges_multi(
    nets: &[Network],
    switch_owner: &[u32],
    host_owner: &[u32],
) -> Vec<WaitEdge> {
    struct RawEdge {
        from: WaitNode,
        to: WaitNode,
        worm: Option<(usize, WormId)>,
        holds: Option<(usize, WormId)>,
        cause: WaitCause,
    }

    let owner_of = |node: WaitNode| -> usize {
        match node {
            WaitNode::SwitchIn(sw, _) => switch_owner[sw.0 as usize] as usize,
            WaitNode::HostTx(h) => host_owner[h.0 as usize] as usize,
        }
    };
    // The occupying worm of a node, read from the shard that owns it.
    let node_worm_multi = |node: WaitNode| -> Option<(usize, WormId)> {
        let s = owner_of(node);
        node_worm(&nets[s], node).map(|w| (s, w))
    };
    // Upstream producer of a switch input, resolving the upstream output's
    // crossbar owner in *its* shard (the local mirror knows nothing).
    let upstream_multi = |net: &Network, sw: SwitchId, port: u8| -> Option<(WaitNode, ChanId)> {
        let ch = net.switches[sw.0 as usize].inputs[port as usize].chan_in?;
        let src = net.lane(ch).src();
        match src.node {
            NodeRef::Host(h) => Some((WaitNode::HostTx(h), ch)),
            NodeRef::Switch(up) => {
                let up_net = &nets[switch_owner[up.0 as usize] as usize];
                let owner = up_net.switches[up.0 as usize].outputs[src.port.index()].owner?;
                Some((WaitNode::SwitchIn(up, owner), ch))
            }
        }
    };

    let mut raw: Vec<RawEdge> = Vec::new();
    for (si, net) in nets.iter().enumerate() {
        for sw in &net.switches {
            if switch_owner[sw.id.0 as usize] as usize != si {
                continue;
            }
            for (pi, inp) in sw.inputs.iter().enumerate() {
                let me = WaitNode::SwitchIn(sw.id, pi as u8);
                match &inp.state {
                    InState::Idle | InState::Draining { .. } => {}
                    InState::Requesting { out, worm } => {
                        for slot in sw.slots_of(*out) {
                            if let Some(owner) = sw.outputs[slot].owner {
                                let to = WaitNode::SwitchIn(sw.id, owner);
                                raw.push(RawEdge {
                                    from: me,
                                    to,
                                    worm: Some((si, *worm)),
                                    holds: node_worm_multi(to),
                                    cause: WaitCause::OutputHeldBy {
                                        switch: sw.id,
                                        out: *out,
                                    },
                                });
                            }
                        }
                    }
                    InState::Forwarding { out, worm } => {
                        // The transmit-side STOP state of this input's
                        // outgoing channel is owned here (we are its src).
                        if let Some(ch) = sw.outputs[*out as usize].chan_out {
                            if net.lane(ch).is_stopped() {
                                let dst = net.lane(ch).dst();
                                if let NodeRef::Switch(down) = dst.node {
                                    let to = WaitNode::SwitchIn(down, dst.port.0);
                                    raw.push(RawEdge {
                                        from: me,
                                        to,
                                        worm: Some((si, *worm)),
                                        holds: node_worm_multi(to),
                                        cause: WaitCause::StoppedDownstream { ch },
                                    });
                                }
                            }
                        }
                        let starved = match inp.buf.front() {
                            None => true,
                            Some(front) => front.worm != *worm,
                        };
                        if starved {
                            if let Some((up, ch)) = upstream_multi(net, sw.id, pi as u8) {
                                // A starvation whose missing bytes are an
                                // optimistic span (or its expansion) still
                                // in transit across the shard boundary is
                                // latency, not a wait — label it so cycle
                                // detection can ignore the edge.
                                let cause = if net.chan_src_foreign(ch)
                                    && net.lane(ch).has_foreign_in_transit()
                                {
                                    WaitCause::SpanInTransit { ch }
                                } else {
                                    WaitCause::StarvedUpstream { ch }
                                };
                                raw.push(RawEdge {
                                    from: me,
                                    to: up,
                                    worm: Some((si, *worm)),
                                    holds: node_worm_multi(up),
                                    cause,
                                });
                            }
                        }
                    }
                    InState::Replicating(rep) => {
                        for b in &rep.branches {
                            if let Some(ch) = sw.outputs[b.out as usize].chan_out {
                                if net.lane(ch).is_stopped() {
                                    let dst = net.lane(ch).dst();
                                    if let NodeRef::Switch(down) = dst.node {
                                        let to = WaitNode::SwitchIn(down, dst.port.0);
                                        raw.push(RawEdge {
                                            from: me,
                                            to,
                                            worm: Some((si, rep.worm)),
                                            holds: node_worm_multi(to),
                                            cause: WaitCause::BranchStopped { ch },
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        for a in &net.adapters {
            if host_owner[a.id.0 as usize] as usize != si {
                continue;
            }
            let Some(head) = a.tx_queue.front() else {
                continue;
            };
            if let Some(ch) = a.chan_out {
                let c = net.lane(ch);
                if c.is_stopped() {
                    if let NodeRef::Switch(sw) = c.dst().node {
                        let to = WaitNode::SwitchIn(sw, c.dst().port.0);
                        raw.push(RawEdge {
                            from: WaitNode::HostTx(a.id),
                            to,
                            worm: Some((si, head.worm)),
                            holds: node_worm_multi(to),
                            cause: WaitCause::HostLinkStopped { ch },
                        });
                    }
                }
            }
        }
    }

    // Canonicalize worm names: every shard holds the worm under its own
    // dense local id, but all of them know its globally unique tag.
    // Dense-rank the tags so the report names each worm once, stably.
    let tag_of = |(s, w): (usize, WormId)| -> u64 {
        nets[s]
            .worm_tag(w)
            .unwrap_or(((s as u64) << 50) | w.0 as u64)
    };
    let mut tags: Vec<u64> = raw
        .iter()
        .flat_map(|e| e.worm.into_iter().chain(e.holds))
        .map(tag_of)
        .collect();
    tags.sort_unstable();
    tags.dedup();
    let canon = |o: Option<(usize, WormId)>| -> Option<WormId> {
        o.map(|sw| {
            let rank = tags.binary_search(&tag_of(sw)).expect("tag collected");
            WormId(rank as u32)
        })
    };
    raw.into_iter()
        .map(|e| WaitEdge {
            from: e.from,
            to: e.to,
            worm: canon(e.worm),
            holds: canon(e.holds),
            cause: e.cause,
        })
        .collect()
}

/// Unconditional merged forensics for a sharded run (the multi-engine
/// analogue of [`forensics`]).
pub fn forensics_multi(
    nets: &[Network],
    switch_owner: &[u32],
    host_owner: &[u32],
) -> DeadlockReport {
    let edges = wait_edges_multi(nets, switch_owner, host_owner);
    // In-transit cross-shard spans resolve on their own (the bytes are on
    // the wire); keep the edges in the report for forensics but never let
    // them close a "cycle".
    let hard: Vec<WaitEdge> = edges
        .iter()
        .filter(|e| !matches!(e.cause, WaitCause::SpanInTransit { .. }))
        .copied()
        .collect();
    let cycle = find_cycle(&graph_from_edges(&hard)).unwrap_or_default();
    let stuck: i64 = nets.iter().map(|n| n.stats.active_worms).sum();
    DeadlockReport {
        cycle,
        stuck_worms: stuck.max(0) as u64,
        edges,
    }
}

/// Analyze a sharded run's merged state for a deadlock cycle. `Some` only
/// when a genuine wait cycle exists, exactly like [`analyze`].
pub fn analyze_multi(
    nets: &[Network],
    switch_owner: &[u32],
    host_owner: &[u32],
) -> Option<DeadlockReport> {
    let report = forensics_multi(nets, switch_owner, host_owner);
    if report.cycle.is_empty() {
        None
    } else {
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> WaitNode {
        WaitNode::SwitchIn(SwitchId(i), 0)
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        let g = HashMap::new();
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn chain_has_no_cycle() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1)]);
        g.insert(n(1), vec![n(2)]);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn self_loop_detected() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(0)]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c, vec![n(0)]);
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1)]);
        g.insert(n(1), vec![n(0)]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn branch_into_cycle_detected() {
        // 0 -> 1 -> 2 -> 3 -> 1 : cycle is {1,2,3}.
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1)]);
        g.insert(n(1), vec![n(2)]);
        g.insert(n(2), vec![n(3)]);
        g.insert(n(3), vec![n(1)]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 3);
        assert!(!c.contains(&n(0)));
    }

    #[test]
    fn diamond_without_cycle() {
        let mut g = HashMap::new();
        g.insert(n(0), vec![n(1), n(2)]);
        g.insert(n(1), vec![n(3)]);
        g.insert(n(2), vec![n(3)]);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn report_display_names_worms_and_channels() {
        let edge = WaitEdge {
            from: WaitNode::SwitchIn(SwitchId(3), 2),
            to: WaitNode::SwitchIn(SwitchId(4), 0),
            worm: Some(WormId(17)),
            holds: Some(WormId(9)),
            cause: WaitCause::StoppedDownstream { ch: ChanId(12) },
        };
        let report = DeadlockReport {
            cycle: vec![edge.from, edge.to],
            stuck_worms: 2,
            edges: vec![edge],
        };
        let dump = report.to_string();
        assert!(dump.contains("2 stuck worm(s)"));
        assert!(dump.contains("sw3:in2 [worm 17] -> sw4:in0 [holds worm 9]"));
        assert!(dump.contains("STOP in force on ch12"));
        assert!(dump.contains("cycle: sw3:in2 -> sw4:in0 -> sw3:in2"));
    }

    #[test]
    fn report_display_without_cycle() {
        let report = DeadlockReport {
            cycle: Vec::new(),
            stuck_worms: 1,
            edges: Vec::new(),
        };
        assert!(report.to_string().contains("no wait cycle reconstructed"));
    }

    #[test]
    fn graph_from_edges_groups_by_source() {
        let mk = |from, to| WaitEdge {
            from,
            to,
            worm: None,
            holds: None,
            cause: WaitCause::OutputHeldBy {
                switch: SwitchId(0),
                out: 0,
            },
        };
        let g = graph_from_edges(&[mk(n(0), n(1)), mk(n(0), n(2)), mk(n(1), n(2))]);
        assert_eq!(g[&n(0)].len(), 2);
        assert_eq!(g[&n(1)], vec![n(2)]);
    }

    #[test]
    fn mixed_node_kinds_in_cycle() {
        let h = WaitNode::HostTx(HostId(5));
        let mut g = HashMap::new();
        g.insert(h, vec![n(1)]);
        g.insert(n(1), vec![h]);
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 2);
        assert!(c.contains(&h));
    }
}
