//! Dense per-worm state: hash-free slab stores and allocation pools for
//! the simulation hot path.
//!
//! [`WormId`] is an index into the network's append-only worm arena and is
//! never reused, so per-worm side state needs no hashing and no generation
//! tags: a dense vector indexed by worm slot, grown on demand, gives
//! `HashMap`-entry semantics with a bounds check in place of a hash — the
//! degenerate (and fastest) case of a generational slab. Every delivery-path
//! lookup that used to hash a `WormId` goes through [`PerWorm`] instead.
//!
//! [`FollowMap`] covers the adapter-local maps (cut-through reception
//! progress, parked fragments) that are keyed by worm but hold only a
//! handful of *live* entries at a time: a linear-scan association list beats
//! both a hash map and a dense vector there, because entries are removed
//! when worms complete and the scan length stays 0–2.
//!
//! [`RoutePool`] recycles encoded-route buffers — the one real per-worm
//! heap allocation in this content-light simulator — so steady-state
//! injection performs no allocator calls.

use crate::worm::{RouteSym, WormId};

/// Worm-flag bit: the fault model corrupted this worm in flight.
pub(crate) const FLAG_CORRUPT: u8 = 1 << 0;
/// Worm-flag bit: a Backward Reset flush evicted this worm; its in-flight
/// bytes are discarded on arrival.
pub(crate) const FLAG_FLUSHED: u8 = 1 << 1;

/// A dense per-worm store: `HashMap<WormId, T>` semantics (with a default
/// standing in for "absent") at vector-index cost.
#[derive(Debug)]
pub struct PerWorm<T> {
    vals: Vec<T>,
    default: T,
}

impl<T: Copy> PerWorm<T> {
    pub fn new(default: T) -> Self {
        PerWorm {
            vals: Vec::new(),
            default,
        }
    }

    /// Read the value for `id` (the default when never written).
    #[inline]
    pub fn get(&self, id: WormId) -> T {
        self.vals
            .get(id.0 as usize)
            .copied()
            .unwrap_or(self.default)
    }

    /// Mutable access, growing the store with defaults as needed.
    #[inline]
    pub fn get_mut(&mut self, id: WormId) -> &mut T {
        let idx = id.0 as usize;
        if idx >= self.vals.len() {
            self.vals.resize(idx + 1, self.default);
        }
        &mut self.vals[idx]
    }
}

/// A worm-keyed association list for adapter-local reception state.
///
/// Only worms currently being received (or parked between fragments) at one
/// adapter live here, so the list is almost always empty or a single entry;
/// a linear scan is cheaper than any hash. Insertion order is irrelevant —
/// keys are unique.
#[derive(Debug, Default)]
pub struct FollowMap {
    entries: Vec<(WormId, u64)>,
}

impl FollowMap {
    pub fn new() -> Self {
        FollowMap::default()
    }

    #[inline]
    pub fn get(&self, id: WormId) -> Option<u64> {
        self.entries.iter().find(|e| e.0 == id).map(|e| e.1)
    }

    #[inline]
    pub fn get_mut(&mut self, id: WormId) -> Option<&mut u64> {
        self.entries.iter_mut().find(|e| e.0 == id).map(|e| &mut e.1)
    }

    #[inline]
    pub fn contains(&self, id: WormId) -> bool {
        self.entries.iter().any(|e| e.0 == id)
    }

    /// Insert or overwrite the value for `id`.
    pub fn insert(&mut self, id: WormId, val: u64) {
        match self.get_mut(id) {
            Some(v) => *v = val,
            None => self.entries.push((id, val)),
        }
    }

    /// Remove `id`, returning its value if present.
    pub fn remove(&mut self, id: WormId) -> Option<u64> {
        let idx = self.entries.iter().position(|e| e.0 == id)?;
        Some(self.entries.swap_remove(idx).1)
    }
}

/// Free-list of encoded-route buffers. Routes are built at injection and
/// dead once the tail byte leaves the source adapter; recycling them makes
/// steady-state injection allocation-free.
#[derive(Debug, Default)]
pub struct RoutePool {
    free: Vec<Vec<RouteSym>>,
}

/// Retaining more spare buffers than can plausibly be in flight at once
/// would just be leaked memory.
const ROUTE_POOL_CAP: usize = 1024;

impl RoutePool {
    pub fn new() -> Self {
        RoutePool::default()
    }

    /// An empty route buffer, reusing a recycled allocation when available.
    pub fn take(&mut self) -> Vec<RouteSym> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a spent buffer to the pool.
    pub fn give(&mut self, mut buf: Vec<RouteSym>) {
        if self.free.len() < ROUTE_POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worm_defaults_and_growth() {
        let mut s: PerWorm<u32> = PerWorm::new(0);
        assert_eq!(s.get(WormId(7)), 0);
        *s.get_mut(WormId(7)) = 3;
        assert_eq!(s.get(WormId(7)), 3);
        assert_eq!(s.get(WormId(6)), 0);
        assert_eq!(s.get(WormId(1000)), 0);
    }

    #[test]
    fn follow_map_insert_get_remove() {
        let mut m = FollowMap::new();
        assert_eq!(m.get(WormId(1)), None);
        m.insert(WormId(1), 10);
        m.insert(WormId(2), 20);
        m.insert(WormId(1), 11);
        assert_eq!(m.get(WormId(1)), Some(11));
        assert!(m.contains(WormId(2)));
        *m.get_mut(WormId(2)).unwrap() += 1;
        assert_eq!(m.remove(WormId(2)), Some(21));
        assert_eq!(m.remove(WormId(2)), None);
        assert!(!m.contains(WormId(2)));
    }

    #[test]
    fn route_pool_recycles_capacity() {
        let mut p = RoutePool::new();
        let mut v = p.take();
        v.extend([RouteSym::Port(1), RouteSym::Port(2)]);
        let cap = v.capacity();
        p.give(v);
        let v2 = p.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
    }
}
