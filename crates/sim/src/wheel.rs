//! A timing wheel for the event queue hot path.
//!
//! Almost every event in a byte-level wormhole simulation is scheduled a few
//! byte-times into the future (the next byte on a link, a propagation delay).
//! A binary heap pays `O(log n)` for each of those; a timing wheel pays
//! `O(1)`. Events beyond the wheel horizon (protocol retry timers, watchdogs)
//! go to a small overflow heap and are folded back into the wheel as time
//! advances.
//!
//! Sparse schedules (the span-batched engine's normal regime) are as cheap
//! as dense ones: a 4096-bit slot-occupancy bitmap (64 `u64` words) mirrors
//! which slots hold events, so advancing the clock across an empty stretch
//! is a word-wise `trailing_zeros` scan — at most 64 word reads, usually
//! one — instead of a walk over every slot and entry. The overflow heap is
//! consulted only when the whole wheel is empty (see the horizon invariant
//! on [`TimingWheel::pop`]).
//!
//! Determinism: events that share a timestamp are delivered in ascending
//! order of an *ordering key* computed at push time (see
//! [`TimingWheel::with_order`]); entries with equal keys fire in the order
//! they were scheduled (FIFO by a monotonic sequence number), regardless of
//! which internal structure they travelled through. The default key is
//! constant, which degenerates to plain schedule-order FIFO.
//!
//! The key exists for the sharded engine: a canonical same-timestamp order
//! that depends only on the event itself (not on push order) is what lets a
//! partitioned simulation — where boundary events are pushed by a different
//! thread at a nondeterministic wall-clock moment — replay the sequential
//! engine's schedule exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of slots in the wheel. Must be a power of two. Events scheduled
/// less than `WHEEL_SLOTS` byte-times ahead take the O(1) path.
const WHEEL_SLOTS: usize = 4096;

/// Words of the slot-occupancy bitmap (64 slots per `u64`).
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// An entry waiting in the overflow heap, ordered by `(time, key, seq)`.
struct Overflow<T> {
    time: u64,
    key: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.key, self.seq).cmp(&(other.time, other.key, other.seq))
    }
}

/// A monotonic-time priority queue specialised for near-future scheduling.
///
/// `pop` never returns an item with a timestamp smaller than one already
/// popped; scheduling in the past (before the last popped timestamp) is a
/// logic error and panics in debug builds, and is clamped to "now" in
/// release builds.
///
/// ```
/// use wormcast_sim::wheel::TimingWheel;
/// let mut w = TimingWheel::new();
/// w.push(10, "late");
/// w.push(3, "early");
/// w.push(1_000_000, "overflow-horizon");
/// assert_eq!(w.peek_time(), Some(3));
/// assert_eq!(w.pop(), Some((3, "early")));
/// assert_eq!(w.pop(), Some((10, "late")));
/// assert_eq!(w.pop(), Some((1_000_000, "overflow-horizon")));
/// ```
pub struct TimingWheel<T> {
    /// `(time, key, seq, item)` per entry; `key` is the ordering key
    /// computed at push time by `order`.
    slots: Vec<Vec<(u64, u64, u64, T)>>,
    /// Slot-occupancy bitmap: bit `s` of word `s / 64` is set iff
    /// `slots[s]` is non-empty. Kept exactly in sync by push/pop/fold.
    occupied: [u64; OCC_WORDS],
    /// The earliest time `pop` may still return. Everything below has fired.
    now: u64,
    /// Monotonic tie-breaker so equal-key same-time events fire in schedule
    /// order.
    seq: u64,
    /// Same-timestamp ordering key (see [`Self::with_order`]).
    order: fn(&T) -> u64,
    overflow: BinaryHeap<Reverse<Overflow<T>>>,
    len: usize,
    /// Lifetime counter of `push` calls (engine cost metric).
    pushed: u64,
    /// Lifetime counter of successful `pop` calls.
    popped: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Create an empty wheel positioned at time 0 with plain FIFO
    /// same-timestamp ordering (constant key).
    pub fn new() -> Self {
        Self::with_order(|_| 0)
    }

    /// Create an empty wheel whose same-timestamp delivery order is
    /// ascending `order(item)`, ties broken by schedule order. The key is
    /// evaluated once, at push time.
    pub fn with_order(order: fn(&T) -> u64) -> Self {
        let mut slots = Vec::with_capacity(WHEEL_SLOTS);
        slots.resize_with(WHEEL_SLOTS, Vec::new);
        TimingWheel {
            slots,
            occupied: [0; OCC_WORDS],
            now: 0,
            seq: 0,
            order,
            overflow: BinaryHeap::new(),
            len: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Total items ever scheduled through this wheel.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total items ever popped from this wheel.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the last popped item (the wheel's notion of "now").
    pub fn now(&self) -> u64 {
        self.now
    }

    #[inline]
    fn mark_occupied(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn mark_empty(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// Schedule `item` at absolute time `time`.
    pub fn push(&mut self, time: u64, item: T) {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: t={} now={}",
            time,
            self.now
        );
        let time = time.max(self.now);
        let key = (self.order)(&item);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.pushed += 1;
        if time - self.now < WHEEL_SLOTS as u64 {
            let slot = (time as usize) & (WHEEL_SLOTS - 1);
            self.slots[slot].push((time, key, seq, item));
            self.mark_occupied(slot);
        } else {
            self.overflow.push(Reverse(Overflow {
                time,
                key,
                seq,
                item,
            }));
        }
    }

    /// Move every overflow item that has entered the horizon into the wheel.
    /// Restores the horizon invariant after `now` advances.
    fn fold_overflow(&mut self) {
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.time - self.now < WHEEL_SLOTS as u64 {
                let Reverse(o) = self.overflow.pop().expect("peeked");
                let slot = (o.time as usize) & (WHEEL_SLOTS - 1);
                self.slots[slot].push((o.time, o.key, o.seq, o.item));
                self.mark_occupied(slot);
            } else {
                break;
            }
        }
    }

    /// Distance in byte-times from `now` to the nearest occupied slot
    /// (0 when something is due now), or `None` when the wheel part is
    /// empty. A word-wise circular bit-scan over the occupancy bitmap:
    /// under the horizon invariant the slot index alone determines the
    /// entry time, `now + dist`.
    #[inline]
    fn next_occupied_dist(&self) -> Option<u64> {
        let start = (self.now as usize) & (WHEEL_SLOTS - 1);
        let word0 = start / 64;
        let bit0 = start % 64;
        // Bits at or above the cursor in the cursor's own word.
        let w = self.occupied[word0] & (!0u64 << bit0);
        if w != 0 {
            let slot = word0 * 64 + w.trailing_zeros() as usize;
            return Some((slot - start) as u64);
        }
        // Remaining words in circular order; the cursor word comes around
        // last with only its below-cursor bits (one full wrap).
        for i in 1..=OCC_WORDS {
            let idx = (word0 + i) % OCC_WORDS;
            let mut w = self.occupied[idx];
            if idx == word0 {
                w &= !(!0u64 << bit0);
            }
            if w != 0 {
                let slot = idx * 64 + w.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) & (WHEEL_SLOTS - 1);
                return Some(dist as u64);
            }
        }
        None
    }

    /// Remove and return the earliest `(time, item)` pair, advancing the
    /// wheel's clock to that time. Returns `None` when empty.
    ///
    /// Horizon invariant: every in-wheel entry is due at exactly its slot's
    /// time — slot `s` holds only entries with `time ≡ s (mod WHEEL_SLOTS)`
    /// and `now <= time < now + WHEEL_SLOTS`, so the slot index alone
    /// determines the due time. Pushes enforce the window, and
    /// [`Self::fold_overflow`] runs after every advance of `now`, so
    /// outside this method every overflow entry satisfies
    /// `time >= now + WHEEL_SLOTS`: the overflow heap only needs consulting
    /// when the occupancy bitmap is all zeroes.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        match self.next_occupied_dist() {
            Some(0) => {}
            Some(dist) => {
                // Jump the clock straight to the next occupied slot, then
                // restore the horizon invariant for the widened window.
                self.now += dist;
                self.fold_overflow();
            }
            None => {
                // Wheel empty: the overflow head is the next event.
                let Reverse(top) = self.overflow.peek().expect("len > 0");
                self.now = top.time;
                self.fold_overflow();
            }
        }
        let slot = (self.now as usize) & (WHEEL_SLOTS - 1);
        let due = &mut self.slots[slot];
        debug_assert!(!due.is_empty(), "advanced to an empty slot");
        // Select the minimum `(key, seq)` entry. The slot is usually tiny
        // (a handful of events per byte-time), so a linear scan beats any
        // ordered structure.
        let mut best = 0;
        for i in 1..due.len() {
            if (due[i].1, due[i].2) < (due[best].1, due[best].2) {
                best = i;
            }
        }
        let (time, _key, _seq, item) = due.swap_remove(best);
        debug_assert_eq!(time, self.now, "slot held an entry off its slot time");
        if due.is_empty() {
            self.mark_empty(slot);
        }
        self.len -= 1;
        self.popped += 1;
        Some((time, item))
    }

    /// Peek at the earliest pending timestamp without popping. O(1): a
    /// bitmap scan, falling back to the overflow head only when the wheel
    /// part is empty (valid by the horizon invariant — see [`Self::pop`]).
    pub fn peek_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        match self.next_occupied_dist() {
            Some(dist) => Some(self.now + dist),
            None => {
                let Reverse(top) = self.overflow.peek().expect("len > 0");
                Some(top.time)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse as Rev;
    use std::collections::BinaryHeap;

    #[test]
    fn empty_pops_none() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert!(w.pop().is_none());
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn single_item() {
        let mut w = TimingWheel::new();
        w.push(5, "a");
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_time(), Some(5));
        assert_eq!(w.pop(), Some((5, "a")));
        assert!(w.pop().is_none());
    }

    #[test]
    fn fifo_within_same_time() {
        let mut w = TimingWheel::new();
        w.push(3, 1);
        w.push(3, 2);
        w.push(3, 3);
        assert_eq!(w.pop(), Some((3, 1)));
        assert_eq!(w.pop(), Some((3, 2)));
        assert_eq!(w.pop(), Some((3, 3)));
    }

    #[test]
    fn ordering_across_times() {
        let mut w = TimingWheel::new();
        w.push(10, "later");
        w.push(2, "sooner");
        w.push(7, "middle");
        assert_eq!(w.pop(), Some((2, "sooner")));
        assert_eq!(w.pop(), Some((7, "middle")));
        assert_eq!(w.pop(), Some((10, "later")));
    }

    #[test]
    fn overflow_beyond_horizon() {
        let mut w = TimingWheel::new();
        w.push(1_000_000, "far");
        w.push(1, "near");
        assert_eq!(w.peek_time(), Some(1));
        assert_eq!(w.pop(), Some((1, "near")));
        assert_eq!(w.peek_time(), Some(1_000_000));
        assert_eq!(w.pop(), Some((1_000_000, "far")));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut w = TimingWheel::new();
        w.push(1, 'a');
        assert_eq!(w.pop(), Some((1, 'a')));
        // Schedule relative to the advanced clock.
        w.push(2, 'b');
        w.push(5000, 'c'); // overflow relative to now=1
        assert_eq!(w.pop(), Some((2, 'b')));
        w.push(3, 'd');
        assert_eq!(w.pop(), Some((3, 'd')));
        assert_eq!(w.pop(), Some((5000, 'c')));
    }

    #[test]
    fn overflow_fifo_with_direct_pushes() {
        let mut w = TimingWheel::new();
        // seq 0 goes to overflow (time 6000), seq 1 direct (time 100).
        w.push(6000, "overflow-first");
        w.push(100, "direct");
        assert_eq!(w.pop(), Some((100, "direct")));
        // Now push a same-time rival *after* the overflow item was scheduled:
        // the overflow item (seq 0) must still fire before it (seq 2).
        w.push(6000, "direct-later");
        assert_eq!(w.pop(), Some((6000, "overflow-first")));
        assert_eq!(w.pop(), Some((6000, "direct-later")));
    }

    /// The bitmap must track slot occupancy exactly across a full wheel
    /// wrap-around, including slots in the cursor's own word behind the
    /// cursor bit.
    #[test]
    fn bitmap_survives_wraparound() {
        let mut w = TimingWheel::new();
        // Advance now into the middle of a word so the circular scan has
        // to wrap (slot of time 100 is bit 36 of word 1).
        w.push(100, 0u32);
        assert_eq!(w.pop(), Some((100, 0)));
        // A slot *behind* the cursor in circular order: time 4130 maps to
        // slot 34, below the cursor's slot 100.
        w.push(4130, 1u32);
        assert_eq!(w.peek_time(), Some(4130));
        assert_eq!(w.pop(), Some((4130, 1)));
        assert!(w.is_empty());
    }

    /// Sparse-schedule differential test: idle gaps far longer than the
    /// wheel horizon, so almost every push lands in overflow and almost
    /// every pop crosses a horizon boundary. Also asserts the peek/pop
    /// consistency property at every step.
    #[test]
    fn matches_reference_heap_sparse_gaps() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5BA6);
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut reference: BinaryHeap<Rev<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            if rng.gen_bool(0.5) || w.is_empty() {
                // Gaps of up to ~16 horizons, biased well past WHEEL_SLOTS.
                let ahead: u64 = if rng.gen_bool(0.3) {
                    rng.gen_range(0..8)
                } else {
                    rng.gen_range(4_000..65_536)
                };
                let t = now + ahead;
                w.push(t, seq);
                reference.push(Rev((t, seq)));
                seq += 1;
            } else {
                let peeked = w.peek_time().expect("non-empty");
                let (tw, item) = w.pop().expect("non-empty");
                assert_eq!(peeked, tw, "peek_time disagreed with pop");
                let Rev((tr, id)) = reference.pop().expect("non-empty");
                assert_eq!((tw, item), (tr, id));
                now = tw;
            }
        }
        while !w.is_empty() {
            assert_eq!(w.peek_time(), Some(reference.peek().unwrap().0 .0));
            let (tw, item) = w.pop().unwrap();
            let Rev((tr, id)) = reference.pop().unwrap();
            assert_eq!((tw, item), (tr, id));
        }
        assert!(reference.is_empty());
    }

    /// Overflow folding interleaved with direct pushes at *equal*
    /// timestamps: FIFO by schedule order must hold no matter which path
    /// (wheel or overflow) each entry travelled.
    #[test]
    fn overflow_fold_interleaving_at_equal_times() {
        let mut w = TimingWheel::new();
        let t = 10_000u64; // far beyond the horizon from now=0
        // Alternate overflow pushes (t is out of horizon) with near pushes
        // that drag `now` forward between them.
        w.push(t, 100); // overflow, seq 0
        w.push(5, 0); // wheel, seq 1
        assert_eq!(w.pop(), Some((5, 0)));
        w.push(t, 101); // still overflow from now=5, seq 2
        w.push(t - 4_000, 1); // wheel after fold boundary shifts, seq 3
        assert_eq!(w.pop(), Some((t - 4_000, 1)));
        // From now = t-4000 the time t is in-horizon: direct wheel pushes
        // now share a slot with folded overflow entries.
        w.push(t, 102); // wheel, seq 4
        w.push(t, 103); // wheel, seq 5
        // Delivery order at time t must be seq order: 100, 101, 102, 103.
        assert_eq!(w.pop(), Some((t, 100)));
        assert_eq!(w.pop(), Some((t, 101)));
        assert_eq!(w.pop(), Some((t, 102)));
        assert_eq!(w.pop(), Some((t, 103)));
        assert!(w.is_empty());
    }

    /// Property: whenever the wheel is non-empty, `peek_time()` equals the
    /// time of the next `pop()` — across dense bursts, multi-horizon gaps
    /// and overflow-only states.
    #[test]
    fn peek_time_always_matches_next_pop() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let mut now = 0u64;
        let mut id = 0u32;
        for round in 0..2_000 {
            let burst = rng.gen_range(1usize..6);
            for _ in 0..burst {
                let ahead: u64 = match round % 3 {
                    0 => rng.gen_range(0..32),          // dense
                    1 => rng.gen_range(3_000..5_000),   // straddles horizon
                    _ => rng.gen_range(10_000..50_000), // overflow-only
                };
                w.push(now + ahead, id);
                id += 1;
            }
            let drain = rng.gen_range(0..=burst);
            for _ in 0..drain {
                let peeked = w.peek_time().expect("non-empty");
                let (t, _) = w.pop().expect("non-empty");
                assert_eq!(peeked, t);
                now = t;
            }
        }
        while let Some(peeked) = w.peek_time() {
            let (t, _) = w.pop().expect("peek said non-empty");
            assert_eq!(peeked, t);
        }
    }

    /// A keyed wheel delivers same-timestamp entries in key order, ties in
    /// schedule order — across the wheel/overflow boundary and across
    /// pushes made *while* the slot is draining.
    #[test]
    fn keyed_order_within_same_time() {
        let mut w: TimingWheel<(u64, char)> = TimingWheel::with_order(|&(k, _)| k);
        w.push(10_000, (2, 'c')); // overflow from now=0
        w.push(5, (9, 'x'));
        assert_eq!(w.pop(), Some((5, (9, 'x'))));
        w.push(10_000, (1, 'a')); // still overflow from now=5
        w.push(10_000, (3, 'd')); // overflow
        assert_eq!(w.peek_time(), Some(10_000));
        assert_eq!(w.pop(), Some((10_000, (1, 'a'))));
        // Push mid-drain with the smallest key: it must still come next.
        w.push(10_000, (0, 'z'));
        w.push(10_000, (2, 'b')); // equal key to 'c', scheduled later
        assert_eq!(w.pop(), Some((10_000, (0, 'z'))));
        assert_eq!(w.pop(), Some((10_000, (2, 'c'))));
        assert_eq!(w.pop(), Some((10_000, (2, 'b'))));
        assert_eq!(w.pop(), Some((10_000, (3, 'd'))));
        assert!(w.is_empty());
    }

    /// Differential test against a reference binary heap.
    #[test]
    fn matches_reference_heap() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut reference: BinaryHeap<Rev<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..20_000 {
            if rng.gen_bool(0.6) || w.is_empty() {
                let ahead: u64 = if rng.gen_bool(0.9) {
                    rng.gen_range(0..64)
                } else {
                    rng.gen_range(0..100_000)
                };
                let t = now + ahead;
                w.push(t, seq);
                reference.push(Rev((t, seq)));
                seq += 1;
            } else {
                let (tw, item) = w.pop().expect("non-empty");
                let Rev((tr, id)) = reference.pop().expect("non-empty");
                assert_eq!((tw, item), (tr, id));
                now = tw;
            }
        }
        while let Some((tw, item)) = w.pop() {
            let Rev((tr, id)) = reference.pop().expect("same length");
            assert_eq!((tw, item), (tr, id));
        }
        assert!(reference.is_empty());
    }
}
