//! A timing wheel for the event queue hot path.
//!
//! Almost every event in a byte-level wormhole simulation is scheduled a few
//! byte-times into the future (the next byte on a link, a propagation delay).
//! A binary heap pays `O(log n)` for each of those; a timing wheel pays
//! `O(1)`. Events beyond the wheel horizon (protocol retry timers, watchdogs)
//! go to a small overflow heap and are folded back into the wheel as time
//! advances.
//!
//! Determinism: events that share a timestamp are delivered in the order they
//! were scheduled (FIFO by a monotonic sequence number), regardless of which
//! internal structure they travelled through.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of slots in the wheel. Must be a power of two. Events scheduled
/// less than `WHEEL_SLOTS` byte-times ahead take the O(1) path.
const WHEEL_SLOTS: usize = 4096;

/// An entry waiting in the overflow heap, ordered by `(time, seq)`.
struct Overflow<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A monotonic-time priority queue specialised for near-future scheduling.
///
/// `pop` never returns an item with a timestamp smaller than one already
/// popped; scheduling in the past (before the last popped timestamp) is a
/// logic error and panics in debug builds, and is clamped to "now" in
/// release builds.
///
/// ```
/// use wormcast_sim::wheel::TimingWheel;
/// let mut w = TimingWheel::new();
/// w.push(10, "late");
/// w.push(3, "early");
/// w.push(1_000_000, "overflow-horizon");
/// assert_eq!(w.pop(), Some((3, "early")));
/// assert_eq!(w.pop(), Some((10, "late")));
/// assert_eq!(w.pop(), Some((1_000_000, "overflow-horizon")));
/// ```
pub struct TimingWheel<T> {
    slots: Vec<Vec<(u64, u64, T)>>,
    /// The earliest time `pop` may still return. Everything below has fired.
    now: u64,
    /// Monotonic tie-breaker so same-time events fire in schedule order.
    seq: u64,
    overflow: BinaryHeap<Reverse<Overflow<T>>>,
    len: usize,
    /// Lifetime counter of `push` calls (engine cost metric).
    pushed: u64,
    /// Lifetime counter of successful `pop` calls.
    popped: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Create an empty wheel positioned at time 0.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(WHEEL_SLOTS);
        slots.resize_with(WHEEL_SLOTS, Vec::new);
        TimingWheel {
            slots,
            now: 0,
            seq: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Total items ever scheduled through this wheel.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total items ever popped from this wheel.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the last popped item (the wheel's notion of "now").
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule `item` at absolute time `time`.
    pub fn push(&mut self, time: u64, item: T) {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: t={} now={}",
            time,
            self.now
        );
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.pushed += 1;
        if time - self.now < WHEEL_SLOTS as u64 {
            let slot = (time as usize) & (WHEEL_SLOTS - 1);
            self.slots[slot].push((time, seq, item));
        } else {
            self.overflow.push(Reverse(Overflow { time, seq, item }));
        }
    }

    /// Remove and return the earliest `(time, item)` pair, advancing the
    /// wheel's clock to that time. Returns `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Fold any overflow items that have entered the horizon.
            while let Some(Reverse(top)) = self.overflow.peek() {
                if top.time - self.now < WHEEL_SLOTS as u64 {
                    let Reverse(o) = self.overflow.pop().expect("peeked");
                    let slot = (o.time as usize) & (WHEEL_SLOTS - 1);
                    self.slots[slot].push((o.time, o.seq, o.item));
                } else {
                    break;
                }
            }
            let slot = (self.now as usize) & (WHEEL_SLOTS - 1);
            if !self.slots[slot].is_empty() {
                // All entries in a slot within the horizon share `self.now`
                // as their time only if they were due now; a slot can hold a
                // mix of `now` and `now + WHEEL_SLOTS`? No: pushes are
                // restricted to the horizon, so every entry here is due at
                // exactly `self.now`. Deliver in seq order.
                let due = &mut self.slots[slot];
                // Entries are almost always already seq-ordered (pushes are
                // monotonic), but overflow folding can interleave; find the
                // minimum seq.
                let mut best = 0;
                for i in 1..due.len() {
                    if due[i].1 < due[best].1 {
                        best = i;
                    }
                }
                let (time, _seq, item) = due.swap_remove(best);
                debug_assert_eq!(time, self.now);
                self.len -= 1;
                self.popped += 1;
                return Some((time, item));
            }
            // Nothing due now: jump the clock. If the overflow heap's head is
            // nearer than anything in the wheel we must not skip past wheel
            // entries, so advance one horizon at most, slot by slot.
            match self.next_time_after() {
                Some(t) => self.now = t,
                None => return None,
            }
        }
    }

    /// Find the next timestamp with a pending item, strictly after scanning
    /// from `self.now` (exclusive of already-drained slots).
    fn next_time_after(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for slot in &self.slots {
            for &(t, _, _) in slot.iter() {
                if t >= self.now && best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        if let Some(Reverse(top)) = self.overflow.peek() {
            if best.is_none_or(|b| top.time < b) {
                best = Some(top.time);
            }
        }
        best
    }

    /// Peek at the earliest pending timestamp without popping.
    pub fn peek_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        // Fast path: something due at `now`.
        let slot = (self.now as usize) & (WHEEL_SLOTS - 1);
        if self.slots[slot].iter().any(|&(t, _, _)| t == self.now) {
            return Some(self.now);
        }
        self.next_time_after()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse as Rev;
    use std::collections::BinaryHeap;

    #[test]
    fn empty_pops_none() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn single_item() {
        let mut w = TimingWheel::new();
        w.push(5, "a");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((5, "a")));
        assert!(w.pop().is_none());
    }

    #[test]
    fn fifo_within_same_time() {
        let mut w = TimingWheel::new();
        w.push(3, 1);
        w.push(3, 2);
        w.push(3, 3);
        assert_eq!(w.pop(), Some((3, 1)));
        assert_eq!(w.pop(), Some((3, 2)));
        assert_eq!(w.pop(), Some((3, 3)));
    }

    #[test]
    fn ordering_across_times() {
        let mut w = TimingWheel::new();
        w.push(10, "later");
        w.push(2, "sooner");
        w.push(7, "middle");
        assert_eq!(w.pop(), Some((2, "sooner")));
        assert_eq!(w.pop(), Some((7, "middle")));
        assert_eq!(w.pop(), Some((10, "later")));
    }

    #[test]
    fn overflow_beyond_horizon() {
        let mut w = TimingWheel::new();
        w.push(1_000_000, "far");
        w.push(1, "near");
        assert_eq!(w.pop(), Some((1, "near")));
        assert_eq!(w.pop(), Some((1_000_000, "far")));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut w = TimingWheel::new();
        w.push(1, 'a');
        assert_eq!(w.pop(), Some((1, 'a')));
        // Schedule relative to the advanced clock.
        w.push(2, 'b');
        w.push(5000, 'c'); // overflow relative to now=1
        assert_eq!(w.pop(), Some((2, 'b')));
        w.push(3, 'd');
        assert_eq!(w.pop(), Some((3, 'd')));
        assert_eq!(w.pop(), Some((5000, 'c')));
    }

    #[test]
    fn overflow_fifo_with_direct_pushes() {
        let mut w = TimingWheel::new();
        // seq 0 goes to overflow (time 6000), seq 1 direct (time 100).
        w.push(6000, "overflow-first");
        w.push(100, "direct");
        assert_eq!(w.pop(), Some((100, "direct")));
        // Now push a same-time rival *after* the overflow item was scheduled:
        // the overflow item (seq 0) must still fire before it (seq 2).
        w.push(6000, "direct-later");
        assert_eq!(w.pop(), Some((6000, "overflow-first")));
        assert_eq!(w.pop(), Some((6000, "direct-later")));
    }

    /// Differential test against a reference binary heap.
    #[test]
    fn matches_reference_heap() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let mut w: TimingWheel<u64> = TimingWheel::new();
        let mut reference: BinaryHeap<Rev<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..20_000 {
            if rng.gen_bool(0.6) || w.is_empty() {
                let ahead: u64 = if rng.gen_bool(0.9) {
                    rng.gen_range(0..64)
                } else {
                    rng.gen_range(0..100_000)
                };
                let t = now + ahead;
                w.push(t, seq);
                reference.push(Rev((t, seq)));
                seq += 1;
            } else {
                let (tw, item) = w.pop().expect("non-empty");
                let Rev((tr, id)) = reference.pop().expect("non-empty");
                assert_eq!((tw, item), (tr, id));
                now = tw;
            }
        }
        while let Some((tw, item)) = w.pop() {
            let Rev((tr, id)) = reference.pop().expect("same length");
            assert_eq!((tw, item), (tr, id));
        }
        assert!(reference.is_empty());
    }
}
