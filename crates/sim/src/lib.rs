//! # wormcast-sim — byte-level wormhole network simulator
//!
//! A deterministic, event-driven simulator of a Myrinet-class wormhole-routing
//! LAN, modelled at **byte granularity** (the unit of time is one *byte-time*:
//! the time to move one byte across a link — about 12.5 ns at 640 Mb/s).
//!
//! The fabric model follows the SIGCOMM '96 paper "Multicasting Protocols for
//! High-Speed, Wormhole-Routing Local Area Networks" (Gerla, Palnati, Walton)
//! and the Myrinet architecture it references:
//!
//! * **Wormhole routing** — a worm advances head-first through crossbar
//!   switches; the head byte of the worm at each switch is a source-route
//!   byte that selects the output port and is stripped.
//! * **Backpressure flow control** — each switch input port has a small
//!   *slack buffer* with a high watermark (send `STOP` upstream) and a low
//!   watermark (send `GO`), exactly as in Figure 1 of the paper.
//! * **Source routing** — worms carry their entire route; switches keep no
//!   routing state.
//! * **Host adapters** — programmable interface cards ("LANai") where the
//!   paper's host-adapter multicast protocols live. Protocol behaviour is
//!   plugged in through the [`protocol::AdapterProtocol`] trait; the
//!   protocols themselves are implemented in the `wormcast-core` crate.
//!
//! As in the paper's simulator, **backpressure is not propagated from the
//! host adapter into the network**: a worm arriving at an adapter is always
//! drained at link rate, and is dropped (and counted) if the adapter refuses
//! it. Reliability on top of that is the protocols' job.
//!
//! The engine is single-threaded and fully deterministic: the same seed and
//! configuration replay the same event sequence byte for byte.

pub mod adapter;
pub mod config;
pub mod deadlock;
pub mod engine;
pub mod fault;
pub mod link;
pub mod network;
pub mod protocol;
pub mod shard;
pub mod slab;
pub mod switch;
pub mod switchcast;
pub mod time;
pub mod trace;
pub mod wheel;
pub mod worm;

pub use config::{ConfigError, NetworkConfigBuilder};
pub use engine::{Event, Scheduler};
pub use fault::FaultConfig;
pub use network::{Network, NetworkConfig, RunOutcome};
pub use protocol::{AdapterProtocol, Command, ProtocolCtx};
pub use time::SimTime;
pub use trace::{BlockCause, Trace, TraceConfig, TraceEvent};
pub use worm::{ByteKind, RouteSym, WireByte, WormId, WormInstance, WormKind, WormMeta};

/// One-stop imports for driving the simulator:
/// `use wormcast_sim::prelude::*;`.
pub mod prelude {
    pub use crate::config::{ConfigError, NetworkConfigBuilder};
    pub use crate::deadlock::DeadlockReport;
    pub use crate::engine::{HostId, SwitchId};
    pub use crate::fault::FaultConfig;
    pub use crate::link::{
        ChanId, Lane, LaneArbiter, LaneArbiterKind, LaneCandidate, LeastOccupied, Link,
        LinkId, LinkStats, NodeRef, PortId, RxPort, SeededRoundRobin, SpanInFlight, TxPort,
    };
    pub use crate::network::{
        FabricSpec, HostAttach, LinkSpec, NetStats, Network, NetworkConfig, RouteTable,
        RunOutcome, SimMode,
    };
    pub use crate::protocol::{
        AdapterProtocol, Admission, Command, Destination, ProtocolCtx, SendSpec, SourceMessage,
    };
    pub use crate::shard::ShardedNetwork;
    pub use crate::switch::SlackCfg;
    pub use crate::switchcast::SwitchcastMode;
    pub use crate::time::SimTime;
    pub use crate::trace::{BlockCause, Trace, TraceConfig, TraceEvent};
    pub use crate::worm::{MessageId, WormId};
}

