//! The crossbar switch: slack buffers, backpressure, route parsing,
//! round-robin output arbitration, and cut-through forwarding.
//!
//! A Myrinet switch is deliberately simple: per-input slack buffers with
//! STOP/GO watermarks (Figure 1 of the paper), a crossbar, and head-byte
//! route processing. All of that lives here. The switch-level *multicast*
//! extensions of Section 3 (worm replication in the crossbar) plug in via
//! [`crate::switchcast`].

use crate::engine::{CtrlSym, SwitchId};
use crate::link::{ChanId, LaneArbiter, LaneCandidate};
use crate::network::Network;
use crate::time::SimTime;
use crate::worm::{ByteKind, RouteSym, WireByte, WormId, WormKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Slack-buffer configuration (Figure 1): capacity and the two watermarks.
///
/// Myrinet sizes the slack so that the bytes in flight during a STOP
/// round-trip always fit: `capacity >= stop_mark + 2 * link_delay + slop`.
/// [`SlackCfg::for_delay`] computes a safe configuration for a given link
/// delay.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlackCfg {
    /// Total buffer capacity in bytes.
    pub capacity: u32,
    /// High watermark `Ks`: crossing it (upward) sends STOP upstream.
    pub stop_mark: u32,
    /// Low watermark `Kg`: crossing it (downward) sends GO upstream.
    pub go_mark: u32,
}

impl SlackCfg {
    /// A slack configuration that can never overflow for links of the given
    /// propagation delay: after STOP is sent, at most `2 * delay` more bytes
    /// can arrive (those on the wire plus those sent before STOP lands).
    pub fn for_delay(delay: SimTime) -> Self {
        let rtt = (2 * delay) as u32;
        SlackCfg {
            stop_mark: 8 + rtt / 2,
            go_mark: 4,
            capacity: 8 + rtt / 2 + rtt + 8,
        }
    }

    /// Validate the invariants between the marks.
    pub fn validate(&self) -> Result<(), String> {
        if self.go_mark >= self.stop_mark {
            return Err(format!(
                "go_mark ({}) must be below stop_mark ({})",
                self.go_mark, self.stop_mark
            ));
        }
        if self.stop_mark >= self.capacity {
            return Err(format!(
                "stop_mark ({}) must be below capacity ({})",
                self.stop_mark, self.capacity
            ));
        }
        Ok(())
    }
}

/// Input-port worm-processing state.
///
/// Port indices distinguish *physical* ports (what route bytes name) from
/// *slots* (a physical port × lane pair; see [`Switch`]). `Requesting.out`
/// is the physical port — the lane is not chosen until the grant —
/// while `Forwarding.out` is the granted output slot. With single-lane
/// links the two coincide.
#[derive(Debug)]
pub enum InState {
    /// Waiting for the head of a new worm; the next front byte must be a
    /// route byte.
    Idle,
    /// Directive parsed; waiting for the (physical) output port to be
    /// granted a lane.
    Requesting { worm: WormId, out: u8 },
    /// Crossbar connection established; the output slot pulls bytes from
    /// this input's slack buffer.
    Forwarding { worm: WormId, out: u8 },
    /// Switch-level multicast replication in progress (Section 3).
    Replicating(Box<crate::switchcast::ReplicaState>),
    /// Discarding the rest of a worm that was flushed (Backward Reset).
    Draining { worm: WormId },
}

/// An input port of a switch.
#[derive(Debug)]
pub struct InPort {
    /// The channel delivering bytes into this port (None if unconnected).
    pub chan_in: Option<ChanId>,
    /// The slack buffer.
    pub buf: VecDeque<WireByte>,
    pub slack: SlackCfg,
    /// True while our STOP is in force upstream.
    pub sent_stop: bool,
    pub state: InState,
    /// Bytes dropped at this input (only possible with fault injection or a
    /// flush; plain backpressure never overflows a validated slack buffer).
    pub dropped_bytes: u64,
}

impl InPort {
    pub fn new(slack: SlackCfg) -> Self {
        InPort {
            chan_in: None,
            // The slack buffer is bounded by its configured capacity;
            // reserving it up front keeps the per-byte enqueue path free
            // of allocator calls for the life of the simulation.
            buf: VecDeque::with_capacity(slack.capacity as usize),
            slack,
            sent_stop: false,
            state: InState::Idle,
            dropped_bytes: 0,
        }
    }

    /// Current occupancy in bytes.
    #[inline]
    pub fn occupancy(&self) -> u32 {
        self.buf.len() as u32
    }
}

/// An output slot of a switch: one lane of one physical output port.
#[derive(Debug)]
pub struct OutPort {
    /// The lane this slot transmits on (None if unconnected).
    pub chan_out: Option<ChanId>,
    /// Input slot currently granted the crossbar connection.
    pub owner: Option<u8>,
    /// When this slot last began transmitting IDLE fill bytes, if it is
    /// currently doing so (used by the multicast-IDLE flush scheme).
    pub idle_since: Option<SimTime>,
    /// Flagged as carrying IDLE fill from a blocked multicast.
    pub multicast_idle: bool,
}

impl OutPort {
    pub fn new() -> Self {
        OutPort {
            chan_out: None,
            owner: None,
            idle_since: None,
            multicast_idle: false,
        }
    }
}

impl Default for OutPort {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-physical-output-port arbitration state: the input slots queued for
/// the port (input round-robin, exactly the historical policy) plus the
/// pluggable [`LaneArbiter`] that picks among its free lanes.
#[derive(Debug)]
pub struct PortArb {
    /// Input slots waiting for this physical port (worm heads blocked here).
    pub waiting: Vec<u8>,
    /// Round-robin pointer: the next arbitration starts scanning here.
    pub rr_next: u8,
    arbiter: Box<dyn LaneArbiter>,
}

impl PortArb {
    pub(crate) fn new(arbiter: Box<dyn LaneArbiter>) -> Self {
        PortArb {
            waiting: Vec::new(),
            rr_next: 0,
            arbiter,
        }
    }

    /// Pick the next waiting input slot in round-robin order (starting
    /// from `rr_next`) and remove it from the waiting list.
    pub fn arbitrate(&mut self, num_slots: u8) -> Option<u8> {
        if self.waiting.is_empty() {
            return None;
        }
        for step in 0..num_slots {
            let cand = (self.rr_next + step) % num_slots;
            if let Some(pos) = self.waiting.iter().position(|&w| w == cand) {
                self.waiting.swap_remove(pos);
                self.rr_next = (cand + 1) % num_slots;
                return Some(cand);
            }
        }
        // Waiting entries must always be valid slot indices.
        unreachable!("waiting list held an out-of-range slot");
    }

    /// Delegate a free-lane choice to the pluggable arbiter.
    pub(crate) fn pick_lane(&mut self, candidates: &[LaneCandidate], num_lanes: u8) -> usize {
        let idx = self.arbiter.pick(candidates, num_lanes);
        debug_assert!(idx < candidates.len(), "arbiter picked out of range");
        idx.min(candidates.len() - 1)
    }
}

/// A crossbar switch.
///
/// Inputs and outputs are indexed by *slot*: physical port `p`'s lanes
/// occupy the contiguous slot range `slot_of(p, 0) .. slot_of(p, lanes_of(p))`.
/// With single-lane links (the paper's Myrinet) slot indices equal
/// physical port indices and the whole layer is invisible.
#[derive(Debug)]
pub struct Switch {
    pub id: SwitchId,
    /// Input slots.
    pub inputs: Vec<InPort>,
    /// Output slots.
    pub outputs: Vec<OutPort>,
    /// Per-physical-port arbitration state.
    pub arbs: Vec<PortArb>,
    slot_base: Vec<u8>,
    slot_port: Vec<u8>,
    port_lanes: Vec<u8>,
}

impl Switch {
    pub(crate) fn new(
        id: SwitchId,
        port_lanes: &[u8],
        slack: SlackCfg,
        mut arb: impl FnMut(u8) -> Box<dyn LaneArbiter>,
    ) -> Self {
        let mut slot_base = Vec::with_capacity(port_lanes.len());
        let mut slot_port = Vec::new();
        let mut base = 0u8;
        for (p, &n) in port_lanes.iter().enumerate() {
            debug_assert!(n >= 1, "every port has at least one lane");
            slot_base.push(base);
            for _ in 0..n {
                slot_port.push(p as u8);
            }
            base += n;
        }
        let slots = slot_port.len();
        Switch {
            id,
            inputs: (0..slots).map(|_| InPort::new(slack)).collect(),
            outputs: (0..slots).map(|_| OutPort::new()).collect(),
            arbs: (0..port_lanes.len())
                .map(|p| PortArb::new(arb(p as u8)))
                .collect(),
            slot_base,
            slot_port,
            port_lanes: port_lanes.to_vec(),
        }
    }

    /// Number of physical ports.
    pub fn num_ports(&self) -> u8 {
        self.port_lanes.len() as u8
    }

    /// Number of port slots (sum of lanes over physical ports).
    pub fn num_slots(&self) -> u8 {
        self.slot_port.len() as u8
    }

    /// The slot of lane `lane` of physical port `port`.
    pub fn slot_of(&self, port: u8, lane: u8) -> u8 {
        debug_assert!(lane < self.port_lanes[port as usize]);
        self.slot_base[port as usize] + lane
    }

    /// The physical port a slot belongs to.
    pub fn port_of_slot(&self, slot: u8) -> u8 {
        self.slot_port[slot as usize]
    }

    /// Lanes of a physical port.
    pub fn lanes_of(&self, port: u8) -> u8 {
        self.port_lanes[port as usize]
    }

    /// The contiguous slot range of a physical port.
    pub fn slots_of(&self, port: u8) -> std::ops::Range<usize> {
        let b = self.slot_base[port as usize] as usize;
        b..b + self.port_lanes[port as usize] as usize
    }
}

// ---------------------------------------------------------------------------
// Switch event logic (methods on Network so it can touch channels/scheduler).
// ---------------------------------------------------------------------------

impl Network {
    /// A byte arrived at input `port` of switch `sw`.
    pub(crate) fn switch_rx_byte(&mut self, sw: SwitchId, port: u8, byte: WireByte) {
        let (occupancy, chan_in, crossed_stop, overflowed) = {
            let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
            if inp.occupancy() >= inp.slack.capacity {
                // A validated slack buffer never overflows under plain
                // backpressure; this can only happen with fault injection or
                // a misconfiguration. Count and drop.
                inp.dropped_bytes += 1;
                (inp.occupancy(), inp.chan_in, false, true)
            } else {
                inp.buf.push_back(byte);
                let occ = inp.occupancy();
                let crossed = occ >= inp.slack.stop_mark && !inp.sent_stop;
                if crossed {
                    inp.sent_stop = true;
                }
                (occ, inp.chan_in, crossed, false)
            }
        };
        debug_assert!(
            !overflowed,
            "slack buffer overflow at switch {sw:?} port {port} (occupancy {occupancy})"
        );
        // A replicating input regenerates its own IDLE fills; upstream
        // fills are dropped so they never count as body bytes.
        if matches!(byte.kind, ByteKind::Idle)
            && matches!(
                self.switches[sw.0 as usize].inputs[port as usize].state,
                InState::Replicating(_)
            )
        {
            let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
            // The byte was just pushed; remove it again.
            if matches!(inp.buf.back().map(|b| b.kind), Some(ByteKind::Idle)) {
                inp.buf.pop_back();
            }
            return;
        }
        if crossed_stop {
            if let Some(ch) = chan_in {
                self.send_ctrl(ch, CtrlSym::Stop);
            }
        }
        self.switch_advance_input(sw, port);
    }

    /// Drive the input-port state machine: parse directives at the buffer
    /// front, request outputs, and kick granted output channels.
    pub(crate) fn switch_advance_input(&mut self, sw: SwitchId, port: u8) {
        loop {
            let action = {
                let inp = &self.switches[sw.0 as usize].inputs[port as usize];
                match &inp.state {
                    InState::Idle => match inp.buf.front() {
                        None => InputAction::None,
                        Some(front) => match front.kind {
                            ByteKind::Route(RouteSym::Port(p)) => {
                                let worm = front.worm;
                                if matches!(
                                    self.worms[worm.0 as usize].meta.kind,
                                    WormKind::SwitchMulticast { .. }
                                ) {
                                    InputAction::BeginMulticastParse
                                } else {
                                    InputAction::ParseUnicast { worm, out: p }
                                }
                            }
                            ByteKind::Route(RouteSym::Broadcast) => {
                                InputAction::BeginMulticastParse
                            }
                            ByteKind::Idle => InputAction::DiscardFront,
                            other => {
                                unreachable!(
                                    "idle input saw non-route byte {other:?} at {sw:?}:{port}"
                                )
                            }
                        },
                    },
                    InState::Requesting { .. } => InputAction::None,
                    InState::Forwarding { out, .. } => InputAction::KickOut { out: *out },
                    InState::Replicating(_) => InputAction::AdvanceReplica,
                    InState::Draining { worm } => match inp.buf.front() {
                        Some(front) if front.worm == *worm => {
                            if matches!(front.kind, ByteKind::Tail) {
                                InputAction::FinishDrain
                            } else {
                                InputAction::DiscardFront
                            }
                        }
                        _ => InputAction::None,
                    },
                }
            };
            match action {
                InputAction::None => return,
                InputAction::ParseUnicast { worm, out } => {
                    {
                        let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
                        inp.buf.pop_front();
                        inp.state = InState::Requesting { worm, out };
                    }
                    if self.trace.enabled() {
                        let worm = self.worm_name(worm);
                        self.trace.push(
                            self.scheduler.now(),
                            crate::trace::TraceEvent::RouteConsumed {
                                worm,
                                switch: sw,
                                out,
                            },
                        );
                    }
                    self.after_slack_dequeue(sw, port);
                    self.switch_request_output(sw, out, port);
                    // Whether granted or queued, nothing more to parse until
                    // this worm completes.
                    return;
                }
                InputAction::BeginMulticastParse => {
                    self.switchcast_begin_parse(sw, port);
                    return;
                }
                InputAction::AdvanceReplica => {
                    self.switchcast_advance(sw, port);
                    return;
                }
                InputAction::DiscardFront => {
                    {
                        let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
                        inp.buf.pop_front();
                        inp.dropped_bytes += 1;
                    }
                    self.after_slack_dequeue(sw, port);
                    // Loop: keep examining the front.
                }
                InputAction::FinishDrain => {
                    {
                        let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
                        inp.buf.pop_front(); // the tail byte
                        inp.dropped_bytes += 1;
                        inp.state = InState::Idle;
                    }
                    self.after_slack_dequeue(sw, port);
                    // Loop: the next worm's head may already be buffered.
                }
                InputAction::KickOut { out } => {
                    let ch = self.switches[sw.0 as usize].outputs[out as usize].chan_out;
                    if let Some(ch) = ch {
                        self.kick_channel(ch);
                    }
                    return;
                }
            }
        }
    }

    /// An input slot asks for a *physical* output port. Grants a lane
    /// immediately when one is free (the [`LaneArbiter`] picks which),
    /// otherwise queues the request for round-robin arbitration.
    pub(crate) fn switch_request_output(&mut self, sw: SwitchId, out: u8, in_port: u8) {
        let granted = {
            let n = self.switches[sw.0 as usize].lanes_of(out);
            if n == 1 {
                // Single-lane fast path: the historical grant-or-queue,
                // no arbiter consultation.
                let swm = &mut self.switches[sw.0 as usize];
                let slot = swm.slot_of(out, 0);
                let outp = &mut swm.outputs[slot as usize];
                if outp.owner.is_none() {
                    outp.owner = Some(in_port);
                    Some(slot)
                } else {
                    swm.arbs[out as usize].waiting.push(in_port);
                    None
                }
            } else {
                let candidates: Vec<LaneCandidate> = {
                    let swr = &self.switches[sw.0 as usize];
                    let base = swr.slots_of(out).start;
                    swr.slots_of(out)
                        .filter_map(|s| {
                            let o = &swr.outputs[s];
                            if o.owner.is_some() {
                                return None;
                            }
                            o.chan_out.map(|ch| LaneCandidate {
                                lane: (s - base) as u8,
                                in_flight: self.lanes[ch.0 as usize].in_flight(),
                            })
                        })
                        .collect()
                };
                if candidates.is_empty() {
                    self.switches[sw.0 as usize].arbs[out as usize]
                        .waiting
                        .push(in_port);
                    None
                } else {
                    let swm = &mut self.switches[sw.0 as usize];
                    let idx = swm.arbs[out as usize].pick_lane(&candidates, n);
                    let slot = swm.slot_of(out, candidates[idx].lane);
                    swm.outputs[slot as usize].owner = Some(in_port);
                    Some(slot)
                }
            }
        };
        if let Some(out_slot) = granted {
            self.switch_grant(sw, out_slot, in_port);
        } else if self.trace.enabled() {
            if let Some((worm, cause)) = self.blocked_requester(sw, out, in_port) {
                self.trace.push(
                    self.scheduler.now(),
                    crate::trace::TraceEvent::WormBlocked { worm, cause },
                );
            }
        }
    }

    /// The worm (and block cause) behind a queued output request: a plain
    /// head waiting on a busy output, or a switchcast replica branch
    /// waiting at its branching node. `out` is the physical port — the
    /// same index on the Blocked and Resumed sides, so causes pair up.
    fn blocked_requester(
        &self,
        sw: SwitchId,
        out: u8,
        in_port: u8,
    ) -> Option<(u64, crate::trace::BlockCause)> {
        match &self.switches[sw.0 as usize].inputs[in_port as usize].state {
            InState::Requesting { worm, .. } => Some((
                self.worm_name(*worm),
                crate::trace::BlockCause::OutputBusy { switch: sw, out },
            )),
            InState::Replicating(rep) => Some((
                self.worm_name(rep.worm),
                crate::trace::BlockCause::BranchWait { switch: sw, out },
            )),
            _ => None,
        }
    }

    /// Complete a grant of output slot `out` to input slot `in_port`: flip
    /// the input to Forwarding (or mark the replica branch granted) and
    /// kick the output lane so it pulls bytes.
    fn switch_grant(&mut self, sw: SwitchId, out: u8, in_port: u8) {
        let phys = self.switches[sw.0 as usize].port_of_slot(out);
        let replicating = {
            let inp = &mut self.switches[sw.0 as usize].inputs[in_port as usize];
            match inp.state {
                InState::Requesting { worm, out: o } => {
                    debug_assert_eq!(o, phys, "granted slot belongs to the requested port");
                    inp.state = InState::Forwarding { worm, out };
                    false
                }
                InState::Replicating(_) => true,
                ref other => unreachable!("grant to input in state {other:?}"),
            }
        };
        if replicating {
            self.switchcast_granted(sw, out, in_port);
            return;
        }
        if let Some(ch) = self.switches[sw.0 as usize].outputs[out as usize].chan_out {
            self.kick_channel(ch);
        }
    }

    /// Output slot `out` finished a worm (tail went out): release the
    /// crossbar connection and arbitrate the freed lane among the physical
    /// port's waiting inputs.
    pub(crate) fn switch_release_output(&mut self, sw: SwitchId, out: u8) {
        let next = {
            let swm = &mut self.switches[sw.0 as usize];
            let phys = swm.port_of_slot(out);
            let num_slots = swm.num_slots();
            {
                let outp = &mut swm.outputs[out as usize];
                outp.owner = None;
                outp.idle_since = None;
                outp.multicast_idle = false;
            }
            match swm.arbs[phys as usize].arbitrate(num_slots) {
                Some(n) => {
                    swm.outputs[out as usize].owner = Some(n);
                    Some((n, phys))
                }
                None => None,
            }
        };
        if let Some((in_port, phys)) = next {
            if self.trace.enabled() {
                if let Some((worm, cause)) = self.blocked_requester(sw, phys, in_port) {
                    self.trace.push(
                        self.scheduler.now(),
                        crate::trace::TraceEvent::WormResumed { worm, cause },
                    );
                }
            }
            self.switch_grant(sw, out, in_port);
        }
    }

    /// Produce the next byte for the channel leaving output `out` of `sw`,
    /// or `None` if the port has nothing it can send right now.
    ///
    /// Called by the channel transmit logic. Also handles worm-tail
    /// bookkeeping: releasing the output and returning the input to Idle.
    pub(crate) fn switch_produce_byte(&mut self, sw: SwitchId, out: u8) -> Option<WireByte> {
        let owner = self.switches[sw.0 as usize].outputs[out as usize].owner?;
        // Replication has its own production path.
        if matches!(
            self.switches[sw.0 as usize].inputs[owner as usize].state,
            InState::Replicating(_)
        ) {
            return self.switchcast_produce_byte(sw, out, owner);
        }
        let (byte, finished) = {
            let inp = &mut self.switches[sw.0 as usize].inputs[owner as usize];
            match inp.state {
                InState::Forwarding { worm, out: o } if o == out => match inp.buf.front() {
                    Some(front) if front.worm == worm => {
                        let b = inp.buf.pop_front().expect("front exists");
                        let fin = matches!(b.kind, ByteKind::Tail);
                        (Some(b), fin)
                    }
                    // Head of the next worm, or empty: current worm's bytes
                    // have not arrived yet (the worm has a hole).
                    _ => (None, false),
                },
                _ => (None, false),
            }
        };
        if byte.is_some() {
            self.after_slack_dequeue(sw, owner);
        }
        if finished {
            {
                let inp = &mut self.switches[sw.0 as usize].inputs[owner as usize];
                inp.state = InState::Idle;
            }
            self.switch_release_output(sw, out);
            // The freed input may already hold the next worm's head.
            self.switch_advance_input(sw, owner);
        }
        byte
    }

    /// Span fast-path probe for the producer side of the channel leaving
    /// output `out`: the length of the run of contiguous data bytes of the
    /// forwarded worm at the owning input's buffer front, provided no
    /// byte-timed side effect (a GO emission or a STOP crossing) could occur
    /// while the run drains — those must happen at exact per-byte dequeue
    /// and arrival times, so their mere possibility disables batching for
    /// this kick.
    pub(crate) fn switch_span_ready(&self, sw: SwitchId, out: u8) -> Option<(WormId, u64)> {
        let swr = &self.switches[sw.0 as usize];
        let owner = swr.outputs[out as usize].owner?;
        let inp = &swr.inputs[owner as usize];
        let InState::Forwarding { worm, out: o } = &inp.state else {
            return None;
        };
        let worm = *worm;
        if *o != out {
            return None;
        }
        // A pending GO must go out at the exact dequeue that crosses the low
        // watermark; batching the dequeues would move it.
        if inp.sent_stop {
            return None;
        }
        // Upstream arrivals land during the drain window. Dequeues (batched
        // or per-byte) only lower occupancy, and at most one arrival per
        // byte-time can land, so `occupancy + wire_bytes` bounds occupancy
        // throughout the window in both modes; below the stop mark, neither
        // mode can emit a STOP while the run drains.
        let wire = match inp.chan_in {
            // Fed across a shard boundary: the local `in_flight` copy
            // only counts queued optimistic spans. Paced per-byte
            // crossings occupy distinct send slots in `(now-delay, now]`
            // at the foreign transmitter, so `delay` bounds them — but
            // optimistic spans and rejected-run expansions claim send
            // slots reaching into the transmitter's future and can each
            // exceed `delay`; count those explicitly on top.
            Some(c) if self.chan_src_foreign(c) => {
                let l = &self.lanes[c.0 as usize];
                l.delay() + l.foreign_span_backlog()
            }
            Some(c) => self.lanes[c.0 as usize].in_flight() as u64,
            None => 0,
        };
        if inp.occupancy() as u64 + wire >= inp.slack.stop_mark as u64 {
            return None;
        }
        let run = inp
            .buf
            .iter()
            .take_while(|b| b.worm == worm && matches!(b.kind, ByteKind::Data))
            .count() as u64;
        if run == 0 {
            None
        } else {
            Some((worm, run))
        }
    }

    /// Span fast-path check for a receiving switch input: how many bytes can
    /// land (in one event, plus everything already on the wire) while
    /// provably staying below the STOP watermark for the whole per-byte
    /// delivery window. `wire` is the byte count already in flight on the
    /// incoming channel.
    pub(crate) fn switch_span_room(&self, sw: SwitchId, port: u8, wire: u64) -> Option<u64> {
        let inp = &self.switches[sw.0 as usize].inputs[port as usize];
        // With a STOP in force the per-byte GO/STOP interplay is exact;
        // stay on the slow path until it clears.
        if inp.sent_stop {
            return None;
        }
        // An optimistic span this input batch-drained toward a cut
        // downstream lane is a gamble still in flight: the receive-side
        // owner may yet refuse or STOP-truncate it, and the per-byte
        // twin still holds its future-slot bytes right here — the local
        // occupancy runs speculatively low by that unsent tail until
        // the span's last send slot passes (or a STOP rewinds it).
        // Charge it as used room: over-charging only shrinks spans
        // (always exact), while reading the advanced occupancy would
        // defer a STOP crossing the per-byte twin takes mid-window.
        // Intra-shard drains need no charge — their emission guard
        // certified the whole drain window crossing-free.
        let advance = match inp.state {
            InState::Forwarding { out, .. } => self.switches[sw.0 as usize].outputs
                [out as usize]
                .chan_out
                .filter(|&c| self.chan_dst_foreign(c))
                .map_or(0, |c| {
                    self.lanes[c.0 as usize].drain_advance(self.scheduler.now())
                }),
            _ => 0,
        };
        let used = inp.occupancy() as u64 + wire + advance;
        let mark = inp.slack.stop_mark as u64;
        // Strictly below the mark even after all `wire + k` bytes land with
        // no dequeue: occupancy can never cross it in either mode.
        if used + 1 >= mark {
            None
        } else {
            Some(mark - used - 1)
        }
    }

    /// A batched run of `len` data bytes of `worm` arrived at input `port`
    /// (span-batched mode). The emission guards guarantee the run fits below
    /// the STOP watermark; the bytes are buffered in one go and the input
    /// state machine advances once.
    pub(crate) fn switch_rx_span(&mut self, sw: SwitchId, port: u8, worm: WormId, len: u64) {
        let (chan_in, crossed_stop) = {
            let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
            debug_assert!(
                inp.occupancy() as u64 + len <= inp.slack.capacity as u64,
                "span overflows slack buffer at {sw:?}:{port}"
            );
            for _ in 0..len {
                inp.buf.push_back(WireByte {
                    worm,
                    kind: ByteKind::Data,
                });
            }
            let crossed = inp.occupancy() >= inp.slack.stop_mark && !inp.sent_stop;
            if crossed {
                inp.sent_stop = true;
            }
            (inp.chan_in, crossed)
        };
        // The emission guard makes a crossing impossible; keep the STOP
        // behavior anyway so a guard bug degrades to legal (if no longer
        // byte-exact) backpressure rather than buffer overflow.
        debug_assert!(
            !crossed_stop,
            "span delivery crossed the STOP mark at {sw:?}:{port} — emission guard failed"
        );
        if crossed_stop {
            if let Some(ch) = chan_in {
                self.send_ctrl(ch, CtrlSym::Stop);
            }
        }
        self.switch_advance_input(sw, port);
    }

    /// Common post-dequeue bookkeeping for a switch input: send GO when the
    /// buffer has drained below the low watermark. On an input fed across a
    /// shard boundary, draining below the watermark also clears a pending
    /// span NACK — restoring the foreign transmitter's optimism via the GO
    /// itself, or via an explicit [`CtrlSym::SpanCredit`] when no STOP was
    /// ever in force (DESIGN.md §3.4).
    pub(crate) fn after_slack_dequeue(&mut self, sw: SwitchId, port: u8) {
        let (send_go, occ_lo, chan_in) = {
            let inp = &mut self.switches[sw.0 as usize].inputs[port as usize];
            let occ_lo = inp.occupancy() <= inp.slack.go_mark;
            if inp.sent_stop && occ_lo {
                inp.sent_stop = false;
                (true, occ_lo, inp.chan_in)
            } else {
                (false, occ_lo, inp.chan_in)
            }
        };
        let Some(ch) = chan_in else {
            return;
        };
        if send_go {
            if self.lanes[ch.0 as usize].nack_pending() {
                self.lanes[ch.0 as usize].set_nack_pending(false);
            }
            self.send_ctrl(ch, CtrlSym::Go);
        } else if occ_lo && self.lanes[ch.0 as usize].nack_pending() {
            self.lanes[ch.0 as usize].set_nack_pending(false);
            self.send_ctrl(ch, CtrlSym::SpanCredit);
        }
    }
}

/// Decision produced while inspecting an input port (split from the mutation
/// to keep the borrow checker happy and the state machine legible).
enum InputAction {
    None,
    ParseUnicast { worm: WormId, out: u8 },
    BeginMulticastParse,
    AdvanceReplica,
    DiscardFront,
    FinishDrain,
    KickOut { out: u8 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_cfg_for_delay_validates() {
        for d in [1, 2, 5, 50, 1000] {
            let cfg = SlackCfg::for_delay(d);
            cfg.validate().expect("valid");
            // Room for a full STOP round-trip above the stop mark.
            assert!(cfg.capacity - cfg.stop_mark >= 2 * d as u32);
        }
    }

    #[test]
    fn slack_cfg_rejects_inverted_marks() {
        let bad = SlackCfg {
            capacity: 100,
            stop_mark: 10,
            go_mark: 20,
        };
        assert!(bad.validate().is_err());
        let bad2 = SlackCfg {
            capacity: 10,
            stop_mark: 10,
            go_mark: 2,
        };
        assert!(bad2.validate().is_err());
    }

    fn arb() -> PortArb {
        PortArb::new(Box::new(crate::link::SeededRoundRobin::new(0)))
    }

    #[test]
    fn arbitration_is_round_robin() {
        let mut out = arb();
        out.waiting = vec![0, 2, 3];
        // rr_next starts at 0 -> grants 0, pointer moves to 1.
        assert_eq!(out.arbitrate(4), Some(0));
        assert_eq!(out.rr_next, 1);
        // Next scan starts at 1: port 1 not waiting, grants 2.
        assert_eq!(out.arbitrate(4), Some(2));
        assert_eq!(out.rr_next, 3);
        assert_eq!(out.arbitrate(4), Some(3));
        assert_eq!(out.arbitrate(4), None);
    }

    #[test]
    fn arbitration_wraps_around() {
        let mut out = arb();
        out.rr_next = 3;
        out.waiting = vec![0, 1];
        assert_eq!(out.arbitrate(4), Some(0));
        assert_eq!(out.arbitrate(4), Some(1));
    }

    #[test]
    fn slot_layout_is_contiguous_per_port() {
        let sw = Switch::new(
            SwitchId(0),
            &[1, 2, 1],
            SlackCfg::for_delay(1),
            |_| Box::new(crate::link::SeededRoundRobin::new(0)),
        );
        assert_eq!(sw.num_ports(), 3);
        assert_eq!(sw.num_slots(), 4);
        assert_eq!(sw.slot_of(0, 0), 0);
        assert_eq!(sw.slot_of(1, 0), 1);
        assert_eq!(sw.slot_of(1, 1), 2);
        assert_eq!(sw.slot_of(2, 0), 3);
        assert_eq!(sw.port_of_slot(2), 1);
        assert_eq!(sw.slots_of(1), 1..3);
        assert_eq!(sw.lanes_of(1), 2);
    }
}
