//! Simulation time.
//!
//! The simulator counts **byte-times**: the time one byte needs to cross a
//! link. On 640 Mb/s Myrinet one byte-time is 10 ns of wire time (8 bits at
//! 800 Mbaud line rate with 8b/10b-style encoding comes out close to the
//! 12.5 ns the raw data rate suggests; the paper's figures are plotted
//! directly in byte-times, so we never need the wall-clock conversion for
//! the reproductions — it is provided for the prototype model only).

/// A point in simulated time, in byte-times since the start of the run.
pub type SimTime = u64;

/// Byte-times per second on a 640 Mb/s Myrinet link (640e6 bits / 8).
pub const BYTE_TIMES_PER_SECOND_640MBPS: f64 = 80_000_000.0;

/// Convert a duration in byte-times to seconds on a 640 Mb/s link.
#[inline]
pub fn byte_times_to_seconds(bt: SimTime) -> f64 {
    bt as f64 / BYTE_TIMES_PER_SECOND_640MBPS
}

/// Convert a throughput in bytes per byte-time (0.0..=1.0 per link) to
/// megabits per second on a 640 Mb/s link.
#[inline]
pub fn utilization_to_mbps(bytes_per_byte_time: f64) -> f64 {
    bytes_per_byte_time * 640.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_utilization_is_line_rate() {
        assert!((utilization_to_mbps(1.0) - 640.0).abs() < 1e-9);
    }

    #[test]
    fn one_second_of_byte_times() {
        let one_second = BYTE_TIMES_PER_SECOND_640MBPS as SimTime;
        assert!((byte_times_to_seconds(one_second) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_utilization() {
        assert!((utilization_to_mbps(0.5) - 320.0).abs() < 1e-9);
    }
}
