//! Throughput accounting.

use wormcast_sim::time::{utilization_to_mbps, SimTime};
use wormcast_sim::Network;

/// Per-host and aggregate delivered-byte throughput over `elapsed`
/// byte-times, in bytes per byte-time (multiply by 640 for Mb/s on
/// Myrinet, or use [`per_host_mbps`]).
#[derive(Clone, Debug, Default)]
pub struct Throughput {
    pub per_host: Vec<f64>,
    pub aggregate: f64,
}

/// Received-byte throughput at each adapter (counts every byte the adapter
/// accepted, i.e. the paper's "received data rate at each host").
pub fn received(net: &Network, elapsed: SimTime) -> Throughput {
    let mut per_host = Vec::with_capacity(net.adapters.len());
    let mut total = 0.0;
    for a in &net.adapters {
        let r = if elapsed == 0 {
            0.0
        } else {
            a.counters.bytes_received as f64 / elapsed as f64
        };
        per_host.push(r);
        total += r;
    }
    Throughput {
        per_host,
        aggregate: total,
    }
}

/// Transmitted-byte throughput at each adapter.
pub fn sent(net: &Network, elapsed: SimTime) -> Throughput {
    let mut per_host = Vec::with_capacity(net.adapters.len());
    let mut total = 0.0;
    for a in &net.adapters {
        let r = if elapsed == 0 {
            0.0
        } else {
            a.counters.bytes_sent as f64 / elapsed as f64
        };
        per_host.push(r);
        total += r;
    }
    Throughput {
        per_host,
        aggregate: total,
    }
}

/// Convert a per-host rate (bytes per byte-time) to Mb/s at Myrinet speed.
pub fn per_host_mbps(rate: f64) -> f64 {
    utilization_to_mbps(rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_conversion() {
        assert!((per_host_mbps(0.25) - 160.0).abs() < 1e-9);
    }
}
