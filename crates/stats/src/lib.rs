//! # wormcast-stats — metrics for the experiments
//!
//! Statistics over simulation runs: latency distributions, throughput,
//! loss rates, and (x, y) series formatted the way the paper's figures
//! report them.

pub mod blocking;
pub mod histogram;
pub mod latency;
pub mod links;
pub mod loss;
pub mod series;
pub mod summary;
pub mod throughput;

pub use blocking::{blocked_times, BlockedTimes};
pub use histogram::LogHistogram;
pub use latency::LatencyReport;
pub use series::Series;
pub use summary::Summary;
