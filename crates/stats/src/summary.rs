//! Basic sample statistics.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a sample.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub var: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarise a sample (unbiased variance). Empty samples yield zeros.
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            var,
            min,
            max,
        }
    }

    /// Summarise integer byte-time samples.
    pub fn of_u64(xs: &[u64]) -> Self {
        let v: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        Self::of(&v)
    }

    pub fn stddev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Half-width of the ~95% confidence interval on the mean (normal
    /// approximation; fine for the sample sizes the experiments produce).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.n as f64).sqrt()
    }
}

/// Percentile of a sample (nearest-rank). `p` in [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.saturating_sub(1).min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.var - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_sample_is_zeros() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn singleton_has_zero_variance() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let big_v: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::of(&big_v);
        assert!(big.ci95() < small.ci95());
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn of_u64_converts() {
        let s = Summary::of_u64(&[10, 20, 30]);
        assert!((s.mean - 20.0).abs() < 1e-12);
    }
}
