//! Blocked-time histograms from worm-lifecycle traces.
//!
//! The paper's three switchcast variants differ only in *where* blocked
//! time accumulates (IDLE-filled branches vs. interrupt fragments vs. BRES
//! flush-and-retry). This module pairs each `WormBlocked` event with its
//! matching `WormResumed` from a [`Trace`] and buckets the interval
//! lengths by cause, so a run can report "time lost to STOP backpressure"
//! separately from "time queued for a busy crossbar output" and "time a
//! multicast branch waited".

use crate::histogram::LogHistogram;
use std::collections::HashMap;
use wormcast_sim::trace::{BlockCause, Trace, TraceEvent};

/// Blocked-interval distributions, one histogram per block cause.
#[derive(Clone, Debug, Default)]
pub struct BlockedTimes {
    /// Intervals spent stalled by STOP backpressure.
    pub stop: LogHistogram,
    /// Intervals spent queued for a busy crossbar output.
    pub output_busy: LogHistogram,
    /// Intervals a switchcast replica branch waited at its branching node.
    pub branch_wait: LogHistogram,
    /// `WormBlocked` events whose worm never resumed before the trace
    /// ended (still blocked, flushed, or trace-ring-evicted pairs).
    pub unresolved: u64,
}

impl BlockedTimes {
    /// Total closed blocked intervals across all causes.
    pub fn count(&self) -> u64 {
        self.stop.count() + self.output_busy.count() + self.branch_wait.count()
    }

    fn for_cause(&mut self, cause: &BlockCause) -> &mut LogHistogram {
        match cause {
            BlockCause::StopBackpressure { .. } => &mut self.stop,
            BlockCause::OutputBusy { .. } => &mut self.output_busy,
            BlockCause::BranchWait { .. } => &mut self.branch_wait,
        }
    }
}

/// Pair blocked/resumed events and bucket the interval lengths by cause.
///
/// Pairing is keyed on `(worm, cause)`: a `WormResumed` closes the most
/// recent open `WormBlocked` with the same worm and cause. Unmatched
/// blocks are counted in [`BlockedTimes::unresolved`]; unmatched resumes
/// (their block fell off a ring sink, or a GO arrived after the blocking
/// worm's tail already cleared the channel) are ignored.
pub fn blocked_times(trace: &Trace) -> BlockedTimes {
    let mut out = BlockedTimes::default();
    let mut open: HashMap<(u64, BlockCause), Vec<u64>> = HashMap::new();
    for (t, ev) in trace.events() {
        match ev {
            TraceEvent::WormBlocked { worm, cause } => {
                open.entry((*worm, *cause)).or_default().push(*t);
            }
            TraceEvent::WormResumed { worm, cause } => {
                if let Some(starts) = open.get_mut(&(*worm, *cause)) {
                    if let Some(start) = starts.pop() {
                        out.for_cause(cause).record(t.saturating_sub(start));
                    }
                }
            }
            _ => {}
        }
    }
    out.unresolved = open.values().map(|v| v.len() as u64).sum();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::engine::SwitchId;
    use wormcast_sim::link::ChanId;

    #[test]
    fn pairs_by_worm_and_cause() {
        let mut tr = Trace::default();
        let w = 1u64;
        let stop = BlockCause::StopBackpressure { ch: ChanId(3) };
        let busy = BlockCause::OutputBusy {
            switch: SwitchId(0),
            out: 2,
        };
        tr.push(100, TraceEvent::WormBlocked { worm: w, cause: stop });
        tr.push(110, TraceEvent::WormBlocked { worm: w, cause: busy });
        tr.push(150, TraceEvent::WormResumed { worm: w, cause: stop });
        tr.push(500, TraceEvent::WormResumed { worm: w, cause: busy });
        let bt = blocked_times(&tr);
        assert_eq!(bt.stop.count(), 1);
        assert_eq!(bt.stop.max(), 50);
        assert_eq!(bt.output_busy.count(), 1);
        assert_eq!(bt.output_busy.max(), 390);
        assert_eq!(bt.branch_wait.count(), 0);
        assert_eq!(bt.unresolved, 0);
        assert_eq!(bt.count(), 2);
    }

    #[test]
    fn unmatched_block_is_unresolved() {
        let mut tr = Trace::default();
        tr.push(7, TraceEvent::WormBlocked {
            worm: 0,
            cause: BlockCause::BranchWait {
                switch: SwitchId(1),
                out: 0,
            },
        });
        let bt = blocked_times(&tr);
        assert_eq!(bt.count(), 0);
        assert_eq!(bt.unresolved, 1);
    }

    #[test]
    fn unmatched_resume_is_ignored() {
        let mut tr = Trace::default();
        tr.push(9, TraceEvent::WormResumed {
            worm: 0,
            cause: BlockCause::StopBackpressure { ch: ChanId(0) },
        });
        let bt = blocked_times(&tr);
        assert_eq!(bt.count(), 0);
        assert_eq!(bt.unresolved, 0);
    }
}
