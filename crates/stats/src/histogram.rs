//! Logarithmic latency histograms.
//!
//! Latency distributions in a contended wormhole network are heavy-tailed
//! (a blocked worm waits for whole upstream worms to drain), so the
//! interesting structure spans orders of magnitude. This histogram uses
//! power-of-two buckets, prints compactly, and supports quantile queries —
//! used by the streaming example for jitter analysis and by tests that
//! assert tail behaviour.

use serde::{Deserialize, Serialize};

/// Power-of-two-bucketed histogram of byte-time samples.
///
/// ```
/// use wormcast_stats::LogHistogram;
/// let h: LogHistogram = [120u64, 130, 95_000].into_iter().collect();
/// assert_eq!(h.count(), 3);
/// assert!(h.quantile(0.5) <= 256);
/// assert!(h.quantile(1.0) >= 95_000);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))`; bucket 0 also takes
    /// the value 0.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.max(1).leading_zeros() - 1) as usize
    }

    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the q-quantile (q in [0, 1]).
    /// A bucketed approximation: exact to within a factor of 2, which is
    /// the right resolution for heavy-tailed latency data.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Render as `range: count (bar)` lines, skipping empty leading buckets.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).ceil() as usize);
            let _ = writeln!(out, "{:>10}..{:<10} {:>8} {}", 1u64 << i, 1u64 << (i + 1), c, bar);
        }
        out
    }
}

impl FromIterator<u64> for LogHistogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = LogHistogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(1023), 9);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
    }

    #[test]
    fn mean_and_count() {
        let h: LogHistogram = [10u64, 20, 30].into_iter().collect();
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h: LogHistogram = (1..=1000u64).collect();
        // p50 of 1..=1000 is 500: bucket [256,512) -> upper bound 512.
        assert_eq!(h.quantile(0.5), 512);
        assert_eq!(h.quantile(1.0), 1024);
        assert!(h.quantile(0.01) <= 16);
    }

    #[test]
    fn merge_combines() {
        let mut a: LogHistogram = [1u64, 2].into_iter().collect();
        let b: LogHistogram = [1000u64].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn render_skips_empty_buckets() {
        let h: LogHistogram = [1u64, 1_000_000].into_iter().collect();
        let r = h.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains('#'));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.render().is_empty());
    }
}
