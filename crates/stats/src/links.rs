//! Per-link utilization reports.
//!
//! The paper attributes its early saturation to "congestion around the
//! root node" of the up/down tree. This module makes that visible: data
//! and IDLE-fill utilization per directed lane, sorted hottest-first.
//! Multi-lane links report one [`LinkLoad`] per lane, tagged with its
//! lane index, so per-lane imbalance is observable.

use wormcast_sim::link::{NodeRef, PortId};
use wormcast_sim::time::SimTime;
use wormcast_sim::Network;

/// One directed lane's load over a window.
#[derive(Clone, Copy, Debug)]
pub struct LinkLoad {
    /// Source and destination as (node, port-slot) pairs.
    pub from: (NodeRef, PortId),
    pub to: (NodeRef, PortId),
    /// Lane index within the directed link (0 on single-lane links).
    pub lane: u8,
    /// Data bytes per byte-time (0..=1).
    pub utilization: f64,
    /// IDLE fill bytes per byte-time (switch-level multicast waste).
    pub idle_utilization: f64,
    /// Fraction of the window this lane spent under STOP backpressure.
    pub stall_fraction: f64,
    /// Number of STOP intervals that began on this lane.
    pub stalls: u64,
}

/// All lane loads, hottest first.
pub fn link_loads(net: &Network, elapsed: SimTime) -> Vec<LinkLoad> {
    let mut out: Vec<LinkLoad> = net
        .lanes()
        .iter()
        .map(|c| {
            let stats = c.stats();
            LinkLoad {
                from: (c.src().node, c.src().port),
                to: (c.dst().node, c.dst().port),
                lane: c.lane_index(),
                utilization: c.utilization(elapsed),
                idle_utilization: if elapsed == 0 {
                    0.0
                } else {
                    stats.idles_carried as f64 / elapsed as f64
                },
                stall_fraction: c.stall_fraction(elapsed),
                stalls: stats.stalls,
            }
        })
        .collect();
    out.sort_by(|a, b| b.utilization.partial_cmp(&a.utilization).expect("no NaN"));
    out
}

/// The ratio of the hottest lane's utilization to the mean over loaded
/// lanes — the "hot spot factor" that explains early saturation under
/// up/down routing (1.0 = perfectly balanced).
pub fn hotspot_factor(net: &Network, elapsed: SimTime) -> f64 {
    let loads = link_loads(net, elapsed);
    let busy: Vec<f64> = loads
        .iter()
        .map(|l| l.utilization)
        .filter(|&u| u > 0.0)
        .collect();
    if busy.is_empty() {
        return 1.0;
    }
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    busy[0] / mean.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::network::{FabricSpec, HostAttach, RouteTable};
    use wormcast_sim::NetworkConfig;

    #[test]
    fn idle_network_is_balanced() {
        let spec = FabricSpec {
            switch_ports: vec![2],
            hosts: vec![
                HostAttach { switch: 0, port: 0 },
                HostAttach { switch: 0, port: 1 },
            ],
            links: vec![],
            host_link_delay: 1,
        };
        let net = Network::build(&spec, RouteTable::new(2), NetworkConfig::builder().build().expect("valid config"));
        assert_eq!(hotspot_factor(&net, 1000), 1.0);
        let loads = link_loads(&net, 1000);
        assert_eq!(loads.len(), 4, "two hosts x two directions");
        assert!(loads.iter().all(|l| l.lane == 0));
        assert!(loads.iter().all(|l| l.utilization == 0.0));
        assert!(loads.iter().all(|l| l.stall_fraction == 0.0 && l.stalls == 0));
    }
}
