//! Latency extraction from a run's message log.
//!
//! The paper's Figures 10 and 11 plot *average multicast latency* in
//! byte-times against offered load. We measure, for every delivery of a
//! multicast message created inside the measurement window, the time from
//! message creation to local delivery at that member, and average across
//! deliveries. (Per-message "time until the last member" is also available,
//! as `completion`, for the tree-vs-circuit parallelism analysis.)

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wormcast_sim::network::MessageLog;
use wormcast_sim::protocol::Destination;
use wormcast_sim::time::SimTime;
use wormcast_sim::worm::MessageId;

use crate::summary::Summary;

/// Which messages to include.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    Multicast,
    Unicast,
    All,
}

/// Latency statistics extracted from a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyReport {
    /// One sample per delivery: delivery time − creation time.
    pub per_delivery: Summary,
    /// One sample per *fully tracked* message: last delivery − creation.
    /// Only meaningful when the caller supplies the expected delivery count.
    pub completion: Summary,
    /// Messages created in the window.
    pub messages: usize,
    /// Deliveries observed for them.
    pub deliveries: usize,
    /// Messages that reached their expected delivery count (when known).
    pub completed: usize,
}

/// Extract latencies for messages created in `[warmup, until)`.
///
/// `expected` maps a message's destination to the number of deliveries that
/// count as "complete" (e.g. group size − 1 for multicast without
/// self-delivery); pass `None` to skip completion statistics.
pub fn latencies(
    log: &MessageLog,
    kind: Kind,
    warmup: SimTime,
    until: SimTime,
    expected: Option<&dyn Fn(&Destination) -> usize>,
) -> LatencyReport {
    let mut window: HashMap<MessageId, (SimTime, Destination)> = HashMap::new();
    for rec in &log.created {
        if rec.created < warmup || rec.created >= until {
            continue;
        }
        let include = matches!(
            (kind, rec.dest),
            (Kind::All, _)
                | (Kind::Multicast, Destination::Multicast(_))
                | (Kind::Unicast, Destination::Unicast(_))
        );
        if include {
            window.insert(rec.msg, (rec.created, rec.dest));
        }
    }
    let mut per_delivery: Vec<u64> = Vec::new();
    let mut last_delivery: HashMap<MessageId, (SimTime, usize)> = HashMap::new();
    for d in &log.deliveries {
        if let Some(&(created, _)) = window.get(&d.msg) {
            debug_assert!(d.at >= created, "delivery before creation");
            per_delivery.push(d.at - created);
            let e = last_delivery.entry(d.msg).or_insert((0, 0));
            e.0 = e.0.max(d.at);
            e.1 += 1;
        }
    }
    let mut completions: Vec<u64> = Vec::new();
    let mut completed = 0;
    if let Some(expected) = expected {
        for (msg, &(created, dest)) in &window {
            if let Some(&(last, count)) = last_delivery.get(msg) {
                if count >= expected(&dest) {
                    completed += 1;
                    completions.push(last - created);
                }
            }
        }
    }
    LatencyReport {
        per_delivery: Summary::of_u64(&per_delivery),
        completion: Summary::of_u64(&completions),
        messages: window.len(),
        deliveries: per_delivery.len(),
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::engine::HostId;
    use wormcast_sim::network::{Delivery, MessageRecord};

    fn log() -> MessageLog {
        let mut l = MessageLog::default();
        // msg 0: multicast created at t=100, delivered at 150 and 200.
        l.created.push(MessageRecord {
            msg: MessageId(0),
            origin: HostId(0),
            dest: Destination::Multicast(1),
            payload_len: 400,
            created: 100,
        });
        l.deliveries.push(Delivery {
            msg: MessageId(0),
            host: HostId(1),
            at: 150,
        });
        l.deliveries.push(Delivery {
            msg: MessageId(0),
            host: HostId(2),
            at: 200,
        });
        // msg 1: unicast created at t=500, delivered at 600.
        l.created.push(MessageRecord {
            msg: MessageId(1),
            origin: HostId(1),
            dest: Destination::Unicast(HostId(3)),
            payload_len: 100,
            created: 500,
        });
        l.deliveries.push(Delivery {
            msg: MessageId(1),
            host: HostId(3),
            at: 600,
        });
        // msg 2: multicast created during warmup; must be excluded.
        l.created.push(MessageRecord {
            msg: MessageId(2),
            origin: HostId(2),
            dest: Destination::Multicast(1),
            payload_len: 400,
            created: 10,
        });
        l.deliveries.push(Delivery {
            msg: MessageId(2),
            host: HostId(0),
            at: 5000,
        });
        l
    }

    #[test]
    fn multicast_latency_averages_deliveries() {
        let r = latencies(&log(), Kind::Multicast, 50, 10_000, None);
        assert_eq!(r.messages, 1);
        assert_eq!(r.deliveries, 2);
        assert!((r.per_delivery.mean - 75.0).abs() < 1e-9); // (50 + 100) / 2
    }

    #[test]
    fn unicast_latency() {
        let r = latencies(&log(), Kind::Unicast, 50, 10_000, None);
        assert_eq!(r.deliveries, 1);
        assert!((r.per_delivery.mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_excludes_early_messages() {
        let all = latencies(&log(), Kind::All, 0, 10_000, None);
        assert_eq!(all.messages, 3);
        let windowed = latencies(&log(), Kind::All, 50, 10_000, None);
        assert_eq!(windowed.messages, 2);
    }

    #[test]
    fn completion_counts_full_deliveries() {
        let expected = |d: &Destination| match d {
            Destination::Multicast(_) => 2,
            Destination::Unicast(_) => 1,
        };
        let r = latencies(&log(), Kind::Multicast, 50, 10_000, Some(&expected));
        assert_eq!(r.completed, 1);
        assert!((r.completion.mean - 100.0).abs() < 1e-9); // last at 200
        // Expecting 3 deliveries -> incomplete.
        let strict = |_: &Destination| 3usize;
        let r2 = latencies(&log(), Kind::Multicast, 50, 10_000, Some(&strict));
        assert_eq!(r2.completed, 0);
    }
}
