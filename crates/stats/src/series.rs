//! (x, y) series with confidence intervals, formatted like the paper's
//! figures.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One point of a series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    /// Half-width of the 95% CI on y (0 when unknown).
    pub ci: f64,
}

/// A labelled data series (one curve of a figure).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub points: Vec<Point>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64, ci: f64) {
        self.points.push(Point { x, y, ci });
    }

    /// The y value at the x closest to `x` (for crossover checks in tests).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.x - x)
                    .abs()
                    .partial_cmp(&(b.x - x).abs())
                    .expect("no NaN")
            })
            .map(|p| p.y)
    }
}

/// Render a figure (several series over a shared x axis) as an aligned
/// text table, one row per x value — the shape the paper's figures plot.
pub fn format_table(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "# y: {y_label}");
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let _ = write!(out, "{x_label:>12}");
    for s in series {
        let _ = write!(out, " {:>18}", s.label);
    }
    out.push('\n');
    for x in xs {
        let _ = write!(out, "{x:>12.4}");
        for s in series {
            let y = s
                .points
                .iter()
                .find(|p| (p.x - x).abs() < 1e-12)
                .map(|p| p.y);
            match y {
                Some(y) => {
                    let _ = write!(out, " {y:>18.1}");
                }
                None => {
                    let _ = write!(out, " {:>18}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y_at_picks_nearest() {
        let mut s = Series::new("a");
        s.push(0.05, 100.0, 0.0);
        s.push(0.10, 200.0, 0.0);
        assert_eq!(s.y_at(0.06), Some(100.0));
        assert_eq!(s.y_at(0.09), Some(200.0));
        assert_eq!(Series::new("empty").y_at(1.0), None);
    }

    #[test]
    fn table_includes_all_series_and_gaps() {
        let mut a = Series::new("tree");
        a.push(0.05, 1000.0, 0.0);
        a.push(0.10, 2000.0, 0.0);
        let mut b = Series::new("hc");
        b.push(0.05, 1500.0, 0.0);
        let t = format_table("Fig 10", "load", "latency", &[a, b]);
        assert!(t.contains("tree"));
        assert!(t.contains("hc"));
        assert!(t.contains("0.0500"));
        assert!(t.contains("0.1000"));
        assert!(t.contains('-'), "missing point must render as a gap");
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0, 0.5);
        let j = serde_json::to_string(&s).unwrap();
        let back: Series = serde_json::from_str(&j).unwrap();
        assert_eq!(back.label, "x");
        assert_eq!(back.points.len(), 1);
    }
}
