//! Loss accounting (Figure 13's "reception loss per host").
//!
//! In the host-adapter schemes the *only* place a worm can be lost is at an
//! adapter's input buffer (the fabric itself is lossless under
//! backpressure); the paper measures the per-hop loss fraction there.

use wormcast_sim::Network;

/// Per-adapter worm loss fractions: refused / (refused + received).
#[derive(Clone, Debug, Default)]
pub struct LossReport {
    pub per_host: Vec<f64>,
    /// Aggregate over all adapters.
    pub overall: f64,
    pub total_refused: u64,
    pub total_received: u64,
}

pub fn reception_loss(net: &Network) -> LossReport {
    let mut per_host = Vec::with_capacity(net.adapters.len());
    let mut refused = 0u64;
    let mut received = 0u64;
    for a in &net.adapters {
        let r = a.counters.worms_refused;
        let ok = a.counters.worms_received;
        refused += r;
        received += ok;
        per_host.push(if r + ok == 0 {
            0.0
        } else {
            r as f64 / (r + ok) as f64
        });
    }
    let overall = if refused + received == 0 {
        0.0
    } else {
        refused as f64 / (refused + received) as f64
    };
    LossReport {
        per_host,
        overall,
        total_refused: refused,
        total_received: received,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn loss_fraction_formula() {
        // Pure formula check (integration tests exercise the full path).
        let refused = 25u64;
        let received = 75u64;
        let frac = refused as f64 / (refused + received) as f64;
        assert!((frac - 0.25).abs() < 1e-12);
    }
}
