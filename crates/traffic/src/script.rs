//! Deterministic, scripted traffic sources for tests and examples.

use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{SourceMessage, TrafficSource};
use wormcast_sim::time::SimTime;
use wormcast_sim::Network;

/// Emits exactly one message at its installation time, then stops.
pub struct OneShot {
    msg: Option<SourceMessage>,
}

impl OneShot {
    pub fn new(msg: SourceMessage) -> Self {
        OneShot { msg: Some(msg) }
    }
}

impl TrafficSource for OneShot {
    fn next(&mut self, _now: SimTime, _host: HostId) -> (Option<SourceMessage>, Option<SimTime>) {
        (self.msg.take(), None)
    }
}

/// Emits a fixed schedule of `(time, message)` pairs (times must ascend).
pub struct Script {
    items: Vec<(SimTime, SourceMessage)>,
    next_ix: usize,
}

impl Script {
    pub fn new(items: Vec<(SimTime, SourceMessage)>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "script times must strictly ascend"
        );
        Script { items, next_ix: 0 }
    }
}

impl TrafficSource for Script {
    fn next(&mut self, now: SimTime, _host: HostId) -> (Option<SourceMessage>, Option<SimTime>) {
        let Some(&(at, msg)) = self.items.get(self.next_ix) else {
            return (None, None);
        };
        debug_assert_eq!(at, now, "script fired at the wrong time");
        self.next_ix += 1;
        let gap = self.items.get(self.next_ix).map(|&(t, _)| t - now);
        (Some(msg), gap)
    }
}

/// Install a scripted schedule on `host` (first event at the first time).
pub fn install_script(net: &mut Network, host: HostId, items: Vec<(SimTime, SourceMessage)>) {
    if items.is_empty() {
        return;
    }
    let first = items[0].0;
    net.set_source(host, Box::new(Script::new(items)), first);
}

/// Install a single message at `at` on `host`.
pub fn install_one_shot(net: &mut Network, host: HostId, at: SimTime, msg: SourceMessage) {
    net.set_source(host, Box::new(OneShot::new(msg)), at);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::protocol::Destination;

    fn m(len: u32) -> SourceMessage {
        SourceMessage {
            dest: Destination::Unicast(HostId(1)),
            payload_len: len,
        }
    }

    #[test]
    fn one_shot_fires_once() {
        let mut s = OneShot::new(m(10));
        let (a, gap) = s.next(5, HostId(0));
        assert!(a.is_some());
        assert!(gap.is_none());
        let (b, _) = s.next(6, HostId(0));
        assert!(b.is_none());
    }

    #[test]
    fn script_follows_schedule() {
        let mut s = Script::new(vec![(10, m(1)), (25, m(2)), (30, m(3))]);
        let (a, gap) = s.next(10, HostId(0));
        assert_eq!(a.unwrap().payload_len, 1);
        assert_eq!(gap, Some(15));
        let (b, gap) = s.next(25, HostId(0));
        assert_eq!(b.unwrap().payload_len, 2);
        assert_eq!(gap, Some(5));
        let (c, gap) = s.next(30, HostId(0));
        assert_eq!(c.unwrap().payload_len, 3);
        assert_eq!(gap, None);
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn script_rejects_unordered() {
        let _ = Script::new(vec![(10, m(1)), (10, m(2))]);
    }
}
