//! Multicast group construction and membership tables.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use wormcast_sim::engine::HostId;

/// A set of multicast groups over a population of hosts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupSet {
    /// `members[g]` = sorted member list of group `g`.
    members: Vec<Vec<HostId>>,
    /// `of_host[h]` = groups host `h` belongs to.
    of_host: Vec<Vec<u8>>,
}

impl GroupSet {
    /// Build `num_groups` groups of `group_size` members each, chosen
    /// uniformly at random without replacement within each group (the
    /// paper's "members chosen at random"). Deterministic in `rng`.
    pub fn random(
        num_hosts: usize,
        num_groups: usize,
        group_size: usize,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(group_size <= num_hosts, "group larger than host population");
        assert!(num_groups <= u8::MAX as usize, "8-bit group id space");
        let all: Vec<HostId> = (0..num_hosts as u32).map(HostId).collect();
        let mut members = Vec::with_capacity(num_groups);
        for _ in 0..num_groups {
            let mut pick = all.clone();
            pick.shuffle(rng);
            pick.truncate(group_size);
            pick.sort_unstable();
            members.push(pick);
        }
        Self::from_members(num_hosts, members)
    }

    /// Build from explicit member lists.
    pub fn from_members(num_hosts: usize, mut members: Vec<Vec<HostId>>) -> Self {
        let mut of_host = vec![Vec::new(); num_hosts];
        for (g, m) in members.iter_mut().enumerate() {
            m.sort_unstable();
            m.dedup();
            for h in m.iter() {
                of_host[h.0 as usize].push(g as u8);
            }
        }
        GroupSet { members, of_host }
    }

    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// Sorted members of group `g`.
    pub fn members(&self, g: u8) -> &[HostId] {
        &self.members[g as usize]
    }

    /// Groups host `h` belongs to.
    pub fn groups_of(&self, h: HostId) -> &[u8] {
        &self.of_host[h.0 as usize]
    }

    pub fn is_member(&self, g: u8, h: HostId) -> bool {
        self.members(g).binary_search(&h).is_ok()
    }

    /// Choose one of `h`'s groups uniformly (None if `h` is in no group).
    pub fn pick_group(&self, h: HostId, rng: &mut SmallRng) -> Option<u8> {
        use rand::Rng;
        let gs = self.groups_of(h);
        if gs.is_empty() {
            None
        } else {
            Some(gs[rng.gen_range(0..gs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::host_stream;

    #[test]
    fn random_groups_have_requested_shape() {
        let mut rng = host_stream(10, 0);
        let gs = GroupSet::random(64, 10, 10, &mut rng);
        assert_eq!(gs.num_groups(), 10);
        for g in 0..10 {
            let m = gs.members(g);
            assert_eq!(m.len(), 10, "group {g}");
            // Sorted & unique.
            assert!(m.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn membership_tables_agree() {
        let mut rng = host_stream(11, 0);
        let gs = GroupSet::random(24, 4, 6, &mut rng);
        for g in 0..4u8 {
            for &h in gs.members(g) {
                assert!(gs.groups_of(h).contains(&g));
                assert!(gs.is_member(g, h));
            }
        }
        for h in 0..24u32 {
            for &g in gs.groups_of(HostId(h)) {
                assert!(gs.is_member(g, HostId(h)));
            }
        }
    }

    #[test]
    fn pick_group_only_from_memberships() {
        let gs = GroupSet::from_members(8, vec![
            vec![HostId(0), HostId(1)],
            vec![HostId(1), HostId(2)],
        ]);
        let mut rng = host_stream(12, 0);
        for _ in 0..100 {
            assert_eq!(gs.pick_group(HostId(0), &mut rng), Some(0));
        }
        let mut seen = [false; 2];
        for _ in 0..200 {
            let g = gs.pick_group(HostId(1), &mut rng).unwrap();
            seen[g as usize] = true;
        }
        assert!(seen[0] && seen[1], "uniform pick never saw both groups");
        assert_eq!(gs.pick_group(HostId(7), &mut rng), None);
    }

    #[test]
    fn from_members_dedups() {
        let gs = GroupSet::from_members(4, vec![vec![HostId(2), HostId(2), HostId(0)]]);
        assert_eq!(gs.members(0), &[HostId(0), HostId(2)]);
    }
}
