//! Poisson arrival processes parameterised by offered load.
//!
//! The paper's load axis is "output link utilization per host": a host at
//! offered load ρ injects, on average, ρ bytes per byte-time. With a mean
//! worm wire length of `L` bytes, that is a Poisson process with rate
//! `ρ / L` worms per byte-time, i.e. exponential interarrivals with mean
//! `L / ρ`.

use crate::rng::exponential;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Exponential interarrival generator for a target offered load.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Mean interarrival time in byte-times.
    pub mean_interarrival: f64,
}

impl PoissonArrivals {
    /// From offered load (bytes per byte-time per host, in (0, 1]) and the
    /// mean worm wire length in bytes.
    pub fn from_offered_load(load: f64, mean_worm_bytes: f64) -> Self {
        assert!(load > 0.0, "offered load must be positive, got {load}");
        assert!(mean_worm_bytes >= 1.0);
        PoissonArrivals {
            mean_interarrival: mean_worm_bytes / load,
        }
    }

    /// Sample the next interarrival gap in byte-times (at least 1).
    pub fn next_gap(&self, rng: &mut SmallRng) -> u64 {
        exponential(rng, self.mean_interarrival).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::host_stream;

    #[test]
    fn rate_matches_offered_load() {
        // Load 0.1 with 400-byte worms -> mean gap 4000 byte-times.
        let p = PoissonArrivals::from_offered_load(0.1, 400.0);
        assert!((p.mean_interarrival - 4000.0).abs() < 1e-9);
        let mut rng = host_stream(5, 0);
        let n = 100_000u64;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 4000.0).abs() < 60.0,
            "sample mean gap {mean} too far from 4000"
        );
    }

    #[test]
    fn gaps_are_at_least_one() {
        let p = PoissonArrivals::from_offered_load(1.0, 1.0);
        let mut rng = host_stream(6, 0);
        for _ in 0..10_000 {
            assert!(p.next_gap(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_load_rejected() {
        let _ = PoissonArrivals::from_offered_load(0.0, 400.0);
    }
}
