//! The paper's workload, as a pluggable traffic source.

use crate::arrivals::PoissonArrivals;
use crate::groups::GroupSet;
use crate::lengths::LengthDist;
use crate::rng::host_stream;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{Destination, SourceMessage, TrafficSource};
use wormcast_sim::time::SimTime;
use wormcast_sim::Network;

/// Parameters of the Section 7 workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PaperWorkload {
    /// Output-link utilization per host, in (0, 1].
    pub offered_load: f64,
    /// Probability that a group member's generated worm is a multicast
    /// (0.10 in the torus experiment).
    pub multicast_prob: f64,
    /// Payload length distribution (geometric mean 400 in the paper).
    pub lengths: LengthDist,
    /// Stop generating new messages at this time (lets a run drain).
    pub stop_at: Option<SimTime>,
}

/// Per-host traffic source implementing the paper's model.
pub struct PaperSource {
    arrivals: PoissonArrivals,
    workload: PaperWorkload,
    groups: Arc<GroupSet>,
    num_hosts: usize,
    rng: SmallRng,
}

impl PaperSource {
    pub fn new(
        workload: PaperWorkload,
        groups: Arc<GroupSet>,
        num_hosts: usize,
        seed: u64,
        host: HostId,
    ) -> Self {
        assert!(num_hosts >= 2, "need at least two hosts for traffic");
        PaperSource {
            arrivals: PoissonArrivals::from_offered_load(
                workload.offered_load,
                workload.lengths.mean(),
            ),
            workload,
            groups,
            num_hosts,
            rng: host_stream(seed, 0x7EAF_F1C0 ^ host.0 as u64),
        }
    }

    fn gen_message(&mut self, host: HostId) -> SourceMessage {
        let payload_len = self.workload.lengths.sample(&mut self.rng);
        let in_a_group = !self.groups.groups_of(host).is_empty();
        let dest = if in_a_group && self.rng.gen_bool(self.workload.multicast_prob) {
            Destination::Multicast(
                self.groups
                    .pick_group(host, &mut self.rng)
                    .expect("member of at least one group"),
            )
        } else {
            // Uniform unicast over the other hosts.
            let mut d = self.rng.gen_range(0..self.num_hosts as u32 - 1);
            if d >= host.0 {
                d += 1;
            }
            Destination::Unicast(HostId(d))
        };
        SourceMessage { dest, payload_len }
    }
}

impl TrafficSource for PaperSource {
    fn next(&mut self, now: SimTime, host: HostId) -> (Option<SourceMessage>, Option<SimTime>) {
        if let Some(stop) = self.workload.stop_at {
            if now >= stop {
                return (None, None);
            }
        }
        let msg = self.gen_message(host);
        let gap = self.arrivals.next_gap(&mut self.rng);
        (Some(msg), Some(gap))
    }
}

/// Install a [`PaperSource`] on every host of `net`, with start times
/// staggered uniformly over one mean interarrival so the Poisson processes
/// do not fire in phase.
pub fn install_paper_sources(
    net: &mut Network,
    workload: PaperWorkload,
    groups: &Arc<GroupSet>,
    seed: u64,
) {
    install_paper_sources_for(net, workload, groups, seed, |_| true);
}

/// Like [`install_paper_sources`], but only installs sources on hosts the
/// caller `owns`. The stagger stream is drawn for *every* host in order
/// regardless, so the start time of host `h` is identical whether the
/// fabric is simulated whole or sharded — the property the sharded
/// engine's byte-for-byte equivalence rests on.
pub fn install_paper_sources_for(
    net: &mut Network,
    workload: PaperWorkload,
    groups: &Arc<GroupSet>,
    seed: u64,
    owned: impl Fn(HostId) -> bool,
) {
    let num_hosts = net.num_hosts();
    let mut stagger = host_stream(seed, 0x057A_66E2);
    for h in 0..num_hosts as u32 {
        let host = HostId(h);
        let src = PaperSource::new(workload, Arc::clone(groups), num_hosts, seed, host);
        let first = stagger.gen_range(0..src.arrivals.mean_interarrival.max(1.0) as u64 + 1);
        if owned(host) {
            net.set_source(host, Box::new(src), first);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(p: f64) -> PaperWorkload {
        PaperWorkload {
            offered_load: 0.1,
            multicast_prob: p,
            lengths: LengthDist::Geometric { mean: 400 },
            stop_at: None,
        }
    }

    fn groups_all_in_one(n: usize) -> Arc<GroupSet> {
        Arc::new(GroupSet::from_members(
            n,
            vec![(0..n as u32).map(HostId).collect()],
        ))
    }

    #[test]
    fn multicast_fraction_matches_probability() {
        let groups = groups_all_in_one(8);
        let mut src = PaperSource::new(workload(0.1), groups, 8, 1, HostId(0));
        let mut now = 0;
        let mut mcast = 0;
        let n = 50_000;
        for _ in 0..n {
            let (m, gap) = src.next(now, HostId(0));
            now += gap.unwrap();
            if matches!(m.unwrap().dest, Destination::Multicast(_)) {
                mcast += 1;
            }
        }
        let frac = mcast as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "multicast fraction {frac}");
    }

    #[test]
    fn non_members_never_multicast() {
        let groups = Arc::new(GroupSet::from_members(4, vec![vec![
            HostId(0),
            HostId(1),
        ]]));
        let mut src = PaperSource::new(workload(0.9), groups, 4, 2, HostId(3));
        for i in 0..1000 {
            let (m, _) = src.next(i, HostId(3));
            assert!(matches!(m.unwrap().dest, Destination::Unicast(_)));
        }
    }

    #[test]
    fn unicast_never_targets_self() {
        let groups = groups_all_in_one(4);
        let mut src = PaperSource::new(workload(0.0), groups, 4, 3, HostId(2));
        for i in 0..5000 {
            let (m, _) = src.next(i, HostId(2));
            match m.unwrap().dest {
                Destination::Unicast(d) => assert_ne!(d, HostId(2)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unicast_destinations_cover_all_others() {
        let groups = groups_all_in_one(5);
        let mut src = PaperSource::new(workload(0.0), groups, 5, 4, HostId(0));
        let mut seen = [false; 5];
        for i in 0..2000 {
            let (m, _) = src.next(i, HostId(0));
            if let Destination::Unicast(d) = m.unwrap().dest {
                seen[d.0 as usize] = true;
            }
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    fn stop_at_halts_generation() {
        let groups = groups_all_in_one(4);
        let mut w = workload(0.1);
        w.stop_at = Some(1000);
        let mut src = PaperSource::new(w, groups, 4, 5, HostId(1));
        let (m, next) = src.next(999, HostId(1));
        assert!(m.is_some());
        assert!(next.is_some());
        let (m, next) = src.next(1000, HostId(1));
        assert!(m.is_none());
        assert!(next.is_none());
    }
}
