//! Deterministic RNG stream derivation.
//!
//! One master seed yields an independent stream per host so that changing
//! one host's draws cannot shift every other host's sequence (a classic
//! reproducibility bug in simulation studies).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive a per-host RNG from a master seed. Streams with different
/// `(seed, index)` are independent for simulation purposes.
pub fn host_stream(master: u64, index: u64) -> SmallRng {
    // SplitMix64-style mixing of (master, index) to a child seed.
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// Sample an exponential with the given mean (inverse-CDF method).
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    // Avoid ln(0); gen::<f64>() is in [0, 1).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = host_stream(42, 3);
        let mut b = host_stream(42, 3);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ_by_index() {
        let mut a = host_stream(42, 0);
        let mut b = host_stream(42, 1);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = host_stream(7, 0);
        let n = 200_000;
        let mean = 50.0;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.02,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = host_stream(9, 9);
        for _ in 0..10_000 {
            assert!(exponential(&mut rng, 10.0) >= 0.0);
        }
    }
}
