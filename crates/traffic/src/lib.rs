//! # wormcast-traffic — workload generation
//!
//! Reproduces the paper's traffic model (Section 7):
//!
//! * worm generation is a **Poisson process** per host, parameterised by
//!   *offered load* — the output-link utilization per host, the x-axis of
//!   Figures 10 and 11;
//! * worm lengths are **geometrically distributed** with a mean of 400
//!   bytes (clamped to Myrinet's 9 KB maximum);
//! * each generated worm is a **multicast** with probability `p` (0.10 for
//!   the torus experiment; swept over {0.05..0.20} for the shufflenet),
//!   choosing uniformly among the groups its host belongs to; otherwise it
//!   is a unicast to a uniformly chosen other host;
//! * multicast groups are built by choosing members at random (10 groups of
//!   10 on the torus; 4 groups of 6 on the shufflenet).
//!
//! All randomness is deterministic per seed.

pub mod arrivals;
pub mod groups;
pub mod lengths;
pub mod rng;
pub mod script;
pub mod workload;

pub use arrivals::PoissonArrivals;
pub use groups::GroupSet;
pub use lengths::LengthDist;
pub use workload::{PaperSource, PaperWorkload};
