//! Worm length distributions.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Myrinet's maximum worm size (a LANai control-program limit).
pub const MAX_WORM_BYTES: u32 = 9 * 1024;

/// Payload length distribution for generated worms.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every worm has exactly this many payload bytes.
    Fixed(u32),
    /// Geometric with the given mean, minimum 1 byte, clamped to
    /// [`MAX_WORM_BYTES`]. The paper's simulations use mean 400.
    Geometric { mean: u32 },
}

impl LengthDist {
    /// Sample a payload length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        match *self {
            LengthDist::Fixed(n) => n.min(MAX_WORM_BYTES),
            LengthDist::Geometric { mean } => {
                assert!(mean >= 1, "geometric mean must be >= 1");
                // Geometric on {1, 2, ...} with mean m: success prob 1/m.
                // Inverse CDF: ceil(ln(1-u) / ln(1-p)).
                let p = 1.0 / mean as f64;
                let u: f64 = rng.gen();
                let k = if p >= 1.0 {
                    1.0
                } else {
                    ((1.0 - u).ln() / (1.0 - p).ln()).ceil()
                };
                (k as u32).clamp(1, MAX_WORM_BYTES)
            }
        }
    }

    /// The distribution's mean (after clamping effects are ignored —
    /// negligible for the paper's 400-byte mean vs 9 KB cap).
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDist::Fixed(n) => n.min(MAX_WORM_BYTES) as f64,
            LengthDist::Geometric { mean } => mean as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::host_stream;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = host_stream(1, 1);
        let d = LengthDist::Fixed(777);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 777);
        }
    }

    #[test]
    fn fixed_clamps_to_max() {
        let mut rng = host_stream(1, 1);
        assert_eq!(LengthDist::Fixed(1 << 20).sample(&mut rng), MAX_WORM_BYTES);
    }

    #[test]
    fn geometric_mean_converges_to_400() {
        let mut rng = host_stream(2, 0);
        let d = LengthDist::Geometric { mean: 400 };
        let n = 200_000u32;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 400.0).abs() < 8.0,
            "sample mean {mean} too far from 400"
        );
    }

    #[test]
    fn geometric_bounds() {
        let mut rng = host_stream(3, 0);
        let d = LengthDist::Geometric { mean: 4000 };
        for _ in 0..50_000 {
            let s = d.sample(&mut rng);
            assert!((1..=MAX_WORM_BYTES).contains(&s));
        }
    }

    #[test]
    fn geometric_mean_one_is_degenerate() {
        let mut rng = host_stream(4, 0);
        let d = LengthDist::Geometric { mean: 1 };
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }
}
