//! The host-connectivity graph (the paper's Figure 8 transformation).
//!
//! Host-adapter multicast structures (Hamiltonian circuits, rooted trees)
//! live on the *complete* graph over hosts, where the weight of edge
//! `(a, b)` is the cost of the unicast path between them — the paper
//! "simply uses the hop count of the path", and so do we.

use wormcast_sim::engine::HostId;
use wormcast_sim::network::RouteTable;

/// Complete host graph with hop-count weights derived from a route table.
#[derive(Clone, Debug)]
pub struct HostGraph {
    n: usize,
    /// `hops[a][b]` = unicast route length from a to b (in route bytes,
    /// i.e. switches traversed).
    hops: Vec<Vec<u32>>,
}

impl HostGraph {
    /// Derive from the network's unicast routes. Note up/down routes are
    /// not symmetric in general, so `hops(a, b)` may differ from
    /// `hops(b, a)`.
    pub fn from_routes(rt: &RouteTable) -> Self {
        let n = rt.num_hosts();
        let mut hops = vec![vec![0u32; n]; n];
        #[allow(clippy::needless_range_loop)] // (a, b) index pairs read best
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    hops[a][b] = rt.hops(HostId(a as u32), HostId(b as u32)) as u32;
                }
            }
        }
        HostGraph { n, hops }
    }

    pub fn num_hosts(&self) -> usize {
        self.n
    }

    /// Hop count of the unicast path from `a` to `b`.
    pub fn hops(&self, a: HostId, b: HostId) -> u32 {
        self.hops[a.0 as usize][b.0 as usize]
    }

    /// Total hop length of a circuit visiting `order` and returning to the
    /// start (the paper's Figure 8 reports "the hop length for this
    /// circuit").
    pub fn circuit_length(&self, order: &[HostId]) -> u32 {
        if order.len() < 2 {
            return 0;
        }
        let mut total = 0;
        for w in order.windows(2) {
            total += self.hops(w[0], w[1]);
        }
        total + self.hops(*order.last().unwrap(), order[0])
    }

    /// Total hop weight of a set of tree edges `(parent, child)`.
    pub fn tree_weight(&self, edges: &[(HostId, HostId)]) -> u32 {
        edges.iter().map(|&(p, c)| self.hops(p, c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopoBuilder;
    use crate::updown::UpDown;

    /// Line of 3 switches, one host each.
    fn line3() -> HostGraph {
        let mut b = TopoBuilder::new(3);
        b.link(0, 1, 1);
        b.link(1, 2, 1);
        for s in 0..3 {
            b.host(s);
        }
        let t = b.build();
        let ud = UpDown::compute(&t, 0);
        HostGraph::from_routes(&ud.route_table(&t, false))
    }

    #[test]
    fn hop_counts_on_a_line() {
        let g = line3();
        let h = |a, b| g.hops(HostId(a), HostId(b));
        // Route length includes the final host port byte: adjacent = 2
        // switch hops? No: host0 -> host1 crosses switch0 and switch1,
        // route = [port to sw1, port to host1] = 2 bytes.
        assert_eq!(h(0, 1), 2);
        assert_eq!(h(1, 0), 2);
        assert_eq!(h(0, 2), 3);
        assert_eq!(h(0, 0), 0);
    }

    #[test]
    fn circuit_length_closes_the_loop() {
        let g = line3();
        let order = [HostId(0), HostId(1), HostId(2)];
        // 0->1 (2) + 1->2 (2) + 2->0 (3).
        assert_eq!(g.circuit_length(&order), 7);
        assert_eq!(g.circuit_length(&order[..1]), 0);
    }

    #[test]
    fn tree_weight_sums_edges() {
        let g = line3();
        let edges = [(HostId(0), HostId(1)), (HostId(0), HostId(2))];
        assert_eq!(g.tree_weight(&edges), 2 + 3);
    }
}
