//! Random irregular topologies for property tests and robustness checks.
//!
//! Myrinet installations are arbitrary switch graphs (that's why Autonet
//! invented up/down routing in the first place), so the routing and
//! protocol invariants must hold on irregular topologies, not just the
//! regular torus/shufflenet. This module generates random connected switch
//! graphs: a random spanning tree plus extra crosslinks.

use crate::graph::{TopoBuilder, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wormcast_sim::time::SimTime;

/// Parameters for random topology generation.
#[derive(Clone, Copy, Debug)]
pub struct IrregularSpec {
    pub num_switches: usize,
    /// Crosslinks added on top of the spanning tree.
    pub extra_links: usize,
    pub hosts_per_switch: usize,
    pub link_delay: SimTime,
}

/// Generate a random connected topology. Deterministic in `seed`.
pub fn irregular(spec: IrregularSpec, seed: u64) -> Topology {
    assert!(spec.num_switches >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = spec.num_switches;
    let mut b = TopoBuilder::new(n);
    // Random spanning tree: attach each switch i >= 1 to a random earlier
    // switch (uniform random recursive tree).
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.link(p, i, spec.link_delay);
    }
    // Extra crosslinks between pairs not already linked.
    let mut pairs: std::collections::HashSet<(usize, usize)> = b
        .clone()
        .build()
        .links
        .iter()
        .map(|l| (l.a.min(l.b), l.a.max(l.b)))
        .collect();
    let mut added = 0;
    let mut attempts = 0;
    while added < spec.extra_links && attempts < spec.extra_links * 50 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let a = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if a == c {
            continue;
        }
        let key = (a.min(c), a.max(c));
        if pairs.contains(&key) {
            continue;
        }
        pairs.insert(key);
        b.link(a, c, spec.link_delay);
        added += 1;
    }
    for s in 0..n {
        for _ in 0..spec.hosts_per_switch {
            b.host(s);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::UpDown;

    #[test]
    fn always_connected() {
        for seed in 0..20 {
            let t = irregular(
                IrregularSpec {
                    num_switches: 12,
                    extra_links: 5,
                    hosts_per_switch: 1,
                    link_delay: 1,
                },
                seed,
            );
            assert!(t.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = IrregularSpec {
            num_switches: 8,
            extra_links: 4,
            hosts_per_switch: 2,
            link_delay: 3,
        };
        let a = irregular(spec, 99);
        let b = irregular(spec, 99);
        assert_eq!(a.links, b.links);
        assert_eq!(a.hosts, b.hosts);
        let c = irregular(spec, 100);
        assert!(a.links != c.links || a.hosts != c.hosts);
    }

    #[test]
    fn updown_legal_on_random_topologies() {
        for seed in 0..10 {
            let t = irregular(
                IrregularSpec {
                    num_switches: 10,
                    extra_links: 6,
                    hosts_per_switch: 1,
                    link_delay: 1,
                },
                seed,
            );
            let ud = UpDown::compute(&t, 0);
            for s in 0..10 {
                for d in 0..10 {
                    let p = ud.route_switches(&t, s, d, false).expect("reachable");
                    assert!(ud.is_legal(&p), "seed {seed}: illegal {p:?}");
                }
            }
        }
    }

    #[test]
    fn no_duplicate_links() {
        let t = irregular(
            IrregularSpec {
                num_switches: 15,
                extra_links: 20,
                hosts_per_switch: 1,
                link_delay: 1,
            },
            7,
        );
        let mut pairs: Vec<(usize, usize)> = t
            .links
            .iter()
            .map(|l| (l.a.min(l.b), l.a.max(l.b)))
            .collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), before);
    }
}
