//! Rooted multicast trees (Section 6, Figure 9).
//!
//! The paper's rule: hosts are ordered by increasing ID from the root down —
//! every child has a higher ID than its parent — and the multicast starts at
//! the root. Buffer requests then always point to a higher ID, so waits
//! cannot cycle (the same argument as the Hamiltonian circuit, without even
//! needing the class reversal when the start-at-root mode is used).
//!
//! Several shapes satisfy the rule; the paper's Figure 9 shows a binary
//! heap-like tree. We provide:
//!
//! * [`TreeShape::BinaryHeap`] — sorted members laid out as a binary heap
//!   (node `i`'s children are `2i+1`, `2i+2`), as in Figure 9;
//! * [`TreeShape::DAryHeap`] — the d-ary generalisation (fan-out trade-off:
//!   wider trees are shallower but serialise more copies per adapter);
//! * [`TreeShape::GreedyHop`] — members are attached in ascending-ID order
//!   to the existing node with the cheapest unicast hop cost; respects the
//!   ID rule *and* adapts to the topology;
//! * [`TreeShape::Star`] — the root sends to everyone (degenerate case,
//!   equivalent to repeated unicast from the lowest-ID host).

use crate::hostgraph::HostGraph;
use std::collections::BTreeMap;
use wormcast_sim::engine::HostId;

/// Tree construction strategy. All strategies respect the child-ID > parent-ID
/// deadlock rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeShape {
    BinaryHeap,
    DAryHeap(u8),
    GreedyHop,
    Star,
}

/// A rooted multicast tree over a group's members.
///
/// ```
/// use wormcast_sim::engine::HostId;
/// use wormcast_topo::tree::{MulticastTree, TreeShape};
/// let members: Vec<HostId> = [10, 36, 12, 19, 23].iter().map(|&i| HostId(i)).collect();
/// let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
/// assert_eq!(tree.root(), HostId(10));
/// assert_eq!(tree.children(HostId(10)), &[HostId(12), HostId(19)]);
/// assert!(tree.respects_id_order()); // the paper's deadlock rule
/// ```
#[derive(Clone, Debug)]
pub struct MulticastTree {
    root: HostId,
    members: Vec<HostId>, // sorted ascending
    children: BTreeMap<HostId, Vec<HostId>>,
    parent: BTreeMap<HostId, HostId>,
}

impl MulticastTree {
    /// Build a tree over `members`. `graph` is required for
    /// [`TreeShape::GreedyHop`] and ignored otherwise.
    pub fn build(members: &[HostId], shape: TreeShape, graph: Option<&HostGraph>) -> Self {
        assert!(!members.is_empty(), "empty multicast group");
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        debug_assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate members in multicast group"
        );
        let edges: Vec<(HostId, HostId)> = match shape {
            TreeShape::BinaryHeap => heap_edges(&sorted, 2),
            TreeShape::DAryHeap(d) => {
                assert!(d >= 1, "d-ary heap needs d >= 1");
                heap_edges(&sorted, d as usize)
            }
            TreeShape::Star => sorted[1..].iter().map(|&c| (sorted[0], c)).collect(),
            TreeShape::GreedyHop => {
                let g = graph.expect("GreedyHop needs a host graph");
                greedy_edges(&sorted, g)
            }
        };
        let mut children: BTreeMap<HostId, Vec<HostId>> = BTreeMap::new();
        let mut parent = BTreeMap::new();
        for &(p, c) in &edges {
            children.entry(p).or_default().push(c);
            parent.insert(c, p);
        }
        for kids in children.values_mut() {
            kids.sort_unstable(); // forward to lower-ID children first
        }
        MulticastTree {
            root: sorted[0],
            members: sorted,
            children,
            parent,
        }
    }

    pub fn root(&self) -> HostId {
        self.root
    }

    /// Members in ascending ID order.
    pub fn members(&self) -> &[HostId] {
        &self.members
    }

    pub fn contains(&self, h: HostId) -> bool {
        self.members.binary_search(&h).is_ok()
    }

    /// The successors a host forwards a root-initiated multicast to.
    pub fn children(&self, h: HostId) -> &[HostId] {
        self.children.get(&h).map_or(&[], |v| v.as_slice())
    }

    pub fn parent(&self, h: HostId) -> Option<HostId> {
        self.parent.get(&h).copied()
    }

    /// All `(parent, child)` edges.
    pub fn edges(&self) -> Vec<(HostId, HostId)> {
        self.children
            .iter()
            .flat_map(|(&p, kids)| kids.iter().map(move |&c| (p, c)))
            .collect()
    }

    /// For the broadcast-from-originator mode: the tree neighbors of `h`
    /// (parent and children) except `from`, which the message arrived on.
    pub fn neighbors_except(&self, h: HostId, from: Option<HostId>) -> Vec<HostId> {
        let mut out = Vec::new();
        if let Some(p) = self.parent(h) {
            if Some(p) != from {
                out.push(p);
            }
        }
        for &c in self.children(h) {
            if Some(c) != from {
                out.push(c);
            }
        }
        out
    }

    /// Check the deadlock rule: every child ID exceeds its parent's.
    pub fn respects_id_order(&self) -> bool {
        self.edges().iter().all(|&(p, c)| c > p)
    }

    /// Tree depth in edges (0 for a singleton group).
    pub fn depth(&self) -> usize {
        fn go(t: &MulticastTree, h: HostId) -> usize {
            t.children(h)
                .iter()
                .map(|&c| 1 + go(t, c))
                .max()
                .unwrap_or(0)
        }
        go(self, self.root)
    }

    /// Maximum fan-out of any node.
    pub fn max_fanout(&self) -> usize {
        self.children.values().map(Vec::len).max().unwrap_or(0)
    }
}

/// Heap layout: sorted node `i`'s children are `d*i + 1 ..= d*i + d`.
fn heap_edges(sorted: &[HostId], d: usize) -> Vec<(HostId, HostId)> {
    let mut edges = Vec::new();
    for (i, &p) in sorted.iter().enumerate() {
        for j in 1..=d {
            let c = d * i + j;
            if c < sorted.len() {
                edges.push((p, sorted[c]));
            }
        }
    }
    edges
}

/// Attach members in ascending ID order to the cheapest existing node.
/// Parents are always earlier (lower-ID) members, so the ID rule holds by
/// construction. Ties break towards the lowest parent ID (determinism).
fn greedy_edges(sorted: &[HostId], g: &HostGraph) -> Vec<(HostId, HostId)> {
    let mut edges = Vec::new();
    for (i, &c) in sorted.iter().enumerate().skip(1) {
        let best = sorted[..i]
            .iter()
            .copied()
            .min_by_key(|&p| (g.hops(p, c), p))
            .expect("at least the root exists");
        edges.push((best, c));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopoBuilder;
    use crate::updown::UpDown;

    fn ids(v: &[u32]) -> Vec<HostId> {
        v.iter().map(|&i| HostId(i)).collect()
    }

    fn line_graph(n: usize) -> HostGraph {
        let mut b = TopoBuilder::new(n);
        for s in 0..n - 1 {
            b.link(s, s + 1, 1);
        }
        for s in 0..n {
            b.host(s);
        }
        let t = b.build();
        let ud = UpDown::compute(&t, 0);
        HostGraph::from_routes(&ud.route_table(&t, false))
    }

    #[test]
    fn binary_heap_matches_figure9_shape() {
        // Figure 9: members {10,12,19,23,27,36,41,49,52}; root 10 with
        // children 12 and 19, 12 with 23 and 27, 19 with 36 and 41, ...
        let m = ids(&[49, 10, 36, 12, 19, 23, 27, 52, 41]);
        let t = MulticastTree::build(&m, TreeShape::BinaryHeap, None);
        assert_eq!(t.root(), HostId(10));
        assert_eq!(t.children(HostId(10)), &[HostId(12), HostId(19)]);
        assert_eq!(t.children(HostId(12)), &[HostId(23), HostId(27)]);
        assert_eq!(t.children(HostId(19)), &[HostId(36), HostId(41)]);
        assert_eq!(t.children(HostId(23)), &[HostId(49), HostId(52)]);
        assert!(t.respects_id_order());
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn all_shapes_respect_id_order_and_cover_members() {
        let g = line_graph(10);
        let m = ids(&[9, 0, 4, 2, 7, 5]);
        for shape in [
            TreeShape::BinaryHeap,
            TreeShape::DAryHeap(3),
            TreeShape::GreedyHop,
            TreeShape::Star,
        ] {
            let t = MulticastTree::build(&m, shape, Some(&g));
            assert!(t.respects_id_order(), "{shape:?}");
            // Every non-root member has a parent.
            let mut covered = vec![t.root()];
            covered.extend(t.edges().iter().map(|&(_, c)| c));
            covered.sort_unstable();
            let mut want = m.clone();
            want.sort_unstable();
            assert_eq!(covered, want, "{shape:?}");
        }
    }

    #[test]
    fn star_depth_one() {
        let m = ids(&[3, 1, 8]);
        let t = MulticastTree::build(&m, TreeShape::Star, None);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.max_fanout(), 2);
        assert_eq!(t.parent(HostId(8)), Some(HostId(1)));
    }

    #[test]
    fn greedy_prefers_close_parents() {
        let g = line_graph(10);
        // Members 0, 1, 9: 9 should attach to 1 (8 switch hops) rather than
        // 0 (9 hops).
        let m = ids(&[0, 1, 9]);
        let t = MulticastTree::build(&m, TreeShape::GreedyHop, Some(&g));
        assert_eq!(t.parent(HostId(9)), Some(HostId(1)));
    }

    #[test]
    fn neighbors_except_excludes_arrival_edge() {
        let m = ids(&[1, 2, 3, 4, 5]);
        let t = MulticastTree::build(&m, TreeShape::BinaryHeap, None);
        // Tree: 1 -> {2,3}, 2 -> {4,5}.
        let n = t.neighbors_except(HostId(2), Some(HostId(4)));
        assert_eq!(n, vec![HostId(1), HostId(5)]);
        let n_root = t.neighbors_except(HostId(1), None);
        assert_eq!(n_root, vec![HostId(2), HostId(3)]);
    }

    #[test]
    fn singleton_tree() {
        let t = MulticastTree::build(&[HostId(7)], TreeShape::BinaryHeap, None);
        assert_eq!(t.root(), HostId(7));
        assert_eq!(t.depth(), 0);
        assert!(t.children(HostId(7)).is_empty());
        assert!(t.respects_id_order());
    }

    #[test]
    fn dary_heap_fanout_bounded() {
        let m: Vec<HostId> = (0..20).map(HostId).collect();
        let t = MulticastTree::build(&m, TreeShape::DAryHeap(4), None);
        assert!(t.max_fanout() <= 4);
        assert!(t.respects_id_order());
    }
}
