//! Up/down routing (Autonet / Myrinet).
//!
//! One switch is chosen as the root of a BFS spanning tree. Every link gets
//! an orientation: traversing from a switch with a higher `(level, id)` pair
//! to a lower one is an **up** traversal (towards the root); the opposite is
//! **down**. A legal route traverses zero or more up links followed by zero
//! or more down links — no up-after-down — which breaks every circular
//! channel dependency and makes the routing deadlock-free (Section 2 of the
//! paper).
//!
//! The paper notes two costs, both reproduced by the experiments here:
//! paths are generally not shortest, and links near the root congest. It
//! also notes that its simulations used "a fixed choice of one path per
//! source-destination pair"; [`UpDown::route_table`] is deterministic in the
//! same way.
//!
//! The spanning-tree-*restricted* mode (`restrict_to_tree`) implements the
//! Section 3 variant where **all** worms are confined to tree links so that
//! switch-level multicast cannot deadlock; crosslinks go unused.

use crate::graph::Topology;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use wormcast_sim::engine::HostId;
use wormcast_sim::network::RouteTable;

/// The computed up/down orientation for a topology.
///
/// ```
/// use wormcast_topo::{TopoBuilder, UpDown};
/// let mut b = TopoBuilder::new(4); // a ring of four switches
/// b.link(0, 1, 1); b.link(1, 2, 1); b.link(2, 3, 1); b.link(3, 0, 1);
/// for s in 0..4 { b.host(s); }
/// let topo = b.build();
/// let ud = UpDown::compute(&topo, 0);
/// // Every switch pair gets a legal up*-then-down* route:
/// let path = ud.route_switches(&topo, 2, 3, false).unwrap();
/// assert!(ud.is_legal(&path));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UpDown {
    pub root: usize,
    /// BFS level of each switch (root = 0).
    pub level: Vec<u32>,
    /// Parent switch in the spanning tree (None for the root).
    pub parent: Vec<Option<usize>>,
    /// Whether each link (by topology link index) is in the spanning tree.
    pub tree_link: Vec<bool>,
}

impl UpDown {
    /// Compute the spanning tree and link orientations from `root`.
    ///
    /// Neighbor exploration is ordered by link insertion, so the result is
    /// deterministic for a given topology.
    pub fn compute(topo: &Topology, root: usize) -> Self {
        let n = topo.num_switches();
        assert!(root < n, "root {root} out of range ({n} switches)");
        assert!(topo.is_connected(), "up/down needs a connected topology");
        let mut level = vec![u32::MAX; n];
        let mut parent = vec![None; n];
        let mut tree_link = vec![false; topo.links.len()];
        let mut q = VecDeque::new();
        level[root] = 0;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for (v, _, _, li) in topo.neighbors(u) {
                if level[v] == u32::MAX {
                    level[v] = level[u] + 1;
                    parent[v] = Some(u);
                    tree_link[li] = true;
                    q.push_back(v);
                }
            }
        }
        UpDown {
            root,
            level,
            parent,
            tree_link,
        }
    }

    /// Is traversing from `u` to `v` an *up* traversal (towards the root)?
    /// Ties in level are broken by switch id, as in Autonet.
    #[inline]
    pub fn is_up(&self, u: usize, v: usize) -> bool {
        (self.level[v], v) < (self.level[u], u)
    }

    /// Is a switch-path legal under up/down (up* then down*)?
    pub fn is_legal(&self, path: &[usize]) -> bool {
        let mut descending = false;
        for w in path.windows(2) {
            if self.is_up(w[0], w[1]) {
                if descending {
                    return false;
                }
            } else {
                descending = true;
            }
        }
        true
    }

    /// Shortest legal switch route from `from` to `to`:
    /// the output port taken at each switch along the way.
    ///
    /// With `restrict_to_tree`, only spanning-tree links may be used (the
    /// Section 3 restricted scheme).
    ///
    /// Several shortest legal paths usually exist; the choice among them is
    /// fixed per `(from, to, tiebreak)` triple, with `tiebreak` shuffling
    /// the exploration order. The paper notes it used "a fixed choice of
    /// one path per source-destination pair among all possible equal
    /// length paths"; deriving `tiebreak` from the pair spreads those
    /// fixed choices across the equal-length alternatives instead of
    /// funnelling every pair over the same links.
    ///
    /// Returns `None` only when `restrict_to_tree` cuts connectivity —
    /// impossible for a spanning tree, so in practice always `Some`.
    pub fn route_ports(
        &self,
        topo: &Topology,
        from: usize,
        to: usize,
        restrict_to_tree: bool,
    ) -> Option<Vec<u8>> {
        self.route_ports_tiebreak(topo, from, to, restrict_to_tree, 0)
    }

    /// [`Self::route_ports`] with an explicit tie-break selector.
    pub fn route_ports_tiebreak(
        &self,
        topo: &Topology,
        from: usize,
        to: usize,
        restrict_to_tree: bool,
        tiebreak: u64,
    ) -> Option<Vec<u8>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = topo.num_switches();
        // BFS over (switch, phase): phase 0 = may still climb, 1 = descending.
        const UNSEEN: usize = usize::MAX;
        let mut pred: Vec<usize> = vec![UNSEEN; 2 * n]; // predecessor state
        let mut pred_port: Vec<u8> = vec![0; 2 * n];
        let start = from * 2;
        let mut q = VecDeque::new();
        pred[start] = start; // mark visited; self-predecessor flags the start
        q.push_back(start);
        let mut goal: Option<usize> = None;
        'bfs: while let Some(state) = q.pop_front() {
            let (u, phase) = (state / 2, state % 2);
            let mut neigh = topo.neighbors(u);
            if tiebreak != 0 {
                // Deterministic shuffle keyed on (tiebreak, u): rotates and
                // reverses the exploration order so equal-length paths vary
                // per source-destination pair.
                let key = tiebreak
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u as u64);
                let m = neigh.len().max(1);
                neigh.rotate_left((key as usize) % m);
                if (key >> 32) & 1 == 1 {
                    neigh.reverse();
                }
            }
            for (v, out_port, _, li) in neigh {
                if restrict_to_tree && !self.tree_link[li] {
                    continue;
                }
                let up = self.is_up(u, v);
                let next_phase = if up { 0 } else { 1 };
                if phase == 1 && up {
                    continue; // no up after down
                }
                let next = v * 2 + next_phase;
                if pred[next] == UNSEEN {
                    pred[next] = state;
                    pred_port[next] = out_port;
                    if v == to {
                        goal = Some(next);
                        break 'bfs;
                    }
                    q.push_back(next);
                }
            }
        }
        let mut state = goal?;
        let mut ports = Vec::new();
        while pred[state] != state {
            ports.push(pred_port[state]);
            state = pred[state];
        }
        ports.reverse();
        Some(ports)
    }

    /// The full switch sequence of the route from `from` to `to` (for
    /// legality checks and hop statistics).
    pub fn route_switches(
        &self,
        topo: &Topology,
        from: usize,
        to: usize,
        restrict_to_tree: bool,
    ) -> Option<Vec<usize>> {
        let ports = self.route_ports(topo, from, to, restrict_to_tree)?;
        let mut path = vec![from];
        let mut cur = from;
        for p in ports {
            let (next, _, _, _) = *topo
                .neighbors(cur)
                .iter()
                .find(|&&(_, out, _, _)| out == p)
                .expect("route uses an existing port");
            path.push(next);
            cur = next;
        }
        debug_assert_eq!(cur, to);
        Some(path)
    }

    /// Build the unicast route table for every ordered host pair.
    ///
    /// A route is the switch-path ports followed by the destination host's
    /// port on its final switch. Hosts on the same switch route in one hop.
    pub fn route_table(&self, topo: &Topology, restrict_to_tree: bool) -> RouteTable {
        let nh = topo.num_hosts();
        let mut rt = RouteTable::new(nh);
        // Cache switch-to-switch port paths.
        let ns = topo.num_switches();
        let mut cache: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; ns]; ns];
        for (si, s) in topo.hosts.iter().enumerate() {
            for (di, d) in topo.hosts.iter().enumerate() {
                if si == di {
                    continue;
                }
                if cache[s.switch][d.switch].is_none() {
                    let tiebreak = (s.switch as u64) << 32 | d.switch as u64 | 1;
                    cache[s.switch][d.switch] = Some(
                        self.route_ports_tiebreak(topo, s.switch, d.switch, restrict_to_tree, tiebreak)
                            .expect("spanning tree keeps everything reachable"),
                    );
                }
                let mut ports = cache[s.switch][d.switch].clone().expect("just filled");
                ports.push(d.port);
                rt.set(HostId(si as u32), HostId(di as u32), ports);
            }
        }
        rt
    }

    /// Mean switch-path hop count over all ordered host pairs (the metric
    /// behind the paper's observation that up/down paths are "generally not
    /// shortest paths").
    pub fn mean_hops(&self, topo: &Topology, restrict_to_tree: bool) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for (si, s) in topo.hosts.iter().enumerate() {
            for (di, d) in topo.hosts.iter().enumerate() {
                if si == di {
                    continue;
                }
                total += self
                    .route_ports(topo, s.switch, d.switch, restrict_to_tree)
                    .expect("reachable")
                    .len();
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopoBuilder;

    /// A 4-switch ring with one host each.
    fn ring4() -> Topology {
        let mut b = TopoBuilder::new(4);
        b.link(0, 1, 1);
        b.link(1, 2, 1);
        b.link(2, 3, 1);
        b.link(3, 0, 1);
        for s in 0..4 {
            b.host(s);
        }
        b.build()
    }

    #[test]
    fn bfs_levels_on_ring() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        assert_eq!(ud.level, vec![0, 1, 2, 1]);
        assert_eq!(ud.parent[0], None);
        assert_eq!(ud.parent[1], Some(0));
        assert_eq!(ud.parent[3], Some(0));
        // Exactly n-1 tree links.
        assert_eq!(ud.tree_link.iter().filter(|&&t| t).count(), 3);
    }

    #[test]
    fn up_orientation() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        assert!(ud.is_up(1, 0));
        assert!(!ud.is_up(0, 1));
        // Same level (1 and 3): id breaks the tie.
        assert!(ud.is_up(3, 1));
        assert!(!ud.is_up(1, 3));
    }

    #[test]
    fn legality_checker() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        assert!(ud.is_legal(&[2, 1, 0, 3])); // up, up, down
        assert!(ud.is_legal(&[0, 3]));
        assert!(!ud.is_legal(&[0, 1, 0])); // down then up
    }

    #[test]
    fn routes_are_legal_and_reach() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        for s in 0..4 {
            for d in 0..4 {
                let path = ud.route_switches(&t, s, d, false).expect("reachable");
                assert_eq!(*path.first().unwrap(), s);
                assert_eq!(*path.last().unwrap(), d);
                assert!(ud.is_legal(&path), "illegal path {path:?}");
            }
        }
    }

    #[test]
    fn restricted_routes_use_only_tree_links() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        // 2 -> 3 unrestricted can use the 2-3 crosslink... (2,3) is a tree
        // link? Tree links: 0-1, 1-2, 3-0. So 2-3 is the crosslink.
        let unrestricted = ud.route_switches(&t, 2, 3, false).unwrap();
        assert_eq!(unrestricted, vec![2, 3]);
        let restricted = ud.route_switches(&t, 2, 3, true).unwrap();
        assert_eq!(restricted, vec![2, 1, 0, 3]);
        assert!(ud.is_legal(&restricted));
    }

    #[test]
    fn route_table_has_every_pair() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        let rt = ud.route_table(&t, false);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s == d {
                    continue;
                }
                let r = rt.get(HostId(s), HostId(d));
                assert!(!r.is_empty(), "missing route {s}->{d}");
            }
        }
        // Same-switch is impossible here; adjacent pair route includes the
        // host port as its last entry.
        let r = rt.get(HostId(0), HostId(1));
        assert_eq!(r.len(), 2); // one switch hop + host port
    }

    #[test]
    fn same_switch_hosts_route_directly() {
        let mut b = TopoBuilder::new(1);
        let _h0 = b.host(0);
        let _h1 = b.host(0);
        let t = b.build();
        let ud = UpDown::compute(&t, 0);
        let rt = ud.route_table(&t, false);
        let r = rt.get(HostId(0), HostId(1));
        assert_eq!(r, &[1]); // host 1 sits on port 1
    }

    #[test]
    fn mean_hops_restricted_is_never_shorter() {
        let t = ring4();
        let ud = UpDown::compute(&t, 0);
        assert!(ud.mean_hops(&t, true) >= ud.mean_hops(&t, false));
    }
}
