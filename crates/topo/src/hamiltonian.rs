//! Hamiltonian circuits over multicast group members (Section 5).
//!
//! The paper's deadlock-avoidance rule orders the circuit by **ascending
//! host ID** — buffer requests then always point from a lower to a higher
//! ID (with the two-buffer-class trick covering the single wrap-around),
//! so waits cannot cycle. That fixes the circuit completely; hop cost is
//! whatever the ID ordering yields.
//!
//! For the ablation study we also provide a hop-cost-aware circuit
//! (nearest-neighbour construction + 2-opt improvement). It is *not*
//! deadlock-safe under the ID rule — it exists to quantify what the ID
//! ordering costs in circuit length.

use crate::hostgraph::HostGraph;
use wormcast_sim::engine::HostId;

/// How to order the circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CircuitStrategy {
    /// Ascending host IDs — the paper's deadlock-free rule.
    AscendingIds,
    /// Nearest-neighbour + 2-opt on hop costs (ablation only; ignores the
    /// deadlock rule).
    HopCost,
}

/// Build the multicast circuit over `members` (any order; duplicates are a
/// caller bug). The returned order starts at the lowest-ID member.
pub fn hamiltonian_circuit(
    members: &[HostId],
    graph: &HostGraph,
    strategy: CircuitStrategy,
) -> Vec<HostId> {
    assert!(!members.is_empty(), "empty multicast group");
    let mut order: Vec<HostId> = members.to_vec();
    order.sort_unstable();
    debug_assert!(
        order.windows(2).all(|w| w[0] != w[1]),
        "duplicate members in multicast group"
    );
    match strategy {
        CircuitStrategy::AscendingIds => order,
        CircuitStrategy::HopCost => hop_cost_circuit(&order, graph),
    }
}

/// Nearest-neighbour construction followed by 2-opt improvement, starting
/// from the lowest-ID member for determinism.
fn hop_cost_circuit(sorted: &[HostId], graph: &HostGraph) -> Vec<HostId> {
    let mut remaining: Vec<HostId> = sorted[1..].to_vec();
    let mut order = vec![sorted[0]];
    while !remaining.is_empty() {
        let cur = *order.last().unwrap();
        let (best_ix, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &h)| (i, (graph.hops(cur, h), h)))
            .min_by_key(|&(_, key)| key)
            .expect("non-empty");
        order.push(remaining.remove(best_ix));
    }
    two_opt(&mut order, graph);
    order
}

/// Classic 2-opt: repeatedly reverse segments while the circuit shortens.
fn two_opt(order: &mut [HostId], graph: &HostGraph) {
    let n = order.len();
    if n < 4 {
        return;
    }
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 1 {
            for j in i + 2..n {
                // Edge (i, i+1) and (j, j+1 mod n); skip the wrap pair.
                let jn = (j + 1) % n;
                if jn == i {
                    continue;
                }
                let (a, b, c, d) = (order[i], order[i + 1], order[j], order[jn]);
                let before = graph.hops(a, b) + graph.hops(c, d);
                let after = graph.hops(a, c) + graph.hops(b, d);
                if after < before {
                    order[i + 1..=j].reverse();
                    improved = true;
                }
            }
        }
    }
}

/// The successor of `host` on the circuit (wrapping), as stored in each
/// adapter's multicast group table.
pub fn successor(order: &[HostId], host: HostId) -> Option<HostId> {
    let ix = order.iter().position(|&h| h == host)?;
    Some(order[(ix + 1) % order.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopoBuilder;
    use crate::updown::UpDown;

    fn graph_of_line(n: usize) -> HostGraph {
        let mut b = TopoBuilder::new(n);
        for s in 0..n - 1 {
            b.link(s, s + 1, 1);
        }
        for s in 0..n {
            b.host(s);
        }
        let t = b.build();
        let ud = UpDown::compute(&t, 0);
        HostGraph::from_routes(&ud.route_table(&t, false))
    }

    #[test]
    fn ascending_ids_sorts_members() {
        let g = graph_of_line(5);
        let members = [HostId(3), HostId(0), HostId(4)];
        let c = hamiltonian_circuit(&members, &g, CircuitStrategy::AscendingIds);
        assert_eq!(c, vec![HostId(0), HostId(3), HostId(4)]);
    }

    #[test]
    fn circuit_visits_each_member_once() {
        let g = graph_of_line(6);
        let members: Vec<HostId> = (0..6).map(HostId).collect();
        for strat in [CircuitStrategy::AscendingIds, CircuitStrategy::HopCost] {
            let c = hamiltonian_circuit(&members, &g, strat);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, members, "{strat:?} lost or duplicated members");
        }
    }

    #[test]
    fn hop_cost_never_worse_than_id_order_on_a_line() {
        let g = graph_of_line(7);
        // A scattered member set where ID order is already optimal on a
        // line, so HopCost must match it.
        let members = [HostId(1), HostId(3), HostId(5)];
        let id_order = hamiltonian_circuit(&members, &g, CircuitStrategy::AscendingIds);
        let hop_order = hamiltonian_circuit(&members, &g, CircuitStrategy::HopCost);
        assert!(g.circuit_length(&hop_order) <= g.circuit_length(&id_order));
    }

    #[test]
    fn successor_wraps() {
        let order = [HostId(2), HostId(5), HostId(9)];
        assert_eq!(successor(&order, HostId(2)), Some(HostId(5)));
        assert_eq!(successor(&order, HostId(9)), Some(HostId(2)));
        assert_eq!(successor(&order, HostId(7)), None);
    }

    #[test]
    fn single_member_circuit() {
        let g = graph_of_line(3);
        let c = hamiltonian_circuit(&[HostId(1)], &g, CircuitStrategy::AscendingIds);
        assert_eq!(c, vec![HostId(1)]);
        assert_eq!(successor(&c, HostId(1)), Some(HostId(1)));
    }
}
