//! # wormcast-topo — topologies and deadlock-free routing
//!
//! Network topologies and the graph algorithms the paper's protocols sit on:
//!
//! * a [`graph::TopoBuilder`] for describing switch fabrics with attached
//!   hosts and turning them into `wormcast-sim` fabric specs;
//! * the paper's two simulation topologies: the **8×8 torus**
//!   ([`torus`]) and the **24-node bidirectional shufflenet**
//!   ([`shufflenet`], after Palnati/Leonardi/Gerla, ICCCN '95);
//! * **up/down routing** ([`updown`]) — the Autonet/Myrinet deadlock-free
//!   routing scheme: a BFS spanning tree orients every link, and legal
//!   routes traverse zero or more "up" links before zero or more "down"
//!   links;
//! * the **host-connectivity graph** ([`hostgraph`], the paper's Figure 8
//!   transformation), whose hop-count weights drive the multicast
//!   structures;
//! * **Hamiltonian circuits** ([`hamiltonian`], Section 5) and **rooted
//!   multicast trees** ([`tree`], Section 6) over group members, both
//!   respecting the ascending-host-ID rule that makes buffer deadlocks
//!   impossible;
//! * random irregular topologies ([`irregular`]) for property tests;
//! * cut-based fabric partitioning ([`partition`]) for sharded parallel
//!   simulation: switch→shard plans with cut/lookahead analysis.

pub mod graph;
pub mod hamiltonian;
pub mod hostgraph;
pub mod irregular;
pub mod partition;
pub mod shufflenet;
pub mod torus;
pub mod tree;
pub mod updown;

pub use graph::{TopoBuilder, Topology};
pub use hamiltonian::{hamiltonian_circuit, CircuitStrategy};
pub use partition::ShardPlan;
pub use hostgraph::HostGraph;
pub use tree::{MulticastTree, TreeShape};
pub use updown::UpDown;
