//! Bidirectional shufflenet topologies.
//!
//! The paper's Figure 11 runs on the 24-node bidirectional shufflenet of
//! Palnati, Leonardi and Gerla (ICCCN '95). A (p, k) shufflenet has
//! `k * p^k` nodes arranged in `k` columns of `p^k` rows; node `(c, r)`
//! connects to nodes `(c+1 mod k, (p*r + j) mod p^k)` for `j in 0..p` — the
//! perfect-shuffle pattern. Making those links bidirectional gives every
//! node degree `2p`. With `(p, k) = (2, 3)`: 24 nodes, degree 4 — the
//! paper's backbone.

use crate::graph::{TopoBuilder, Topology};
use wormcast_sim::time::SimTime;

/// Build a bidirectional (p, k) shufflenet with one host per switch.
/// Switch index of node `(c, r)` is `c * p^k + r`; hosts are attached in
/// switch order so host IDs ascend with switch index.
pub fn shufflenet(p: usize, k: usize, link_delay: SimTime) -> Topology {
    assert!(p >= 2 && k >= 2, "shufflenet needs p >= 2, k >= 2");
    let rows = p.pow(k as u32);
    let n = k * rows;
    let mut b = TopoBuilder::new(n);
    let idx = |c: usize, r: usize| (c % k) * rows + (r % rows);
    for c in 0..k {
        for r in 0..rows {
            for j in 0..p {
                let from = idx(c, r);
                let to = idx(c + 1, (p * r + j) % rows);
                // Each directed shuffle edge becomes one bidirectional link.
                b.link(from, to, link_delay);
            }
        }
    }
    for s in 0..n {
        b.host(s);
    }
    b.build()
}

/// The paper's 24-node bidirectional shufflenet: (p, k) = (2, 3).
pub fn shufflenet24(link_delay: SimTime) -> Topology {
    shufflenet(2, 3, link_delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::UpDown;

    #[test]
    fn shufflenet24_shape() {
        let t = shufflenet24(1);
        assert_eq!(t.num_switches(), 24);
        assert_eq!(t.num_hosts(), 24);
        // k * p^k * p bidirectional links.
        assert_eq!(t.links.len(), 48);
        assert!(t.is_connected());
    }

    #[test]
    fn degree_is_2p() {
        let t = shufflenet24(1);
        for s in 0..24 {
            assert_eq!(t.neighbors(s).len(), 4, "switch {s}");
        }
    }

    #[test]
    fn shuffle_pattern() {
        let t = shufflenet24(1);
        // Node (0, 3) = switch 3 must link to (1, 6) = 14 and (1, 7) = 15.
        let n: Vec<usize> = t.neighbors(3).iter().map(|&(v, _, _, _)| v).collect();
        assert!(n.contains(&14));
        assert!(n.contains(&15));
    }

    #[test]
    fn wraps_last_column_to_first() {
        let t = shufflenet24(1);
        // Node (2, 0) = switch 16 links forward to (0, 0) = 0 and (0, 1) = 1.
        let n: Vec<usize> = t.neighbors(16).iter().map(|&(v, _, _, _)| v).collect();
        assert!(n.contains(&0));
        assert!(n.contains(&1));
    }

    #[test]
    fn updown_routes_whole_shufflenet() {
        let t = shufflenet24(1);
        let ud = UpDown::compute(&t, 0);
        for s in 0..24 {
            for d in 0..24 {
                let p = ud.route_switches(&t, s, d, false).expect("reachable");
                assert!(ud.is_legal(&p));
            }
        }
    }

    #[test]
    fn long_links_carry_delay() {
        // The paper's Figure 11 uses 1000 byte-time propagation delays.
        let t = shufflenet24(1000);
        assert!(t.links.iter().all(|l| l.delay == 1000));
    }
}
