//! Fabric descriptions: switches, ports, links, and attached hosts.

use serde::{Deserialize, Serialize};
use wormcast_sim::engine::HostId;
use wormcast_sim::link::PortId;
use wormcast_sim::network::{FabricSpec, HostAttach, LinkSpec};
use wormcast_sim::time::SimTime;

/// A bidirectional switch-to-switch link with allocated port numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwLink {
    pub a: usize,
    pub a_port: u8,
    pub b: usize,
    pub b_port: u8,
    pub delay: SimTime,
    /// Lanes per direction; 0 defers to `NetworkConfig::lanes`.
    pub lanes: u8,
}

/// A host attachment with its allocated switch port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostPort {
    pub switch: usize,
    pub port: u8,
}

/// A complete fabric topology: switches with consecutively allocated ports,
/// inter-switch links, and host attachments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    pub ports_per_switch: Vec<u8>,
    pub links: Vec<SwLink>,
    pub hosts: Vec<HostPort>,
    pub host_link_delay: SimTime,
}

impl Topology {
    pub fn num_switches(&self) -> usize {
        self.ports_per_switch.len()
    }

    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Switch-level neighbors of `sw`: `(peer, out_port, peer_in_port, link_index)`.
    /// Iteration order is deterministic (link insertion order).
    pub fn neighbors(&self, sw: usize) -> Vec<(usize, u8, u8, usize)> {
        let mut out = Vec::new();
        for (i, l) in self.links.iter().enumerate() {
            if l.a == sw {
                out.push((l.b, l.a_port, l.b_port, i));
            } else if l.b == sw {
                out.push((l.a, l.b_port, l.a_port, i));
            }
        }
        out
    }

    /// The hosts attached to switch `sw`, in host-ID order.
    pub fn hosts_at(&self, sw: usize) -> Vec<HostId> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.switch == sw)
            .map(|(i, _)| HostId(i as u32))
            .collect()
    }

    /// Convert to the simulator's fabric specification.
    pub fn to_fabric_spec(&self) -> FabricSpec {
        FabricSpec {
            switch_ports: self.ports_per_switch.clone(),
            hosts: self
                .hosts
                .iter()
                .map(|h| HostAttach {
                    switch: h.switch as u32,
                    port: h.port,
                })
                .collect(),
            links: self
                .links
                .iter()
                .map(|l| LinkSpec {
                    a: (l.a as u32, PortId(l.a_port)),
                    b: (l.b as u32, PortId(l.b_port)),
                    delay: l.delay,
                    lanes: l.lanes,
                })
                .collect(),
            host_link_delay: self.host_link_delay,
        }
    }

    /// True if the switch graph is connected (ignoring hosts).
    pub fn is_connected(&self) -> bool {
        let n = self.num_switches();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, _, _, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

/// Incremental topology builder that allocates switch ports automatically.
#[derive(Clone, Debug)]
pub struct TopoBuilder {
    next_port: Vec<u8>,
    links: Vec<SwLink>,
    hosts: Vec<HostPort>,
    host_link_delay: SimTime,
}

impl TopoBuilder {
    /// Start a topology with `num_switches` switches. Host links default to
    /// delay 1 (hosts are adjacent to their switch).
    pub fn new(num_switches: usize) -> Self {
        TopoBuilder {
            next_port: vec![0; num_switches],
            links: Vec::new(),
            hosts: Vec::new(),
            host_link_delay: 1,
        }
    }

    /// Set the host↔switch link delay.
    pub fn host_link_delay(&mut self, delay: SimTime) -> &mut Self {
        self.host_link_delay = delay;
        self
    }

    fn alloc_port(&mut self, sw: usize) -> u8 {
        let p = self.next_port[sw];
        assert!(p < u8::MAX, "switch {sw} ran out of ports");
        self.next_port[sw] += 1;
        p
    }

    /// Add a bidirectional link between two switches; ports are allocated
    /// in call order. Returns the link index. The link inherits the
    /// network-wide lane count; use [`TopoBuilder::link_with_lanes`] to pin
    /// one.
    pub fn link(&mut self, a: usize, b: usize, delay: SimTime) -> usize {
        self.link_with_lanes(a, b, delay, 0)
    }

    /// Add a bidirectional link with an explicit per-link lane count
    /// (0 defers to `NetworkConfig::lanes`).
    pub fn link_with_lanes(&mut self, a: usize, b: usize, delay: SimTime, lanes: u8) -> usize {
        assert_ne!(a, b, "self-links are not allowed");
        let a_port = self.alloc_port(a);
        let b_port = self.alloc_port(b);
        self.links.push(SwLink {
            a,
            a_port,
            b,
            b_port,
            delay,
            lanes,
        });
        self.links.len() - 1
    }

    /// Attach a host to `sw`; returns its `HostId` (IDs are assigned in
    /// attachment order — the host *ordering by ID* that the paper's
    /// deadlock-avoidance rules depend on is therefore under the caller's
    /// control).
    pub fn host(&mut self, sw: usize) -> HostId {
        let port = self.alloc_port(sw);
        self.hosts.push(HostPort { switch: sw, port });
        HostId(self.hosts.len() as u32 - 1)
    }

    pub fn build(self) -> Topology {
        Topology {
            ports_per_switch: self.next_port,
            links: self.links,
            hosts: self.hosts,
            host_link_delay: self.host_link_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_ports_in_order() {
        let mut b = TopoBuilder::new(2);
        b.link(0, 1, 1);
        let h0 = b.host(0);
        let h1 = b.host(1);
        let t = b.build();
        assert_eq!(h0, HostId(0));
        assert_eq!(h1, HostId(1));
        assert_eq!(t.ports_per_switch, vec![2, 2]);
        assert_eq!(t.links[0].a_port, 0);
        assert_eq!(t.links[0].b_port, 0);
        assert_eq!(t.hosts[0], HostPort { switch: 0, port: 1 });
        assert_eq!(t.hosts[1], HostPort { switch: 1, port: 1 });
    }

    #[test]
    fn neighbors_sees_both_directions() {
        let mut b = TopoBuilder::new(3);
        b.link(0, 1, 1);
        b.link(2, 0, 1);
        let t = b.build();
        let n0: Vec<usize> = t.neighbors(0).iter().map(|&(v, _, _, _)| v).collect();
        assert_eq!(n0, vec![1, 2]);
        let n1: Vec<usize> = t.neighbors(1).iter().map(|&(v, _, _, _)| v).collect();
        assert_eq!(n1, vec![0]);
    }

    #[test]
    fn connectivity() {
        let mut b = TopoBuilder::new(3);
        b.link(0, 1, 1);
        let t = b.build();
        assert!(!t.is_connected());
        let mut b = TopoBuilder::new(3);
        b.link(0, 1, 1);
        b.link(1, 2, 1);
        assert!(b.build().is_connected());
    }

    #[test]
    fn fabric_spec_roundtrip() {
        let mut b = TopoBuilder::new(2);
        b.host_link_delay(2);
        b.link(0, 1, 7);
        b.host(0);
        b.host(1);
        let spec = b.build().to_fabric_spec();
        assert_eq!(spec.switch_ports, vec![2, 2]);
        assert_eq!(spec.hosts.len(), 2);
        assert_eq!(spec.links.len(), 1);
        assert_eq!(spec.links[0].delay, 7);
        assert_eq!(spec.host_link_delay, 2);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut b = TopoBuilder::new(1);
        b.link(0, 0, 1);
    }
}
