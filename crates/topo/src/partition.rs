//! Cut-based fabric partitioning for sharded parallel simulation.
//!
//! A [`ShardPlan`] assigns every switch to one shard; hosts inherit the
//! shard of their attach switch. The simulator runs one engine per shard
//! with conservative lookahead equal to the minimum delay over the *cut*
//! (the links whose endpoints live in different shards), so a good plan
//! minimizes cut size and never cuts a zero-delay link.
//!
//! Three families of plans are provided:
//!
//! * [`ShardPlan::torus_grid`] — block decomposition of a k×k torus into
//!   a near-square grid of quadrant-style tiles (the natural minimum-cut
//!   partition for the paper's 8×8 fabric);
//! * [`ShardPlan::bfs_contiguous`] — balanced contiguous chunks of a BFS
//!   order from a root, usable on any connected topology (trees,
//!   shufflenets, irregular fabrics) — each shard is a connected "subtree"
//!   region of the BFS spanning tree;
//! * [`ShardPlan::switch_hash`] — round-robin by switch index; maximal
//!   cut, useful only as an adversarial stress plan for determinism tests.

use crate::graph::Topology;
use wormcast_sim::time::SimTime;

/// A mapping of switches (and, derived, hosts) onto `num_shards` shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    num_shards: u32,
    switch_shard: Vec<u32>,
}

impl ShardPlan {
    /// Build a plan from an explicit per-switch assignment. Errors when the
    /// assignment references an out-of-range shard or leaves a shard empty.
    pub fn from_assignment(num_shards: u32, switch_shard: Vec<u32>) -> Result<Self, String> {
        if num_shards == 0 {
            return Err("shard plan needs at least one shard".into());
        }
        let mut used = vec![false; num_shards as usize];
        for (sw, &s) in switch_shard.iter().enumerate() {
            if s >= num_shards {
                return Err(format!(
                    "switch {sw} assigned to shard {s}, but plan has {num_shards} shards"
                ));
            }
            used[s as usize] = true;
        }
        if let Some(empty) = used.iter().position(|u| !u) {
            return Err(format!("shard {empty} owns no switches"));
        }
        Ok(ShardPlan {
            num_shards,
            switch_shard,
        })
    }

    /// Block decomposition of a `k`×`k` torus (switches in row-major order,
    /// as built by [`crate::torus::torus`]) into a `gx`×`gy` grid of tiles
    /// with `gx*gy = shards`, `gx` and `gy` chosen as close to square as
    /// possible. `shards = 4` on an 8×8 torus yields the four quadrants.
    pub fn torus_grid(k: usize, shards: u32) -> Result<Self, String> {
        if shards == 0 {
            return Err("shard plan needs at least one shard".into());
        }
        if (shards as usize) > k * k {
            return Err(format!("{shards} shards > {} switches", k * k));
        }
        // Most-square factorization gx*gy = shards with gx <= gy.
        let mut gx = (shards as f64).sqrt() as u32;
        while gx > 1 && !shards.is_multiple_of(gx) {
            gx -= 1;
        }
        let gy = shards / gx;
        if gx as usize > k || gy as usize > k {
            return Err(format!(
                "cannot tile a {k}x{k} torus into a {gx}x{gy} grid"
            ));
        }
        let mut switch_shard = Vec::with_capacity(k * k);
        for y in 0..k {
            for x in 0..k {
                let tx = (x * gx as usize) / k;
                let ty = (y * gy as usize) / k;
                switch_shard.push((ty * gx as usize + tx) as u32);
            }
        }
        Self::from_assignment(shards, switch_shard)
    }

    /// Balanced contiguous partition of any connected topology: BFS from
    /// `root`, then split the visit order into `shards` near-equal chunks.
    /// Each shard is a connected region of the BFS spanning tree, so cuts
    /// stay near the chunk boundaries (a "subtree" partition for trees).
    pub fn bfs_contiguous(topo: &Topology, root: usize, shards: u32) -> Result<Self, String> {
        let n = topo.num_switches();
        if shards == 0 {
            return Err("shard plan needs at least one shard".into());
        }
        if shards as usize > n {
            return Err(format!("{shards} shards > {n} switches"));
        }
        if root >= n {
            return Err(format!("BFS root {root} out of range ({n} switches)"));
        }
        if !topo.is_connected() {
            return Err("bfs_contiguous needs a connected switch graph".into());
        }
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (v, _, _, _) in topo.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        let mut switch_shard = vec![0u32; n];
        for (rank, &sw) in order.iter().enumerate() {
            // Chunk i covers ranks [i*n/shards, (i+1)*n/shards).
            switch_shard[sw] = ((rank as u64 * shards as u64) / n as u64) as u32;
        }
        Self::from_assignment(shards, switch_shard)
    }

    /// Round-robin by switch index. Nearly every link lands in the cut —
    /// the worst reasonable plan, kept as an adversarial stressor for
    /// shard-determinism tests.
    pub fn switch_hash(num_switches: usize, shards: u32) -> Result<Self, String> {
        if shards == 0 {
            return Err("shard plan needs at least one shard".into());
        }
        if shards as usize > num_switches {
            return Err(format!("{shards} shards > {num_switches} switches"));
        }
        let switch_shard = (0..num_switches).map(|s| s as u32 % shards).collect();
        Self::from_assignment(shards, switch_shard)
    }

    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    pub fn switch_shard(&self) -> &[u32] {
        &self.switch_shard
    }

    pub fn shard_of(&self, sw: usize) -> u32 {
        self.switch_shard[sw]
    }

    /// Per-host shard assignment: each host lives with its attach switch.
    pub fn host_shard(&self, topo: &Topology) -> Vec<u32> {
        topo.hosts
            .iter()
            .map(|h| self.switch_shard[h.switch])
            .collect()
    }

    /// Indices (into `topo.links`) of links whose endpoints are in
    /// different shards — the communication cut.
    pub fn cut_links(&self, topo: &Topology) -> Vec<usize> {
        topo.links
            .iter()
            .enumerate()
            .filter(|(_, l)| self.switch_shard[l.a] != self.switch_shard[l.b])
            .map(|(i, _)| i)
            .collect()
    }

    /// The conservative lookahead this plan supports: the minimum delay
    /// over all cut links. `None` when no link is cut (single shard).
    pub fn cut_lookahead(&self, topo: &Topology) -> Option<SimTime> {
        self.cut_links(topo)
            .into_iter()
            .map(|i| topo.links[i].delay)
            .min()
    }

    /// Check the plan against a topology: length matches, and no cut link
    /// has zero delay (zero-delay cuts give zero lookahead — the parallel
    /// engine cannot make conservative progress across them).
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if self.switch_shard.len() != topo.num_switches() {
            return Err(format!(
                "plan covers {} switches, topology has {}",
                self.switch_shard.len(),
                topo.num_switches()
            ));
        }
        for i in self.cut_links(topo) {
            if topo.links[i].delay == 0 {
                let l = &topo.links[i];
                return Err(format!(
                    "link {i} ({} -> {}) crosses shards with zero delay",
                    l.a, l.b
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::{irregular, IrregularSpec};
    use crate::torus::torus;

    #[test]
    fn torus_quadrants() {
        let t = torus(8, 1);
        let p = ShardPlan::torus_grid(8, 4).unwrap();
        p.validate(&t).unwrap();
        // Four quadrants of 16 switches each.
        for s in 0..4 {
            assert_eq!(
                p.switch_shard().iter().filter(|&&x| x == s).count(),
                16,
                "shard {s}"
            );
        }
        // Corner checks: (0,0) and (7,7) in different shards.
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(63), 3);
        // Cut = 2 rows + 2 columns of torus links (wraparound makes the
        // grid boundaries cross twice per axis): 4*8 = 32 links.
        assert_eq!(p.cut_links(&t).len(), 32);
        assert_eq!(p.cut_lookahead(&t), Some(1));
    }

    #[test]
    fn torus_grid_two_shards_halves() {
        let t = torus(4, 2);
        let p = ShardPlan::torus_grid(4, 2).unwrap();
        p.validate(&t).unwrap();
        for s in 0..2 {
            assert_eq!(p.switch_shard().iter().filter(|&&x| x == s).count(), 8);
        }
        assert_eq!(p.cut_lookahead(&t), Some(2));
    }

    #[test]
    fn bfs_contiguous_balanced_on_irregular() {
        let t = irregular(
            IrregularSpec {
                num_switches: 17,
                extra_links: 5,
                hosts_per_switch: 1,
                link_delay: 1,
            },
            42,
        );
        let p = ShardPlan::bfs_contiguous(&t, 0, 3).unwrap();
        p.validate(&t).unwrap();
        let mut counts = [0usize; 3];
        for &s in p.switch_shard() {
            counts[s as usize] += 1;
        }
        // Near-equal split of 17 switches into 3 chunks.
        assert!(counts.iter().all(|&c| (5..=6).contains(&c)), "{counts:?}");
    }

    #[test]
    fn switch_hash_is_adversarial() {
        let t = torus(4, 1);
        let p = ShardPlan::switch_hash(16, 4).unwrap();
        p.validate(&t).unwrap();
        // Round-robin on a row-major 4x4 torus cuts every +x link (the
        // +y links connect switches 4 apart — same residue mod 4).
        assert_eq!(p.cut_links(&t).len(), 16);
    }

    #[test]
    fn hosts_follow_attach_switch() {
        let t = torus(4, 1);
        let p = ShardPlan::torus_grid(4, 4).unwrap();
        let hs = p.host_shard(&t);
        for (h, attach) in t.hosts.iter().enumerate() {
            assert_eq!(hs[h], p.shard_of(attach.switch));
        }
    }

    #[test]
    fn rejects_empty_shard_and_zero_delay_cut() {
        assert!(ShardPlan::from_assignment(2, vec![0, 0]).is_err());
        let mut b = crate::graph::TopoBuilder::new(2);
        b.link(0, 1, 0);
        let t = b.build();
        let p = ShardPlan::from_assignment(2, vec![0, 1]).unwrap();
        assert!(p.validate(&t).is_err());
    }
}
