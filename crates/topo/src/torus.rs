//! k×k torus topologies (the paper's Figure 10 uses an 8×8 torus with one
//! host per switch).

use crate::graph::{TopoBuilder, Topology};
use wormcast_sim::time::SimTime;

/// Build a `k`×`k` torus of switches, one host per switch, hosts numbered
/// in row-major switch order (host IDs therefore increase with switch
/// index — the ID ordering the deadlock rules use).
///
/// `k` must be at least 3 so wrap-around links do not duplicate.
pub fn torus(k: usize, link_delay: SimTime) -> Topology {
    assert!(k >= 3, "torus needs k >= 3 (k=2 duplicates wrap links)");
    let n = k * k;
    let mut b = TopoBuilder::new(n);
    let idx = |x: usize, y: usize| (y % k) * k + (x % k);
    // +x and +y links; wrap-around included.
    for y in 0..k {
        for x in 0..k {
            b.link(idx(x, y), idx(x + 1, y), link_delay);
        }
    }
    for y in 0..k {
        for x in 0..k {
            b.link(idx(x, y), idx(x, y + 1), link_delay);
        }
    }
    for s in 0..n {
        b.host(s);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::UpDown;

    #[test]
    fn torus_8x8_shape() {
        let t = torus(8, 1);
        assert_eq!(t.num_switches(), 64);
        assert_eq!(t.num_hosts(), 64);
        assert_eq!(t.links.len(), 128); // 2 links per switch
        // Every switch: 4 network ports + 1 host port.
        assert!(t.ports_per_switch.iter().all(|&p| p == 5));
        assert!(t.is_connected());
    }

    #[test]
    fn every_switch_has_four_neighbors() {
        let t = torus(4, 1);
        for s in 0..16 {
            assert_eq!(t.neighbors(s).len(), 4, "switch {s}");
        }
    }

    #[test]
    fn wraparound_links_exist() {
        let t = torus(3, 1);
        // Switch 0 (0,0) must neighbor 2 (2,0) and 6 (0,2) via wraparound.
        let n0: Vec<usize> = t.neighbors(0).iter().map(|&(v, _, _, _)| v).collect();
        assert!(n0.contains(&2));
        assert!(n0.contains(&6));
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn rejects_k2() {
        let _ = torus(2, 1);
    }

    #[test]
    fn updown_routes_whole_torus() {
        let t = torus(4, 1);
        let ud = UpDown::compute(&t, 0);
        for s in 0..16 {
            for d in 0..16 {
                let p = ud.route_switches(&t, s, d, false).expect("reachable");
                assert!(ud.is_legal(&p));
            }
        }
        // Up/down paths on a torus are generally longer than shortest paths
        // (the paper's stated drawback): mean hops must be at least the
        // true mean shortest distance of a 4x4 torus (= 2.133..).
        assert!(ud.mean_hops(&t, false) >= 2.0);
    }
}
