//! Property-based invariants of the topology and routing substrate.

use proptest::prelude::*;
use wormcast_sim::engine::HostId;
use wormcast_topo::hamiltonian::{hamiltonian_circuit, successor, CircuitStrategy};
use wormcast_topo::hostgraph::HostGraph;
use wormcast_topo::irregular::{irregular, IrregularSpec};
use wormcast_topo::tree::{MulticastTree, TreeShape};
use wormcast_topo::UpDown;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Up/down routing on arbitrary connected topologies: every ordered
    /// switch pair gets a legal (up*-then-down*) path that really reaches,
    /// with and without the spanning-tree restriction.
    #[test]
    fn updown_routes_random_topologies(
        seed in 0u64..1000,
        n in 2usize..12,
        extra in 0usize..8,
        root in 0usize..12,
    ) {
        let topo = irregular(IrregularSpec {
            num_switches: n,
            extra_links: extra,
            hosts_per_switch: 1,
            link_delay: 1,
        }, seed);
        let root = root % n;
        let ud = UpDown::compute(&topo, root);
        for s in 0..n {
            for d in 0..n {
                for restrict in [false, true] {
                    let path = ud.route_switches(&topo, s, d, restrict)
                        .expect("reachable");
                    prop_assert_eq!(*path.first().unwrap(), s);
                    prop_assert_eq!(*path.last().unwrap(), d);
                    prop_assert!(ud.is_legal(&path), "illegal {path:?}");
                    if restrict {
                        // Tree-only paths may never exceed 2 * depth.
                        prop_assert!(path.len() <= 2 * n);
                    }
                }
            }
        }
        // Restriction never shortens paths.
        prop_assert!(ud.mean_hops(&topo, true) >= ud.mean_hops(&topo, false) - 1e-9);
    }

    /// The route table contains a route for every ordered host pair and
    /// each route ends at the destination's host port.
    #[test]
    fn route_table_is_complete(seed in 0u64..500, n in 2usize..8, hosts in 1usize..3) {
        let topo = irregular(IrregularSpec {
            num_switches: n,
            extra_links: 3,
            hosts_per_switch: hosts,
            link_delay: 1,
        }, seed);
        let ud = UpDown::compute(&topo, 0);
        let rt = ud.route_table(&topo, false);
        let nh = topo.num_hosts();
        for s in 0..nh as u32 {
            for d in 0..nh as u32 {
                if s == d { continue; }
                let r = rt.get(HostId(s), HostId(d));
                prop_assert!(!r.is_empty());
                prop_assert_eq!(*r.last().unwrap(), topo.hosts[d as usize].port);
            }
        }
    }

    /// Hamiltonian circuits visit each member exactly once; the successor
    /// function is a bijection on the members.
    #[test]
    fn hamiltonian_invariants(
        mut ids in proptest::collection::btree_set(0u32..64, 1..12),
        strategy_hop in any::<bool>(),
    ) {
        let members: Vec<HostId> = ids.iter().copied().map(HostId).collect();
        ids.clear();
        // Host graph over a line topology big enough for all ids.
        let mut b = wormcast_topo::TopoBuilder::new(64);
        for s in 0..63 { b.link(s, s + 1, 1); }
        for s in 0..64 { b.host(s); }
        let topo = b.build();
        let ud = UpDown::compute(&topo, 0);
        let g = HostGraph::from_routes(&ud.route_table(&topo, false));
        let strat = if strategy_hop { CircuitStrategy::HopCost } else { CircuitStrategy::AscendingIds };
        let order = hamiltonian_circuit(&members, &g, strat);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &members, "visits each member once");
        // Successor walks the whole circuit.
        let mut seen = std::collections::HashSet::new();
        let mut cur = order[0];
        for _ in 0..order.len() {
            prop_assert!(seen.insert(cur), "successor cycle shorter than circuit");
            cur = successor(&order, cur).expect("member");
        }
        prop_assert_eq!(cur, order[0]);
    }

    /// All tree shapes respect the child-ID > parent-ID rule, cover the
    /// members, and have a consistent parent/children relation.
    #[test]
    fn tree_invariants(
        ids in proptest::collection::btree_set(0u32..64, 1..16),
        shape_ix in 0usize..4,
    ) {
        let members: Vec<HostId> = ids.iter().copied().map(HostId).collect();
        let mut b = wormcast_topo::TopoBuilder::new(64);
        for s in 0..63 { b.link(s, s + 1, 1); }
        for s in 0..64 { b.host(s); }
        let topo = b.build();
        let ud = UpDown::compute(&topo, 0);
        let g = HostGraph::from_routes(&ud.route_table(&topo, false));
        let shape = [
            TreeShape::BinaryHeap,
            TreeShape::DAryHeap(3),
            TreeShape::GreedyHop,
            TreeShape::Star,
        ][shape_ix];
        let t = MulticastTree::build(&members, shape, Some(&g));
        prop_assert!(t.respects_id_order(), "{shape:?}");
        prop_assert_eq!(t.root(), members[0], "root is the lowest ID");
        // Parent/children consistency + full coverage from the root.
        let mut covered = vec![t.root()];
        let mut stack = vec![t.root()];
        while let Some(h) = stack.pop() {
            for &c in t.children(h) {
                prop_assert_eq!(t.parent(c), Some(h));
                covered.push(c);
                stack.push(c);
            }
        }
        covered.sort_unstable();
        prop_assert_eq!(covered, members);
    }
}
