//! Figure 10 reproduction: average multicast latency vs offered load on the
//! 8×8 torus, for Hamiltonian store-and-forward, Hamiltonian cut-through,
//! and the rooted tree.
//!
//! Run with `cargo bench --bench fig10_torus_latency`. Set
//! `WORMCAST_QUICK=1` for a reduced sweep with the same shape.

use wormcast_bench::fig10::{run_figure, Fig10Config};
use wormcast_stats::series::format_table;

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let cfg = if quick {
        Fig10Config::quick()
    } else {
        Fig10Config::full()
    };
    eprintln!("fig10: torus 8x8, 10 groups x 10 members, p(mcast)=0.10, {cfg:?}");
    let results = run_figure(&cfg);
    let series: Vec<_> = results.iter().map(|(s, _)| s.clone()).collect();
    println!(
        "{}",
        format_table(
            "Figure 10: average multicast latency vs offered load (8x8 torus)",
            "load",
            "latency, byte times",
            &series,
        )
    );
    // Delivery ratios expose the saturation points.
    println!("# delivery ratio (expected deliveries completed by the drain deadline)");
    print!("{:>12}", "load");
    for (s, _) in &results {
        print!(" {:>28}", s.label);
    }
    println!();
    for (i, &load) in cfg.loads.iter().enumerate() {
        print!("{load:>12.4}");
        for (_, rs) in &results {
            print!(" {:>28.3}", rs[i].delivery_ratio);
        }
        println!();
    }
}
