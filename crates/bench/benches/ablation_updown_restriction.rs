//! Ablation A2: the bandwidth cost of restricting routing to the up/down
//! spanning tree (the Section 3 switch-level multicast scheme 1 requires
//! ALL worms — unicast too — to stay on tree links).
//!
//! Expected outcome: tree-restricted paths are longer on average (the
//! crosslinks go unused), latency grows, and the network saturates at a
//! much lower offered load — the paper's stated reason the restriction
//! "may be acceptable [only] if the topology is almost a tree to start
//! with ... or if the traffic is predominantly multicast".
//!
//! Run with `cargo bench --bench ablation_updown_restriction`.

use wormcast_bench::runner::{run_parallel, SimSetup};
use wormcast_bench::Scheme;
use wormcast_core::HcConfig;
use wormcast_topo::torus::torus;
use wormcast_topo::UpDown;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let (measure, drain) = if quick {
        (150_000, 100_000)
    } else {
        (400_000, 200_000)
    };
    let topo = torus(8, 1);
    let ud = UpDown::compute(&topo, 0);
    println!("# Ablation A2: up/down tree-restricted vs full up/down routing");
    println!(
        "# mean switch hops: unrestricted {:.2}, tree-restricted {:.2}",
        ud.mean_hops(&topo, false),
        ud.mean_hops(&topo, true)
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "load", "routing", "uni-latency", "ratio"
    );
    for load in [0.01, 0.02, 0.04] {
        let mk = |restrict: bool| {
            let mut grng = host_stream(0xAB2, 0x6071);
            let groups = GroupSet::random(64, 10, 10, &mut grng);
            let workload = PaperWorkload {
                offered_load: load,
                multicast_prob: 0.0, // unicast bandwidth cost
                lengths: LengthDist::Geometric { mean: 400 },
                stop_at: None,
            };
            SimSetup::builder(
                torus(8, 1),
                groups,
                Scheme::Hc(HcConfig::store_and_forward()),
                workload,
            )
            .restrict_to_tree(restrict)
            .seed(0xAB2)
            .windows(60_000, measure, drain)
            .build()
            .expect("valid setup")
        };
        let results = run_parallel(vec![mk(false), mk(true)]);
        for (name, r) in ["unrestricted", "tree-only"].iter().zip(&results) {
            println!(
                "{load:>8.3} {name:>14} {:>14.0} {:>10.3}",
                r.unicast.per_delivery.mean,
                r.unicast.deliveries as f64 / r.unicast.messages.max(1) as f64
            );
        }
    }
}
