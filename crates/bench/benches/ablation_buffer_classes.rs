//! Ablation A1: the two-buffer-class rule (Figures 6–7) vs a single merged
//! pool of the same total capacity, under deliberately tight buffers.
//!
//! With the rule ON, a worm that has passed the circuit's ID reversal
//! draws from the class-2 pool, which by construction always has room for
//! one maximum-size worm — buffer waits cannot cycle, every NACKed forward
//! eventually succeeds, and delivery completes. With the rule OFF, the
//! Figure 6 cycle is live: opposing multicasts each hold the merged pool
//! at one adapter while waiting for the other's, and forwards starve into
//! NACK/retry storms (the retries are visible as extra injected worms; at
//! the retry cap the engine gives up and the delivery ratio drops).
//!
//! Run with `cargo bench --bench ablation_buffer_classes`.

use std::sync::Arc;
use wormcast_bench::runner::membership_of;
use wormcast_core::buffers::PoolConfig;
use wormcast_core::reliable::{AckNackConfig, Reliability};
use wormcast_core::{HcConfig, HcProtocol};
use wormcast_sim::engine::HostId;
use wormcast_sim::network::NetworkConfig;
use wormcast_sim::Network;
use wormcast_topo::{TopoBuilder, UpDown};
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::{install_paper_sources, PaperWorkload};
use wormcast_traffic::{GroupSet, LengthDist};

const WORM_BYTES: u32 = 1000;

fn run(single_class: bool, load: f64, seed: u64) -> (f64, u64, u64, f64) {
    // A ring of 8 switches, one host each; one group of all 8 hosts, so
    // every multicast wraps the ID space (exercising the class reversal).
    let mut b = TopoBuilder::new(8);
    for s in 0..8 {
        b.link(s, (s + 1) % 8, 1);
    }
    for s in 0..8 {
        b.host(s);
    }
    let topo = b.build();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let cfg = NetworkConfig::builder().seed(seed).build().expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
    let mut grng = host_stream(seed, 1);
    let groups = GroupSet::random(8, 1, 8, &mut grng);
    let membership = membership_of(&groups);
    let reliability = Reliability::AckNack(AckNackConfig {
        pool: PoolConfig::tight(WORM_BYTES + 64),
        single_class,
        retry_timeout: 15_000,
        retry_jitter: 10_000,
        max_retries: 40,
    });
    let cfg = HcConfig {
        reliability,
        ..HcConfig::store_and_forward()
    };
    for h in 0..8u32 {
        let p = HcProtocol::new(HostId(h), cfg, Arc::clone(&membership));
        net.set_protocol(HostId(h), Box::new(p));
    }
    let warmup = 50_000;
    let generate_until = 450_000;
    let drain_until = 1_200_000;
    install_paper_sources(
        &mut net,
        PaperWorkload {
            offered_load: load,
            multicast_prob: 1.0, // all multicast: maximum buffer pressure
            lengths: LengthDist::Fixed(WORM_BYTES),
            stop_at: Some(generate_until),
        },
        &Arc::new(groups),
        seed,
    );
    net.run_until(drain_until);
    net.audit().expect("conservation");
    let lat = wormcast_stats::latency::latencies(
        &net.msgs,
        wormcast_stats::latency::Kind::Multicast,
        warmup,
        generate_until,
        None,
    );
    let expected: usize = net
        .msgs
        .created
        .iter()
        .filter(|r| r.created >= warmup && r.created < generate_until)
        .map(|_| 7)
        .sum();
    let ratio = lat.deliveries as f64 / expected.max(1) as f64;
    (
        lat.per_delivery.mean,
        net.stats.worms_injected,
        net.stats.worms_refused,
        ratio,
    )
}

fn main() {
    println!("# Ablation A1: two-buffer-class rule vs single merged pool");
    println!("# ring of 8 hosts, one group of all 8, fixed 1000-byte worms,");
    println!("# pools sized to ONE worm per class (Figure 6 pressure)");
    println!(
        "{:>8} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "load", "classes", "latency", "injected", "refused", "ratio"
    );
    for load in [0.05, 0.10, 0.15] {
        for (name, single) in [("two-class", false), ("single", true)] {
            let (lat, injected, refused, ratio) = run(single, load, 0xAB1);
            println!(
                "{load:>8.2} {name:>14} {lat:>12.0} {injected:>10} {refused:>10} {ratio:>10.3}"
            );
        }
    }
}
