//! The paper's stated future work, implemented: "evaluating (via
//! simulation) the actual contention for buffers (and the probability of
//! [drops]) in various load and traffic pattern conditions. When the
//! probability of [dropping] is not very significant, and the application
//! tolerates it, it may be possible to use less reliable multicast
//! schemes ... much simpler to implement."
//!
//! This bench runs the Hamiltonian circuit in three reliability modes —
//! infinite buffers (the Figures 10/11 assumption), finite buffers with
//! ACK/NACK retransmission, and finite buffers with silent drops — across
//! loads and buffer sizes, reporting the message-loss probability and the
//! latency each mode pays. The interesting row is silent-drop at light
//! load: when buffers cover a few worms, loss is near zero and the simple
//! scheme is indeed viable, exactly as the conclusion conjectures.
//!
//! Run with `cargo bench --bench ablation_buffer_contention`.

use std::sync::Arc;
use wormcast_bench::runner::membership_of;
use wormcast_core::buffers::PoolConfig;
use wormcast_core::reliable::{AckNackConfig, Reliability};
use wormcast_core::{HcConfig, HcProtocol};
use wormcast_sim::engine::HostId;
use wormcast_sim::network::NetworkConfig;
use wormcast_sim::Network;
use wormcast_stats::latency::{latencies, Kind};
use wormcast_topo::torus::torus;
use wormcast_topo::UpDown;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::{install_paper_sources, PaperWorkload};
use wormcast_traffic::{GroupSet, LengthDist};

fn run(mode: Reliability, load: f64, measure: u64) -> (f64, f64, u64, u64) {
    let topo = torus(4, 1);
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let mut grng = host_stream(0xAB7, 0x6071);
    let groups = GroupSet::random(16, 4, 6, &mut grng);
    let membership = membership_of(&groups);
    let net_cfg = NetworkConfig::builder().seed(0xAB7).build().expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, net_cfg);
    let cfg = HcConfig {
        reliability: mode,
        ..HcConfig::store_and_forward()
    };
    for h in 0..16u32 {
        net.set_protocol(
            HostId(h),
            Box::new(HcProtocol::new(HostId(h), cfg, Arc::clone(&membership))),
        );
    }
    let warmup = 40_000;
    let generate_until = warmup + measure;
    let drain_until = generate_until + 400_000;
    install_paper_sources(
        &mut net,
        PaperWorkload {
            offered_load: load,
            multicast_prob: 0.25,
            lengths: LengthDist::Geometric { mean: 400 },
            stop_at: Some(generate_until),
        },
        &Arc::new(groups),
        0xAB7,
    );
    net.run_until(drain_until);
    net.audit().expect("conservation");
    let mc = latencies(&net.msgs, Kind::Multicast, warmup, generate_until, None);
    // Expected deliveries for loss accounting.
    let mut expected = 0usize;
    for rec in &net.msgs.created {
        if rec.created < warmup || rec.created >= generate_until {
            continue;
        }
        if let wormcast_sim::protocol::Destination::Multicast(g) = rec.dest {
            expected += membership.expected_deliveries(g, rec.origin);
        }
    }
    let loss = 1.0 - mc.deliveries as f64 / expected.max(1) as f64;
    (
        mc.per_delivery.mean,
        loss.max(0.0),
        net.stats.worms_refused,
        net.stats.worms_injected,
    )
}

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let measure = if quick { 150_000 } else { 400_000 };
    println!("# Future-work study: buffer contention and the viability of");
    println!("# unreliable (silent-drop) multicast. 4x4 torus, p(mcast)=0.25.");
    println!(
        "{:>8} {:>10} {:>16} {:>12} {:>10} {:>10} {:>10}",
        "load", "buffers", "mode", "latency", "loss", "refused", "injected"
    );
    for load in [0.02, 0.04, 0.06] {
        for pool_worms in [2u32, 8] {
            let pool = PoolConfig {
                class1: pool_worms * 500,
                class2: pool_worms * 500,
                dma_extension: 0,
            };
            let arms: Vec<(&str, Reliability)> = vec![
                ("infinite", Reliability::None),
                (
                    "acknack-retry",
                    Reliability::AckNack(AckNackConfig {
                        pool,
                        single_class: false,
                        retry_timeout: 15_000,
                        retry_jitter: 10_000,
                        max_retries: 60,
                    }),
                ),
                (
                    "silent-drop",
                    Reliability::FiniteDrop {
                        pool,
                        single_class: false,
                    },
                ),
            ];
            for (name, mode) in arms {
                let (lat, loss, refused, injected) = run(mode, load, measure);
                println!(
                    "{load:>8.2} {:>9}w {name:>16} {lat:>12.0} {:>9.2}% {refused:>10} {injected:>10}",
                    2 * pool_worms,
                    loss * 100.0
                );
            }
        }
    }
}
