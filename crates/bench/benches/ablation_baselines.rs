//! Ablation A3: the paper's schemes against the two baselines it argues
//! against — repeated unicast from the source (stock Myrinet) and the
//! centralized credit manager of [VLB96].
//!
//! Expected outcome: at light load everything delivers, but (a) repeated
//! unicast ties up the source for the whole multicast, so its latency
//! grows with group size and it loads the network with one full-length
//! path per member; (b) the credit scheme pays a request/grant round trip
//! before the first byte moves and stalls when the manager runs out of
//! credits between token passes.
//!
//! Run with `cargo bench --bench ablation_baselines`.

use wormcast_bench::fig10::figure_tree_scheme;
use wormcast_bench::runner::{run_parallel, SimSetup};
use wormcast_bench::Scheme;
use wormcast_core::{HcConfig, UnicastRepeatConfig};
use wormcast_sim::engine::HostId;
use wormcast_topo::torus::torus;
use wormcast_topo::tree::TreeShape;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let (measure, drain) = if quick {
        (150_000, 100_000)
    } else {
        (500_000, 200_000)
    };
    let loads = [0.02, 0.04, 0.06];
    let schemes: Vec<(&str, Scheme)> = vec![
        ("hc-store-fwd", Scheme::Hc(HcConfig::store_and_forward())),
        ("hc-cut-through", Scheme::Hc(HcConfig::cut_through())),
        ("tree", figure_tree_scheme()),
        (
            "repeat-unicast",
            Scheme::Repeat(UnicastRepeatConfig::default()),
        ),
        (
            "bcast-filter",
            Scheme::Repeat(UnicastRepeatConfig {
                broadcast_filter: true,
                num_hosts: 0, // filled by install
            }),
        ),
        (
            "credit",
            Scheme::Credit {
                manager: HostId(0),
                initial_credits: 120_000,
                token_period: 30_000,
                shape: TreeShape::BinaryHeap,
            },
        ),
    ];
    println!(
        "# Ablation A3: multicast latency (byte times) by scheme vs baselines, 8x8 torus"
    );
    println!(
        "{:>8} {:>16} {:>14} {:>14} {:>12} {:>10}",
        "load", "scheme", "mcast-latency", "uni-latency", "ratio", "tx-util"
    );
    for &load in &loads {
        let setups: Vec<SimSetup> = schemes
            .iter()
            .map(|(_, scheme)| {
                let mut grng = host_stream(0xAB3, 0x6071);
                let groups = GroupSet::random(64, 10, 10, &mut grng);
                let workload = PaperWorkload {
                    offered_load: load,
                    multicast_prob: 0.10,
                    lengths: LengthDist::Geometric { mean: 400 },
                    stop_at: None,
                };
                SimSetup::builder(torus(8, 1), groups, *scheme, workload)
                    .seed(0xAB3)
                    .windows(60_000, measure, drain)
                    .build()
                    .expect("valid setup")
            })
            .collect();
        let results = run_parallel(setups);
        for ((name, _), r) in schemes.iter().zip(&results) {
            println!(
                "{load:>8.3} {name:>16} {:>14.0} {:>14.0} {:>12.3} {:>10.4}",
                r.multicast.per_delivery.mean,
                r.unicast.per_delivery.mean,
                r.delivery_ratio,
                r.host_tx_utilization
            );
        }
    }
}
