//! Wall-clock engine throughput at the Figure 10 operating points.
//!
//! Event counts (`results/BENCH_engine.json`) prove the span engine
//! schedules less work; this bench proves the work is *faster*: it times
//! `Network::run_until` (network construction excluded) over the Fig 10
//! load sweep in both [`SimMode`]s and reports **simulated byte-times per
//! wall-clock second**.
//!
//! Two-phase protocol so one file can carry a before/after comparison of an
//! engine change measured on the same machine:
//!
//! * `WALLCLOCK_PHASE=before cargo bench --bench perf_wallclock` snapshots
//!   the current engine into `results/.wallclock_before.json`.
//! * A plain run then re-measures, folds the snapshot in as `before`, and
//!   writes the combined `results/BENCH_wallclock.json` with per-mode
//!   speedups. Without a snapshot, `before` is null.
//!
//! The run at load 0.08 doubles as a drift check: its counters must match
//! the checked-in `results/BENCH_engine.json` rows byte for byte.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use wormcast_bench::fig10::{self, Fig10Config};
use wormcast_bench::runner;
use wormcast_sim::network::SimMode;

/// The sweep: a light, the reference (0.08, shared with BENCH_engine.json)
/// and a saturating Fig 10 load.
const LOADS: &[f64] = &[0.04, 0.08, 0.12];

/// Same windows as `BENCH_engine.json` so the 0.08 counters are comparable.
const CFG: Fig10Config = Fig10Config {
    loads: LOADS,
    warmup: 20_000,
    measure: 100_000,
    drain: 40_000,
    seed: 0xF1610,
};

#[derive(Serialize, Deserialize, Clone)]
struct PointRow {
    load: f64,
    scheme: String,
    mode: String,
    wall_seconds: f64,
    sim_byte_times: u64,
    sim_byte_times_per_sec: f64,
    events_scheduled: u64,
    events_fired: u64,
    bytes_moved: u64,
    worms_delivered: u64,
}

#[derive(Serialize, Deserialize, Clone)]
struct PhaseDump {
    machine: String,
    rows: Vec<PointRow>,
    /// Aggregate simulated byte-times per wall-clock second, per mode.
    per_byte_rate: f64,
    span_batched_rate: f64,
}

#[derive(Serialize)]
struct WallclockDump {
    experiment: String,
    loads: Vec<f64>,
    windows: (u64, u64, u64),
    /// Snapshot of the pre-change engine (same machine), if one was taken.
    before: Option<PhaseDump>,
    after: PhaseDump,
    /// after/before rate ratios (the tentpole claims ≥ 2× span-batched).
    speedup_per_byte: Option<f64>,
    speedup_span_batched: Option<f64>,
}

fn mode_name(mode: SimMode) -> &'static str {
    match mode {
        SimMode::PerByte => "per_byte",
        SimMode::SpanBatched => "span_batched",
    }
}

fn machine_desc() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let uname = std::process::Command::new("uname")
        .arg("-srm")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_default();
    format!("{uname} ({cpus} cpus)")
}

fn measure_phase() -> PhaseDump {
    let sim_horizon = CFG.warmup + CFG.measure + CFG.drain;
    let mut rows = Vec::new();
    let mut wall = [0.0f64; 2];
    let mut sim = [0u64; 2];
    for &load in LOADS {
        for scheme in fig10::schemes() {
            for (mi, mode) in [SimMode::PerByte, SimMode::SpanBatched].into_iter().enumerate() {
                let mut setup = fig10::setup(scheme, load, &CFG);
                setup.mode = mode;
                let mut net = runner::build_network(&setup);
                let t0 = Instant::now();
                let outcome = net.run_until(sim_horizon);
                let secs = t0.elapsed().as_secs_f64();
                net.audit().expect("conservation invariant");
                wall[mi] += secs;
                sim[mi] += sim_horizon;
                let rate = sim_horizon as f64 / secs;
                eprintln!(
                    "wallclock load={load:.2} {scheme:?} {}: {secs:.3}s = {rate:.0} byte-times/s",
                    mode_name(mode)
                );
                rows.push(PointRow {
                    load,
                    scheme: format!("{scheme:?}"),
                    mode: mode_name(mode).into(),
                    wall_seconds: secs,
                    sim_byte_times: sim_horizon,
                    sim_byte_times_per_sec: rate,
                    events_scheduled: outcome.stats.events_scheduled,
                    events_fired: outcome.stats.events_fired,
                    bytes_moved: outcome.stats.bytes_moved,
                    worms_delivered: outcome.stats.worms_delivered,
                });
            }
        }
    }
    PhaseDump {
        machine: machine_desc(),
        rows,
        per_byte_rate: sim[0] as f64 / wall[0],
        span_batched_rate: sim[1] as f64 / wall[1],
    }
}

/// Cross-check the 0.08 rows against the checked-in engine-event baseline:
/// a scheduler change must not alter what gets simulated.
fn check_against_engine_baseline(phase: &PhaseDump, results_dir: &str) {
    let path = format!("{results_dir}/BENCH_engine.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("wallclock: no {path}; skipping drift check");
        return;
    };
    let baseline = serde_json::parse_value(&text).expect("parse BENCH_engine.json");
    let serde_json::Value::Array(rows) = baseline.get("rows").expect("rows field").clone() else {
        panic!("BENCH_engine.json rows is not an array");
    };
    let field_u64 = |v: &serde_json::Value, key: &str| -> u64 {
        match v.get(key) {
            Some(&serde_json::Value::U64(n)) => n,
            other => panic!("BENCH_engine.json {key}: expected u64, got {other:?}"),
        }
    };
    for row in &rows {
        let Some(serde_json::Value::Str(scheme)) = row.get("scheme") else {
            panic!("BENCH_engine.json row without scheme");
        };
        for mode in ["per_byte", "span_batched"] {
            let b = row.get(mode).expect("mode counters");
            let ours = phase
                .rows
                .iter()
                .find(|r| r.load == 0.08 && &r.scheme == scheme && r.mode == mode)
                .unwrap_or_else(|| panic!("no wallclock row for {scheme} {mode}"));
            let expect = (
                field_u64(b, "events_scheduled"),
                field_u64(b, "bytes_moved"),
                field_u64(b, "worms_delivered"),
            );
            let got = (ours.events_scheduled, ours.bytes_moved, ours.worms_delivered);
            assert_eq!(
                got, expect,
                "engine drift vs BENCH_engine.json for {scheme} {mode} \
                 (events_scheduled, bytes_moved, worms_delivered)"
            );
        }
    }
    eprintln!("wallclock: 0.08 counters match BENCH_engine.json");
}

fn main() {
    // Under `cargo bench` the harness receives filter args; ignore them.
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).expect("create results dir");
    let snapshot_path = format!("{results_dir}/.wallclock_before.json");
    let phase = measure_phase();
    check_against_engine_baseline(&phase, results_dir);
    if std::env::var("WALLCLOCK_PHASE").as_deref() == Ok("before") {
        let json = serde_json::to_string_pretty(&phase).expect("serialize snapshot");
        std::fs::write(&snapshot_path, json).expect("write snapshot");
        eprintln!("wallclock: wrote before-snapshot {snapshot_path}");
        return;
    }
    let before: Option<PhaseDump> = std::fs::read_to_string(&snapshot_path)
        .ok()
        .map(|t| serde_json::from_str(&t).expect("parse before-snapshot"));
    let dump = WallclockDump {
        experiment: "fig10 8x8 torus sweep, 10 groups x 10 members, p(mcast)=0.10".into(),
        loads: LOADS.to_vec(),
        windows: (CFG.warmup, CFG.measure, CFG.drain),
        speedup_per_byte: before.as_ref().map(|b| phase.per_byte_rate / b.per_byte_rate),
        speedup_span_batched: before
            .as_ref()
            .map(|b| phase.span_batched_rate / b.span_batched_rate),
        before,
        after: phase,
    };
    if let Some(s) = dump.speedup_span_batched {
        eprintln!("wallclock: span-batched speedup over before-snapshot: {s:.2}x");
    }
    let path = format!("{results_dir}/BENCH_wallclock.json");
    let json = serde_json::to_string_pretty(&dump).expect("serialize dump");
    std::fs::write(&path, json).expect("write BENCH_wallclock.json");
    eprintln!("wallclock: wrote {path}");
}
