//! Ablation A6: switch-level multicast (Section 3) variants against each
//! other and against the host-adapter schemes.
//!
//! * **V1 restricted+IDLE** — every worm (unicast too) confined to the
//!   up/down spanning tree; blocked multicasts idle-fill their branches.
//!   Lowest multicast latency, but unicast pays for the unused crosslinks.
//! * **V2 root-serialized interrupt/resume** — unicasts route freely;
//!   multicasts are serialized through the root and fragment when blocked.
//! * **V3 multicast-IDLE flush** — multicasts on the tree with IDLE fills;
//!   unicasts route freely but are flushed (and retransmitted) when stuck
//!   behind a multicast-IDLE port.
//! * **hc-adapter** — the Section 5 host-adapter Hamiltonian circuit, for
//!   the fabric-vs-adapter comparison the paper's conclusions draw.
//!
//! The paper's claim to check: switch-level multicast gives the lowest
//! multicast latency (no per-hop reassembly in adapters), at the cost of
//! fabric complexity and (V1) reduced unicast bandwidth.
//!
//! Run with `cargo bench --bench ablation_switchcast`.

use std::sync::Arc;
use wormcast_bench::runner::membership_of;
use wormcast_core::switchcast::{SwitchcastProtocol, SwitchcastTables, SwitchcastVariant};
use wormcast_core::{HcConfig, HcProtocol};
use wormcast_sim::engine::HostId;
use wormcast_sim::network::NetworkConfig;
use wormcast_sim::switchcast::SwitchcastMode;
use wormcast_sim::Network;
use wormcast_stats::latency::{latencies, Kind};
use wormcast_topo::torus::torus;
use wormcast_topo::UpDown;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::{install_paper_sources, PaperWorkload};
use wormcast_traffic::{GroupSet, LengthDist};

struct Arm {
    name: &'static str,
    variant: Option<SwitchcastVariant>, // None = host-adapter HC reference
}

fn run(arm: &Arm, load: f64, measure: u64) -> (f64, f64, f64) {
    let topo = torus(4, 1);
    let ud = UpDown::compute(&topo, 0);
    let mut grng = host_stream(0xAB6, 0x6071);
    let groups = GroupSet::random(16, 4, 6, &mut grng);
    let membership = membership_of(&groups);
    // V1 restricts everything to the spanning tree; V2/V3 leave unicast
    // routing free (V3's multicast directives still follow the tree).
    let (mode, restrict_net, restrict_mc) = match arm.variant {
        Some(SwitchcastVariant::RestrictedIdle) => (SwitchcastMode::RestrictedIdle, true, true),
        Some(SwitchcastVariant::RootedInterrupt) => {
            (SwitchcastMode::RootedInterrupt, false, false)
        }
        Some(SwitchcastVariant::IdleFlush) => (SwitchcastMode::IdleFlush, false, true),
        Some(SwitchcastVariant::Broadcast) | None => (SwitchcastMode::Off, false, false),
    };
    let routes = ud.route_table(&topo, restrict_net);
    let cfg = NetworkConfig::builder()
        .seed(0xAB6)
        .switchcast(mode)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);
    match arm.variant {
        Some(variant) => {
            let mc_routes = ud.route_table(&topo, restrict_mc);
            let tables = Arc::new(SwitchcastTables::build(
                &topo,
                &ud,
                &mc_routes,
                &membership,
                restrict_mc,
            ));
            net.set_broadcast_ports(SwitchcastTables::broadcast_ports(&topo, &ud));
            for h in 0..16u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(SwitchcastProtocol::new(
                        HostId(h),
                        variant,
                        Arc::clone(&membership),
                        Arc::clone(&tables),
                    )),
                );
            }
        }
        None => {
            for h in 0..16u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(HcProtocol::new(
                        HostId(h),
                        HcConfig::store_and_forward(),
                        Arc::clone(&membership),
                    )),
                );
            }
        }
    }
    let warmup = 40_000;
    let generate_until = warmup + measure;
    let drain_until = generate_until + 150_000;
    install_paper_sources(
        &mut net,
        PaperWorkload {
            offered_load: load,
            multicast_prob: 0.10,
            lengths: LengthDist::Geometric { mean: 400 },
            stop_at: Some(generate_until),
        },
        &Arc::new(groups),
        0xAB6,
    );
    let out = net.run_until(drain_until);
    assert!(out.deadlock.is_none(), "{}: deadlock {:?}", arm.name, out.deadlock);
    net.audit().expect("conservation");
    let mc = latencies(&net.msgs, Kind::Multicast, warmup, generate_until, None);
    let uc = latencies(&net.msgs, Kind::Unicast, warmup, generate_until, None);
    let flushes = net.stats.worms_flushed as f64;
    (mc.per_delivery.mean, uc.per_delivery.mean, flushes)
}

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let measure = if quick { 150_000 } else { 400_000 };
    let arms = [
        Arm {
            name: "v1-restricted-idle",
            variant: Some(SwitchcastVariant::RestrictedIdle),
        },
        Arm {
            name: "v2-rooted-interrupt",
            variant: Some(SwitchcastVariant::RootedInterrupt),
        },
        Arm {
            name: "v3-idle-flush",
            variant: Some(SwitchcastVariant::IdleFlush),
        },
        Arm {
            name: "hc-adapter",
            variant: None,
        },
    ];
    println!("# Ablation A6: switch-level multicast variants, 4x4 torus,");
    println!("# 4 groups x 6 members, p(mcast)=0.10");
    println!(
        "{:>8} {:>20} {:>14} {:>14} {:>10}",
        "load", "scheme", "mcast-latency", "uni-latency", "flushes"
    );
    for load in [0.02, 0.04, 0.06] {
        for arm in &arms {
            let (mc, uc, fl) = run(arm, load, measure);
            println!(
                "{load:>8.2} {:>20} {mc:>14.0} {uc:>14.0} {fl:>10.0}",
                arm.name
            );
        }
    }
}
