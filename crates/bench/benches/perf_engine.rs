//! Criterion micro-benchmarks of the simulation substrates themselves:
//! event-queue throughput, route computation, and end-to-end simulated
//! bytes per wall-clock second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use wormcast_core::{HcConfig, HcProtocol};
use wormcast_sim::engine::HostId;
use wormcast_sim::network::NetworkConfig;
use wormcast_sim::wheel::TimingWheel;
use wormcast_sim::Network;
use wormcast_topo::torus::torus;
use wormcast_topo::UpDown;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::{install_paper_sources, PaperWorkload};
use wormcast_traffic::{GroupSet, LengthDist};

fn bench_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("wheel");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_near_future", |b| {
        b.iter(|| {
            let mut w: TimingWheel<u32> = TimingWheel::new();
            let mut t = 0u64;
            for i in 0..10_000u32 {
                w.push(t + 1 + (i as u64 % 7), i);
                if i % 2 == 1 {
                    let (nt, _) = w.pop().expect("non-empty");
                    t = nt;
                }
            }
            while w.pop().is_some() {}
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = torus(8, 1);
    let ud = UpDown::compute(&topo, 0);
    c.bench_function("updown_route_table_torus8", |b| {
        b.iter(|| ud.route_table(&topo, false))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    // 50k byte-times of an 8x8 torus at moderate load.
    let horizon = 50_000u64;
    g.throughput(Throughput::Elements(horizon));
    g.bench_function("torus8_hc_load0.05_50k_byte_times", |b| {
        b.iter(|| {
            let topo = torus(8, 1);
            let ud = UpDown::compute(&topo, 0);
            let routes = ud.route_table(&topo, false);
            let mut net =
                Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::default());
            let mut grng = host_stream(1, 1);
            let groups = GroupSet::random(64, 10, 10, &mut grng);
            let membership = wormcast_bench::runner::membership_of(&groups);
            for h in 0..64u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(HcProtocol::new(
                        HostId(h),
                        HcConfig::store_and_forward(),
                        Arc::clone(&membership),
                    )),
                );
            }
            install_paper_sources(
                &mut net,
                PaperWorkload {
                    offered_load: 0.05,
                    multicast_prob: 0.10,
                    lengths: LengthDist::Geometric { mean: 400 },
                    stop_at: None,
                },
                &Arc::new(groups),
                1,
            );
            net.run_until(horizon)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wheel, bench_routing, bench_simulation);
criterion_main!(benches);
