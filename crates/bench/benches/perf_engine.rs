//! Criterion micro-benchmarks of the simulation substrates themselves:
//! event-queue throughput, route computation, and end-to-end simulated
//! bytes per wall-clock second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use serde::Serialize;
use std::sync::Arc;
use wormcast_bench::fig10::{self, Fig10Config};
use wormcast_bench::runner;
use wormcast_core::{HcConfig, HcProtocol};
use wormcast_sim::engine::HostId;
use wormcast_sim::network::{NetworkConfig, SimMode};
use wormcast_sim::wheel::TimingWheel;
use wormcast_sim::Network;
use wormcast_topo::torus::torus;
use wormcast_topo::UpDown;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::{install_paper_sources, PaperWorkload};
use wormcast_traffic::{GroupSet, LengthDist};

fn bench_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("wheel");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_near_future", |b| {
        b.iter(|| {
            let mut w: TimingWheel<u32> = TimingWheel::new();
            let mut t = 0u64;
            for i in 0..10_000u32 {
                w.push(t + 1 + (i as u64 % 7), i);
                if i % 2 == 1 {
                    let (nt, _) = w.pop().expect("non-empty");
                    t = nt;
                }
            }
            while w.pop().is_some() {}
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = torus(8, 1);
    let ud = UpDown::compute(&topo, 0);
    c.bench_function("updown_route_table_torus8", |b| {
        b.iter(|| ud.route_table(&topo, false))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    // 50k byte-times of an 8x8 torus at moderate load.
    let horizon = 50_000u64;
    g.throughput(Throughput::Elements(horizon));
    g.bench_function("torus8_hc_load0.05_50k_byte_times", |b| {
        b.iter(|| {
            let topo = torus(8, 1);
            let ud = UpDown::compute(&topo, 0);
            let routes = ud.route_table(&topo, false);
            let mut net =
                Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::builder().build().expect("valid config"));
            let mut grng = host_stream(1, 1);
            let groups = GroupSet::random(64, 10, 10, &mut grng);
            let membership = wormcast_bench::runner::membership_of(&groups);
            for h in 0..64u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(HcProtocol::new(
                        HostId(h),
                        HcConfig::store_and_forward(),
                        Arc::clone(&membership),
                    )),
                );
            }
            install_paper_sources(
                &mut net,
                PaperWorkload {
                    offered_load: 0.05,
                    multicast_prob: 0.10,
                    lengths: LengthDist::Geometric { mean: 400 },
                    stop_at: None,
                },
                &Arc::new(groups),
                1,
            );
            net.run_until(horizon)
        })
    });
    g.finish();
}

#[derive(Serialize)]
struct ModeRow {
    events_scheduled: u64,
    events_fired: u64,
    bytes_moved: u64,
    worms_delivered: u64,
    multicast_deliveries: u64,
}

#[derive(Serialize)]
struct SchemeRow {
    scheme: String,
    per_byte: ModeRow,
    span_batched: ModeRow,
    /// per_byte.events_scheduled / span_batched.events_scheduled — the
    /// tentpole claims ≥ 5×.
    scheduled_reduction: f64,
}

#[derive(Serialize)]
struct EngineDump {
    experiment: String,
    offered_load: f64,
    windows: (u64, u64, u64),
    rows: Vec<SchemeRow>,
}

fn mode_row(r: &runner::RunReport) -> ModeRow {
    ModeRow {
        events_scheduled: r.stats().events_scheduled,
        events_fired: r.stats().events_fired,
        bytes_moved: r.stats().bytes_moved,
        worms_delivered: r.stats().worms_delivered,
        multicast_deliveries: r.multicast.deliveries as u64,
    }
}

/// Not a timing micro-benchmark: one deterministic run per engine mode at
/// the Figure 10 operating point (load 0.08), comparing scheduler event
/// counts. Dumps `results/BENCH_engine.json` at the repository root.
fn bench_span_events(_c: &mut Criterion) {
    const LOAD: f64 = 0.08;
    let load = LOAD;
    let cfg = Fig10Config {
        loads: &[LOAD],
        warmup: 20_000,
        measure: 100_000,
        drain: 40_000,
        seed: 0xF1610,
    };
    let mut rows = Vec::new();
    for scheme in fig10::schemes() {
        let mut per_byte = fig10::setup(scheme, load, &cfg);
        per_byte.mode = SimMode::PerByte;
        let span = fig10::setup(scheme, load, &cfg);
        let [rb, rs]: [runner::RunReport; 2] = runner::run_parallel(vec![per_byte, span])
            .try_into()
            .expect("two results");
        let (b, s) = (mode_row(&rb), mode_row(&rs));
        assert_eq!(
            (b.bytes_moved, b.worms_delivered, b.multicast_deliveries),
            (s.bytes_moved, s.worms_delivered, s.multicast_deliveries),
            "modes diverged — span batching must be invisible"
        );
        let reduction = b.events_scheduled as f64 / s.events_scheduled as f64;
        eprintln!(
            "span events [{scheme:?}]: per-byte scheduled {} fired {} | span-batched scheduled {} fired {} | reduction {reduction:.2}x",
            b.events_scheduled, b.events_fired, s.events_scheduled, s.events_fired
        );
        rows.push(SchemeRow {
            scheme: format!("{scheme:?}"),
            per_byte: b,
            span_batched: s,
            scheduled_reduction: reduction,
        });
    }
    let dump = EngineDump {
        experiment: "fig10 8x8 torus, 10 groups x 10 members, p(mcast)=0.10".into(),
        offered_load: load,
        windows: (cfg.warmup, cfg.measure, cfg.drain),
        rows,
    };
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = format!("{dir}/BENCH_engine.json");
    let json = serde_json::to_string_pretty(&dump).expect("serialize dump");
    std::fs::write(&path, json).expect("write BENCH_engine.json");
    eprintln!("span events: wrote {path}");
}

criterion_group!(
    benches,
    bench_wheel,
    bench_routing,
    bench_simulation,
    bench_span_events
);
criterion_main!(benches);
