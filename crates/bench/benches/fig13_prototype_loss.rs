//! Figure 13 reproduction: per-host reception loss vs packet size in the
//! all-senders case on the prototype model. (The single-sender case is
//! printed too: the paper observed — and the model reproduces — zero loss
//! there, because adapters forward faster than hosts originate.)
//!
//! Run with `cargo bench --bench fig13_prototype_loss`.

use wormcast_myrinet::experiment::{packet_sizes, run_prototype, PrototypeConfig};
use wormcast_stats::Series;

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let mut all = Series::new("All send/receive");
    let mut single = Series::new("Single sender");
    for size in packet_sizes() {
        for all_senders in [true, false] {
            let mut cfg = PrototypeConfig::new(size, all_senders);
            if quick {
                cfg.duration = 1_200_000;
            }
            let r = run_prototype(&cfg);
            let s = if all_senders { &mut all } else { &mut single };
            s.push(size as f64, r.loss * 100.0, 0.0);
            if all_senders {
                eprintln!(
                    "size {size:>5}: loss per host {:.1}% (per-host spread {:?})",
                    r.loss * 100.0,
                    r.loss_per_host
                        .iter()
                        .map(|l| (l * 100.0).round())
                        .collect::<Vec<_>>()
                );
            }
        }
    }
    println!(
        "{}",
        wormcast_stats::series::format_table(
            "Figure 13: packet loss rate per host (input-buffer drops)",
            "packet bytes",
            "reception loss, percent",
            &[all, single],
        )
    );
}
