//! Ablation A5: tree construction shapes.
//!
//! DESIGN.md calls out the choice of tree shape as load-bearing: the paper
//! only constrains trees to be heap-ordered (child ID > parent ID,
//! Figure 9), leaving the shape free. This bench quantifies the choice:
//!
//! * `BinaryHeap` — the literal Figure 9 layout, topology-blind: tree
//!   edges are as long as random host pairs;
//! * `GreedyHop` — topology-aware, ID-ordered (the configuration that
//!   reproduces the paper's "tree links are shorter than all-pairs"
//!   observation, used in the Figure 10/11 reproductions);
//! * `DAryHeap(4)` — wider and shallower: less parallelism per adapter,
//!   fewer store-and-forward stages;
//! * `Star` — degenerate: the root does everything (repeated unicast from
//!   the lowest-ID member);
//!
//! each in both tree modes (origin-rooted broadcast vs root-serialized).
//!
//! Run with `cargo bench --bench ablation_tree_shapes`.

use wormcast_bench::runner::{run_parallel, SimSetup};
use wormcast_bench::Scheme;
use wormcast_core::{Reliability, TreeConfig, TreeMode};
use wormcast_topo::torus::torus;
use wormcast_topo::tree::TreeShape;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let (measure, drain) = if quick {
        (150_000, 100_000)
    } else {
        (400_000, 200_000)
    };
    let shapes = [
        ("binary-heap", TreeShape::BinaryHeap),
        ("greedy-hop", TreeShape::GreedyHop),
        ("4-ary-heap", TreeShape::DAryHeap(4)),
        ("star", TreeShape::Star),
    ];
    let modes = [
        ("broadcast", TreeMode::BroadcastFromOrigin),
        ("root-serial", TreeMode::RootSerialized),
    ];
    println!("# Ablation A5: tree shapes x modes, 8x8 torus, p(mcast)=0.10");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "load", "shape", "mode", "mcast-latency", "ratio"
    );
    for load in [0.04, 0.06] {
        let mut configs = Vec::new();
        let mut setups = Vec::new();
        for (sname, shape) in shapes {
            for (mname, mode) in modes {
                configs.push((sname, mname));
                let mut grng = host_stream(0xAB5, 0x6071);
                let groups = GroupSet::random(64, 10, 10, &mut grng);
                let scheme = Scheme::Tree(
                    TreeConfig {
                        mode,
                        cut_through_first: false,
                        reliability: Reliability::None,
                    },
                    shape,
                );
                let workload = PaperWorkload {
                    offered_load: load,
                    multicast_prob: 0.10,
                    lengths: LengthDist::Geometric { mean: 400 },
                    stop_at: None,
                };
                setups.push(
                    SimSetup::builder(torus(8, 1), groups, scheme, workload)
                        .seed(0xAB5)
                        .windows(60_000, measure, drain)
                        .build()
                        .expect("valid setup"),
                );
            }
        }
        let results = run_parallel(setups);
        for ((sname, mname), r) in configs.iter().zip(&results) {
            println!(
                "{load:>8.3} {sname:>12} {mname:>12} {:>14.0} {:>12.3}",
                r.multicast.per_delivery.mean, r.delivery_ratio
            );
        }
    }
}
