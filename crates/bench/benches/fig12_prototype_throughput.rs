//! Figure 12 reproduction: measured per-host throughput vs packet size for
//! a Hamiltonian circuit of eight hosts on the four-switch Myrinet
//! prototype model — single transmitting host vs all hosts transmitting.
//!
//! Run with `cargo bench --bench fig12_prototype_throughput`.

use wormcast_myrinet::experiment::{packet_sizes, run_prototype, PrototypeConfig};
use wormcast_stats::Series;

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let mut single = Series::new("Single sender");
    let mut all = Series::new("All send/receive");
    for size in packet_sizes() {
        for all_senders in [false, true] {
            let mut cfg = PrototypeConfig::new(size, all_senders);
            if quick {
                cfg.duration = 1_200_000;
            }
            let r = run_prototype(&cfg);
            let s = if all_senders { &mut all } else { &mut single };
            s.push(size as f64, r.throughput_mbps, 0.0);
            eprintln!(
                "size {size:>5} all={all_senders}: {:>7.1} Mb/s per host, loss {:.1}% \
                 ({} delivered, {} dropped)",
                r.throughput_mbps,
                r.loss * 100.0,
                r.packets_delivered,
                r.packets_dropped
            );
        }
    }
    println!(
        "{}",
        wormcast_stats::series::format_table(
            "Figure 12: measured throughput (per host), Hamiltonian circuit of 8 hosts",
            "packet bytes",
            "throughput, Mbit/s",
            &[single, all],
        )
    );
}
