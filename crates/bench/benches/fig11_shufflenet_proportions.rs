//! Figure 11 reproduction: average delay vs offered load for multicast
//! proportions {0.05, 0.10, 0.15, 0.20} on the 24-node bidirectional
//! shufflenet with 1000-byte-time links; tree vs Hamiltonian circuit.
//!
//! Run with `cargo bench --bench fig11_shufflenet_proportions`. Set
//! `WORMCAST_QUICK=1` for a reduced sweep.

use wormcast_bench::fig11::{run_figure, Fig11Config};
use wormcast_stats::series::format_table;

fn main() {
    let quick = std::env::var_os("WORMCAST_QUICK").is_some();
    let cfg = if quick {
        Fig11Config::quick()
    } else {
        Fig11Config::full()
    };
    eprintln!("fig11: shufflenet-24, 4 groups x 6 members, 1000-bt links, {cfg:?}");
    let results = run_figure(&cfg);
    let series: Vec<_> = results.iter().map(|(s, _)| s.clone()).collect();
    println!(
        "{}",
        format_table(
            "Figure 11: average delay for varying multicast proportions \
             (24-node bidirectional shufflenet)",
            "load",
            "delay, byte times",
            &series,
        )
    );
}
