//! Sharded-vs-sequential differential harness: the parallel engine must be
//! a pure performance feature. For every topology family, shard count,
//! partition plan and engine mode, the sharded run must reproduce the
//! sequential run's statistics and message log **byte for byte** — only
//! the engine-cost counters (`events_scheduled` / `events_fired`) may
//! differ, exactly as between the two [`SimMode`]s (DESIGN.md §3.4).
//! Traced runs shard too: the merged span-batched trace, expanded back to
//! per-byte by `trace_io::expand_spans`, must match the sequential
//! per-byte trace byte for byte (DESIGN.md §3.2).

use wormcast_bench::runner::{build_network, build_sharded, SimSetup};
use wormcast_bench::trace_io::{expand_spans, validate_jsonl};
use wormcast_bench::Scheme;
use wormcast_core::{HcConfig, TreeConfig};
use wormcast_sim::network::{MessageLog, NetStats, SimMode};
use wormcast_sim::trace::TraceConfig;
use wormcast_topo::irregular::{irregular, IrregularSpec};
use wormcast_topo::shufflenet::shufflenet24;
use wormcast_topo::torus::torus;
use wormcast_topo::tree::TreeShape;
use wormcast_topo::{ShardPlan, Topology};
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

const DRAIN_UNTIL: u64 = 26_000;

fn setup_on(topo: Topology, scheme: Scheme, mode: SimMode) -> SimSetup {
    let hosts = topo.num_hosts();
    let mut grng = host_stream(11, 0x6071);
    let groups = GroupSet::random(hosts, 3, (hosts / 3).max(2), &mut grng);
    let workload = PaperWorkload {
        offered_load: 0.08,
        multicast_prob: 0.1,
        lengths: LengthDist::Geometric { mean: 400 },
        stop_at: None,
    };
    SimSetup::builder(topo, groups, scheme, workload)
        .seed(23)
        .mode(mode)
        .windows(2_000, 12_000, 12_000)
        .build()
        .expect("valid setup")
}

/// Canonical comparison form: stats with the engine-cost counters masked,
/// plus the message log with deliveries in canonical order (same-tick
/// deliveries at different hosts are concurrent; the logs are compared as
/// sets ordered by `(at, msg, host)`).
fn canonical(mut stats: NetStats, mut msgs: MessageLog) -> (String, String, String) {
    stats.events_scheduled = 0;
    stats.events_fired = 0;
    msgs.created
        .sort_by_key(|r| (r.created, r.msg.0));
    msgs.deliveries
        .sort_by_key(|d| (d.at, d.msg.0, d.host.0));
    (
        format!("{stats:?}"),
        format!("{:?}", msgs.created),
        format!("{:?}", msgs.deliveries),
    )
}

fn run_sequential(setup: &SimSetup) -> (String, String, String) {
    let mut net = build_network(setup);
    let out = net.run_until(DRAIN_UNTIL);
    assert!(out.deadlock.is_none(), "sequential deadlock: {out:?}");
    net.audit().expect("sequential conservation");
    canonical(net.stats.clone(), net.msgs.clone())
}

fn run_sharded_with(setup: &SimSetup) -> (String, String, String) {
    let mut sharded = build_sharded(setup).expect("shardable setup");
    let out = sharded.run_until(DRAIN_UNTIL);
    assert!(out.deadlock.is_none(), "sharded deadlock: {out:?}");
    sharded.audit().expect("sharded conservation");
    canonical(sharded.stats(), sharded.msgs())
}

fn assert_equivalent(name: &str, setup_seq: &SimSetup, setup_sh: &SimSetup) {
    let (s0, c0, d0) = run_sequential(setup_seq);
    let (s1, c1, d1) = run_sharded_with(setup_sh);
    assert_eq!(c0, c1, "{name}: created messages diverged");
    assert_eq!(d0, d1, "{name}: deliveries diverged");
    assert_eq!(s0, s1, "{name}: stats diverged");
}

fn tree_fabric(seed: u64) -> Topology {
    // A random spanning tree (no crosslinks) — the "subtree" family.
    irregular(
        IrregularSpec {
            num_switches: 12,
            extra_links: 0,
            hosts_per_switch: 2,
            link_delay: 1,
        },
        seed,
    )
}

fn irregular_fabric(seed: u64) -> Topology {
    irregular(
        IrregularSpec {
            num_switches: 14,
            extra_links: 6,
            hosts_per_switch: 2,
            link_delay: 2,
        },
        seed,
    )
}

#[test]
fn torus_matches_across_shard_counts_and_modes() {
    for mode in [SimMode::PerByte, SimMode::SpanBatched] {
        let seq = setup_on(torus(4, 1), Scheme::Hc(HcConfig::store_and_forward()), mode);
        for shards in [1u32, 2, 4] {
            let mut sh = setup_on(torus(4, 1), Scheme::Hc(HcConfig::store_and_forward()), mode);
            sh.shards = shards;
            sh.shard_plan = Some(ShardPlan::torus_grid(4, shards).expect("plan"));
            assert_equivalent(&format!("torus mode={mode:?} shards={shards}"), &seq, &sh);
        }
    }
}

#[test]
fn shufflenet_matches_sharded() {
    for shards in [2u32, 3] {
        let seq = setup_on(
            shufflenet24(1),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
            SimMode::SpanBatched,
        );
        let mut sh = setup_on(
            shufflenet24(1),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
            SimMode::SpanBatched,
        );
        sh.shards = shards; // default bfs_contiguous plan
        assert_equivalent(&format!("shufflenet shards={shards}"), &seq, &sh);
    }
}

#[test]
fn tree_fabric_matches_sharded() {
    let topo = tree_fabric(5);
    let seq = setup_on(
        topo.clone(),
        Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::GreedyHop),
        SimMode::SpanBatched,
    );
    for shards in [2u32, 4] {
        let mut sh = setup_on(
            topo.clone(),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::GreedyHop),
            SimMode::SpanBatched,
        );
        sh.shards = shards;
        assert_equivalent(&format!("tree shards={shards}"), &seq, &sh);
    }
}

#[test]
fn irregular_fabric_matches_sharded_both_modes() {
    let topo = irregular_fabric(9);
    for mode in [SimMode::PerByte, SimMode::SpanBatched] {
        let seq = setup_on(topo.clone(), Scheme::Hc(HcConfig::cut_through()), mode);
        let mut sh = setup_on(topo.clone(), Scheme::Hc(HcConfig::cut_through()), mode);
        sh.shards = 2;
        assert_equivalent(&format!("irregular mode={mode:?}"), &seq, &sh);
    }
}

/// Adversarial plan: round-robin switch→shard assignment puts *every*
/// consecutive pair of route hops in different shards, so worms cross the
/// same shard boundary many times (and re-enter shards they already
/// visited) — the worst case for the worm-identity handoff protocol.
#[test]
fn adversarial_round_robin_plan_still_matches() {
    let seq = setup_on(
        torus(4, 1),
        Scheme::Hc(HcConfig::store_and_forward()),
        SimMode::SpanBatched,
    );
    let mut sh = setup_on(
        torus(4, 1),
        Scheme::Hc(HcConfig::store_and_forward()),
        SimMode::SpanBatched,
    );
    sh.shards = 4;
    sh.shard_plan = Some(ShardPlan::switch_hash(16, 4).expect("plan"));
    assert_equivalent("adversarial switch-hash", &seq, &sh);
}

/// Multi-lane boundary channels: with two virtual lanes per link, every
/// cut channel is two independent byte streams, each lane carrying its own
/// optimistic spans with its own mirror-truncation cutoff and NACK/credit
/// optimism state. Both shard counts must stay byte-identical to the
/// sequential two-lane run.
#[test]
fn torus_lanes2_matches_sharded() {
    let mut seq = setup_on(
        torus(4, 1),
        Scheme::Hc(HcConfig::store_and_forward()),
        SimMode::SpanBatched,
    );
    seq.lanes = 2;
    for shards in [2u32, 4] {
        let mut sh = setup_on(
            torus(4, 1),
            Scheme::Hc(HcConfig::store_and_forward()),
            SimMode::SpanBatched,
        );
        sh.lanes = 2;
        sh.shards = shards;
        sh.shard_plan = Some(ShardPlan::torus_grid(4, shards).expect("plan"));
        assert_equivalent(&format!("torus lanes=2 shards={shards}"), &seq, &sh);
    }
}

/// The strongest adversarial cut: a parity checkerboard over the 4×4 torus
/// (switch-hash on `x + y` rather than the raw index) puts **every**
/// switch-to-switch link in the cut, so no worm ever advances a byte
/// without crossing a shard boundary — every hot link exercises the
/// optimistic-span / receive-side-truncation / credit-return protocol.
/// Both engine modes must still match sequential byte for byte.
#[test]
fn adversarial_checkerboard_all_links_cut_still_matches() {
    let topo = torus(4, 1);
    let owner: Vec<u32> = (0..16).map(|i| ((i / 4 + i % 4) % 2) as u32).collect();
    let plan = ShardPlan::from_assignment(2, owner).expect("plan");
    assert_eq!(
        plan.cut_links(&topo).len(),
        topo.links.len(),
        "checkerboard must cut every switch-to-switch link of the 4x4 torus"
    );
    for mode in [SimMode::PerByte, SimMode::SpanBatched] {
        let seq = setup_on(topo.clone(), Scheme::Hc(HcConfig::store_and_forward()), mode);
        let mut sh = setup_on(topo.clone(), Scheme::Hc(HcConfig::store_and_forward()), mode);
        sh.shards = 2;
        sh.shard_plan = Some(plan.clone());
        assert_equivalent(&format!("checkerboard mode={mode:?}"), &seq, &sh);
    }
}

/// Rendered JSONL of a traced sequential run.
fn traced_sequential(setup: &SimSetup) -> String {
    let mut net = build_network(setup);
    let out = net.run_until(DRAIN_UNTIL);
    assert!(out.deadlock.is_none(), "sequential deadlock: {out:?}");
    net.audit().expect("sequential conservation");
    net.trace.to_jsonl()
}

/// Rendered JSONL of a traced sharded run (merged across shards).
fn traced_sharded(setup: &SimSetup) -> String {
    let mut sharded = build_sharded(setup).expect("shardable setup");
    let out = sharded.run_until(DRAIN_UNTIL);
    assert!(out.deadlock.is_none(), "sharded deadlock: {out:?}");
    sharded.audit().expect("sharded conservation");
    sharded.trace().to_jsonl()
}

/// The first differing line of two JSONL streams, for a readable failure.
fn first_diff(a: &str, b: &str) -> String {
    let (la, lb): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    for i in 0..la.len().min(lb.len()) {
        if la[i] != lb[i] {
            let lo = i.saturating_sub(3);
            let mut out = format!("line {}:\n", i + 1);
            for j in lo..(i + 4).min(la.len().min(lb.len())) {
                let mark = if la[j] == lb[j] { ' ' } else { '!' };
                out.push_str(&format!(
                    "{mark} expected: {}\n{mark} got:      {}\n",
                    la[j], lb[j]
                ));
            }
            return out;
        }
    }
    format!("line counts differ: {} vs {}", la.len(), lb.len())
}

/// Span-native tracing across shards: the merged span-batched sharded
/// trace, run through the per-byte expander, must be byte-identical to
/// the sequential per-byte trace — and a sharded *per-byte* trace must
/// match it without any expansion at all.
fn assert_traced_equivalent(
    name: &str,
    mk: &dyn Fn(SimMode) -> SimSetup,
    shards: u32,
    plan: Option<ShardPlan>,
) {
    let mut seq = mk(SimMode::PerByte);
    seq.trace = TraceConfig::Memory;
    let j_ref = traced_sequential(&seq);
    assert!(!j_ref.is_empty(), "{name}: reference trace captured nothing");

    // Sequential span-batched first: families here (tree, shufflenet,
    // irregular…) are not all covered by the span_equivalence suite, and
    // a sequential divergence would otherwise masquerade as a sharding
    // bug below.
    let mut sp_seq = mk(SimMode::SpanBatched);
    sp_seq.trace = TraceConfig::Memory;
    let j_sp_seq = traced_sequential(&sp_seq);
    let exp_seq = expand_spans(&j_sp_seq);
    assert!(
        exp_seq == j_ref,
        "{name}: SEQ span trace diverged from sequential per-byte\n{}",
        first_diff(&j_ref, &exp_seq)
    );

    let mut sp = mk(SimMode::SpanBatched);
    sp.trace = TraceConfig::Memory;
    sp.shards = shards;
    sp.shard_plan = plan.clone();
    let j_span = traced_sharded(&sp);
    let violations = validate_jsonl(&j_span);
    assert!(
        violations.is_empty(),
        "{name}: sharded span trace violates the schema: {violations:?}"
    );
    let expanded = expand_spans(&j_span);
    assert!(
        expanded == j_ref,
        "{name}: expanded sharded span trace diverged from sequential per-byte\n{}",
        first_diff(&j_ref, &expanded)
    );

    let mut pb = mk(SimMode::PerByte);
    pb.trace = TraceConfig::Memory;
    pb.shards = shards;
    pb.shard_plan = plan;
    let j_pb = traced_sharded(&pb);
    assert!(
        j_pb == j_ref,
        "{name}: sharded per-byte trace diverged from sequential per-byte\n{}",
        first_diff(&j_ref, &j_pb)
    );
}

#[test]
fn traced_sharded_torus_expands_to_sequential() {
    let mk = |mode| setup_on(torus(4, 1), Scheme::Hc(HcConfig::store_and_forward()), mode);
    for shards in [2u32, 4] {
        assert_traced_equivalent(
            &format!("traced torus shards={shards}"),
            &mk,
            shards,
            Some(ShardPlan::torus_grid(4, shards).expect("plan")),
        );
    }
}

#[test]
fn traced_sharded_shufflenet_expands_to_sequential() {
    let mk = |mode| {
        setup_on(
            shufflenet24(1),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
            mode,
        )
    };
    assert_traced_equivalent("traced shufflenet shards=2", &mk, 2, None);
}

#[test]
fn traced_sharded_tree_expands_to_sequential() {
    let mk = |mode| {
        setup_on(
            tree_fabric(5),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::GreedyHop),
            mode,
        )
    };
    assert_traced_equivalent("traced tree shards=4", &mk, 4, None);
}

#[test]
fn traced_sharded_irregular_expands_to_sequential() {
    let mk = |mode| setup_on(irregular_fabric(9), Scheme::Hc(HcConfig::cut_through()), mode);
    assert_traced_equivalent("traced irregular shards=2", &mk, 2, None);
}

#[test]
fn traced_sharded_torus_lanes2_expands_to_sequential() {
    // Two lanes per link: span-level lines carry the lane field and every
    // cut channel runs the optimistic-span protocol per lane.
    let mk = |mode| {
        let mut s = setup_on(torus(4, 1), Scheme::Hc(HcConfig::store_and_forward()), mode);
        s.lanes = 2;
        s
    };
    for shards in [2u32, 4] {
        assert_traced_equivalent(
            &format!("traced torus lanes=2 shards={shards}"),
            &mk,
            shards,
            Some(ShardPlan::torus_grid(4, shards).expect("plan")),
        );
    }
}

/// `RunReport::trace_dropped` surfaces ring overflow: a tiny ring on a
/// busy run must report drops, and the default sinks must report zero.
#[test]
fn runner_reports_ring_overflow() {
    let mut s = setup_on(
        torus(4, 1),
        Scheme::Hc(HcConfig::store_and_forward()),
        SimMode::SpanBatched,
    );
    s.trace = TraceConfig::Ring { capacity: 64 };
    let (report, trace) = wormcast_bench::runner::run_traced(&s);
    assert!(
        report.trace_dropped > 0,
        "a 64-event ring must overflow on this run"
    );
    assert_eq!(trace.len(), 64, "ring keeps exactly its capacity");

    let mut s2 = setup_on(
        torus(4, 1),
        Scheme::Hc(HcConfig::store_and_forward()),
        SimMode::SpanBatched,
    );
    s2.trace = TraceConfig::Memory;
    let (report2, _) = wormcast_bench::runner::run_traced(&s2);
    assert_eq!(report2.trace_dropped, 0, "memory sink never drops");
}

/// The public entry point composes the same way: `run()` on a sharded
/// setup returns the same report as the sequential engine.
#[test]
fn runner_report_identical_with_shards() {
    let seq = setup_on(
        torus(4, 1),
        Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
        SimMode::SpanBatched,
    );
    let mut sh = setup_on(
        torus(4, 1),
        Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
        SimMode::SpanBatched,
    );
    sh.shards = 2;
    let a = wormcast_bench::runner::run(&seq);
    let b = wormcast_bench::runner::run(&sh);
    assert_eq!(
        a.multicast.per_delivery.mean,
        b.multicast.per_delivery.mean
    );
    assert_eq!(a.unicast.deliveries, b.unicast.deliveries);
    assert_eq!(a.delivery_ratio, b.delivery_ratio);
    assert_eq!(a.host_tx_utilization, b.host_tx_utilization);
    assert_eq!(a.outcome.stats.bytes_moved, b.outcome.stats.bytes_moved);
}
