//! Lane-layer differential harness: multi-lane links must be a pure
//! *capacity* feature. With one lane per link — the default, and the
//! paper's Myrinet — the redesigned lane-port engine must reproduce the
//! pre-lane engine's results **byte for byte**, across topology families,
//! both [`SimMode`]s, and the sequential and sharded engines. The pinned
//! counters below were captured from the single-channel engine immediately
//! before the lane refactor landed; any drift is a semantics change, not
//! noise.
//!
//! The multi-lane tests then check the one property lanes must add
//! (per-lane STOP isolation: a stopped lane never blocks its siblings)
//! without re-deriving throughput claims — those are gated in
//! `perf_lanes` against `results/BENCH_lanes.json`.

use wormcast_bench::runner::{build_network, build_sharded, SimSetup};
use wormcast_bench::Scheme;
use wormcast_core::{HcConfig, TreeConfig};
use wormcast_sim::network::SimMode;
use wormcast_topo::irregular::{irregular, IrregularSpec};
use wormcast_topo::shufflenet::shufflenet24;
use wormcast_topo::torus::torus;
use wormcast_topo::tree::TreeShape;
use wormcast_topo::Topology;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

const DRAIN_UNTIL: u64 = 26_000;

/// Counters pinned from the pre-lane single-channel engine (seed 23,
/// windows 2k/12k/12k, load 0.08): `(bytes_moved, worms_injected,
/// worms_delivered, messages_generated, deliveries)`.
type Pins = (u64, u64, u64, u64, usize);

fn families() -> Vec<(&'static str, Topology, Scheme, Pins)> {
    vec![
        (
            "torus",
            torus(4, 1),
            Scheme::Hc(HcConfig::store_and_forward()),
            (72_125, 47, 47, 47, 47),
        ),
        (
            "shufflenet",
            shufflenet24(1),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
            (203_184, 101, 101, 73, 97),
        ),
        (
            "tree",
            irregular(
                IrregularSpec {
                    num_switches: 12,
                    extra_links: 0,
                    hosts_per_switch: 2,
                    link_delay: 1,
                },
                5,
            ),
            Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::GreedyHop),
            (189_552, 101, 101, 73, 97),
        ),
        (
            "irregular",
            irregular(
                IrregularSpec {
                    num_switches: 14,
                    extra_links: 6,
                    hosts_per_switch: 2,
                    link_delay: 2,
                },
                9,
            ),
            Scheme::Hc(HcConfig::cut_through()),
            (190_450, 110, 110, 82, 110),
        ),
    ]
}

fn setup_on(topo: Topology, scheme: Scheme, mode: SimMode, lanes: u8) -> SimSetup {
    let hosts = topo.num_hosts();
    let mut grng = host_stream(11, 0x6071);
    let groups = GroupSet::random(hosts, 3, (hosts / 3).max(2), &mut grng);
    let workload = PaperWorkload {
        offered_load: 0.08,
        multicast_prob: 0.1,
        lengths: LengthDist::Geometric { mean: 400 },
        stop_at: None,
    };
    SimSetup::builder(topo, groups, scheme, workload)
        .seed(23)
        .mode(mode)
        .lanes(lanes)
        .windows(2_000, 12_000, 12_000)
        .build()
        .expect("valid setup")
}

fn assert_pins(name: &str, pins: Pins, got: Pins) {
    assert_eq!(
        got, pins,
        "{name}: (bytes_moved, worms_injected, worms_delivered, \
         messages_generated, deliveries) drifted from the pre-lane engine"
    );
}

/// Sequential engine, both modes, default lane count (1): every family
/// replays the pre-lane counters exactly.
#[test]
fn single_lane_replays_pinned_counters_sequential() {
    for (name, topo, scheme, pins) in families() {
        for mode in [SimMode::PerByte, SimMode::SpanBatched] {
            let setup = setup_on(topo.clone(), scheme, mode, 1);
            let mut net = build_network(&setup);
            let out = net.run_until(DRAIN_UNTIL);
            assert!(out.deadlock.is_none(), "{name}: deadlock {out:?}");
            net.audit().expect("conservation");
            assert_pins(
                &format!("{name} {mode:?} sequential"),
                pins,
                (
                    out.stats.bytes_moved,
                    out.stats.worms_injected,
                    out.stats.worms_delivered,
                    out.stats.messages_generated,
                    net.msgs.deliveries.len(),
                ),
            );
        }
    }
}

/// Sharded engine (2 shards, derived contiguous plan), explicit
/// `.lanes(1)`: same pins — lanes compose with Chandy–Misra–Bryant
/// sharding without changing a single counter.
#[test]
fn single_lane_replays_pinned_counters_sharded() {
    for (name, topo, scheme, pins) in families() {
        let mut setup = setup_on(topo.clone(), scheme, SimMode::SpanBatched, 1);
        setup.shards = 2;
        let mut sharded = build_sharded(&setup).expect("shardable setup");
        let out = sharded.run_until(DRAIN_UNTIL);
        assert!(out.deadlock.is_none(), "{name}: deadlock {out:?}");
        sharded.audit().expect("sharded conservation");
        let msgs = sharded.msgs();
        assert_pins(
            &format!("{name} sharded"),
            pins,
            (
                out.stats.bytes_moved,
                out.stats.worms_injected,
                out.stats.worms_delivered,
                out.stats.messages_generated,
                msgs.deliveries.len(),
            ),
        );
    }
}

/// Per-lane STOP isolation, end to end: permanently stop lane 0 of every
/// two-lane trunk before any traffic flows. A worm the arbiter grants to a
/// stopped lane stalls there (STOP is honored), but the *sibling* lane
/// keeps carrying traffic — the fabric routes around the backpressure and
/// still delivers. Under the old single-channel model this configuration
/// would halt every trunk outright.
#[test]
fn stopped_lane_never_blocks_its_sibling() {
    let setup = setup_on(
        torus(4, 1),
        Scheme::Hc(HcConfig::store_and_forward()),
        SimMode::SpanBatched,
        2,
    );
    let mut net = build_network(&setup);
    let trunks: Vec<_> = net
        .links()
        .iter()
        .filter(|l| l.num_lanes() == 2)
        .copied()
        .collect();
    assert!(!trunks.is_empty(), "expected two-lane trunks");
    for link in &trunks {
        net.lane_mut(link.lane_id(0)).stop(0);
    }
    // Worms parked on stopped lanes never drain, so the run ends
    // non-quiescent by design: no audit, no deadlock assertion.
    net.run_until(DRAIN_UNTIL);
    let mut sibling_bytes = 0;
    for link in &trunks {
        let stopped = net.lane(link.lane_id(0));
        assert!(stopped.is_stopped(), "STOP must hold without a GO");
        assert_eq!(
            stopped.stats().bytes_carried,
            0,
            "stopped lane {:?} carried data",
            stopped.id()
        );
        assert!(
            stopped.stall_time(DRAIN_UNTIL) > 0,
            "stall accounting missed the stopped interval"
        );
        sibling_bytes += net.lane(link.lane_id(1)).stats().bytes_carried;
    }
    assert!(sibling_bytes > 0, "sibling lanes carried no traffic");
    assert!(
        !net.msgs.deliveries.is_empty(),
        "no deliveries with every trunk's sibling lane free"
    );
}

/// Multi-lane runs stay conservation-clean and deadlock-free: the same
/// operating point at 2 and 4 lanes delivers at least as much as one lane
/// (capacity can only help), and the audit passes.
#[test]
fn multi_lane_delivers_no_less_than_single_lane() {
    let mut delivered = Vec::new();
    for lanes in [1u8, 2, 4] {
        let setup = setup_on(
            torus(4, 1),
            Scheme::Hc(HcConfig::store_and_forward()),
            SimMode::SpanBatched,
            lanes,
        );
        let mut net = build_network(&setup);
        let out = net.run_until(DRAIN_UNTIL);
        assert!(out.deadlock.is_none(), "lanes={lanes}: deadlock {out:?}");
        net.audit().expect("multi-lane conservation");
        delivered.push(out.stats.worms_delivered);
    }
    assert!(
        delivered.windows(2).all(|w| w[0] <= w[1]),
        "delivered worms decreased with more lanes: {delivered:?}"
    );
}
