//! Calibration probes (all `#[ignore]`d): quick sweeps used while matching
//! the paper's curves. They print rather than assert — run with
//!
//!     cargo test --release -p wormcast-bench --test calibration -- --ignored --nocapture
//!
//! Kept in-tree because recalibration is the first thing a future change to
//! the fabric model will need.

use wormcast_bench::runner::{build_network, membership_of};
use wormcast_bench::{Scheme, SimSetup};
use wormcast_core::{HcConfig, Reliability, TreeConfig, TreeMode};
use wormcast_sim::protocol::{Destination, SourceMessage};
use wormcast_topo::torus::torus;
use wormcast_topo::tree::TreeShape;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

fn base_setup(load: f64, mcast: f64) -> (SimSetup, GroupSet) {
    let mut grng = host_stream(7, 0x6071);
    let groups = GroupSet::random(64, 10, 10, &mut grng);
    let workload = PaperWorkload {
        offered_load: load,
        multicast_prob: mcast,
        lengths: LengthDist::Geometric { mean: 400 },
        stop_at: None,
    };
    let s = SimSetup::builder(
        torus(8, 1),
        groups.clone(),
        Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap),
        workload,
    )
    .seed(7)
    .build()
    .expect("valid setup");
    (s, groups)
}

/// One multicast on an otherwise idle torus: per-member delivery times for
/// eyeballing the store-and-forward pipeline.
#[test]
#[ignore]
fn single_multicast_latency() {
    let (mut setup, groups) = base_setup(0.04, 0.1);
    setup.workload.stop_at = Some(0);
    setup.generate_until = 0;
    let mut net = build_network(&setup);
    let g0 = groups.members(0).to_vec();
    let origin = g0[3];
    wormcast_traffic::script::install_one_shot(&mut net, origin, 1000, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 400,
    });
    let out = net.run_until(10_000_000);
    eprintln!("drained={} deliveries={}", out.drained, net.msgs.deliveries.len());
    let m = membership_of(&groups);
    eprintln!("group0 = {:?} origin={origin:?}", m.members(0));
    let mut ds = net.msgs.deliveries.clone();
    ds.sort_by_key(|d| d.at);
    for d in &ds {
        eprintln!("  host {:?} at {} (lat {})", d.host, d.at, d.at - 1000);
    }
}

/// Unicast-vs-multicast saturation sweep (where does the fabric fold?).
#[test]
#[ignore]
fn load_sweep() {
    for (load, mcast) in [(0.02, 0.0), (0.04, 0.0), (0.08, 0.0), (0.02, 0.1), (0.04, 0.1)] {
        let (setup, _) = base_setup(load, mcast);
        let setup = setup.windows(30_000, 150_000, 100_000);
        let r = wormcast_bench::runner::run(&setup);
        eprintln!(
            "load {load} p={mcast}: mcast mean {:.0} (n={}), unicast mean {:.0} (n={}), \
             tx_util {:.4}, ratio {:.3}",
            r.multicast.per_delivery.mean,
            r.multicast.deliveries,
            r.unicast.per_delivery.mean,
            r.unicast.deliveries,
            r.host_tx_utilization,
            r.delivery_ratio
        );
    }
}

/// Scheme-by-scheme comparison at the Figure 10 loads (the sweep that
/// selected the figure's tree configuration; see DESIGN.md §2).
#[test]
#[ignore]
fn scheme_compare() {
    for load in [0.04, 0.06, 0.08, 0.10, 0.12] {
        for (name, scheme) in [
            ("hc-snf ", Scheme::Hc(HcConfig::store_and_forward())),
            ("hc-ct  ", Scheme::Hc(HcConfig::cut_through())),
            (
                "tree-r ",
                Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::GreedyHop),
            ),
            (
                "tree-bg",
                Scheme::Tree(
                    TreeConfig {
                        mode: TreeMode::BroadcastFromOrigin,
                        cut_through_first: false,
                        reliability: Reliability::None,
                    },
                    TreeShape::GreedyHop,
                ),
            ),
        ] {
            let (mut setup, _) = base_setup(load, 0.1);
            setup.scheme = scheme;
            let setup = setup.windows(50_000, 250_000, 150_000);
            let r = wormcast_bench::runner::run(&setup);
            eprintln!(
                "{name} load {load:.2}: mcast {:.0} (n={}) uni {:.0} util {:.3} ratio {:.3}",
                r.multicast.per_delivery.mean,
                r.multicast.deliveries,
                r.unicast.per_delivery.mean,
                r.host_tx_utilization,
                r.delivery_ratio
            );
        }
    }
}
