//! JSONL trace output for experiment runs.
//!
//! The simulator's [`Trace`] already knows how to render itself as JSON
//! Lines ([`Trace::to_jsonl`]); this module adds the file plumbing the
//! bench targets and the CI smoke job need — write a run's trace to disk,
//! and validate that a JSONL stream conforms to the event schema
//! (DESIGN.md §3.2).

use serde_json::Value;
use std::io::Write;
use std::path::Path;
use wormcast_sim::trace::Trace;

/// Write a trace to `path` as JSON Lines, one event per line, sorted by
/// `(time, rendered line)` — the deterministic order [`Trace::to_jsonl`]
/// guarantees.
pub fn write_jsonl(trace: &Trace, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(trace.to_jsonl().as_bytes())?;
    f.flush()
}

/// A schema violation found by [`validate_jsonl`]: line number (1-based)
/// and what was wrong with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaViolation {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Required integer fields per event name, beyond the universal `t`.
fn required_fields(ev: &str) -> Option<&'static [&'static str]> {
    Some(match ev {
        "worm-injected" | "worm-received" | "worm-refused" | "worm-corrupt"
        | "worm-flushed" => &["worm", "host"],
        "route-consumed" => &["worm", "switch", "out"],
        "blocked" | "resumed" => &["worm"],
        "fragment-parked" | "fragment-resumed" => &["worm", "host", "body_got"],
        "delivered" => &["msg", "host"],
        "stop" | "go" => &["ch", "lane"],
        _ => return None,
    })
}

/// Fields the `cause` discriminant adds to `blocked`/`resumed` events.
fn cause_fields(cause: &str) -> Option<&'static [&'static str]> {
    Some(match cause {
        "stop" => &["ch"],
        "output-busy" | "branch-wait" => &["switch", "out"],
        _ => return None,
    })
}

fn as_u64(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(&Value::U64(x)) => Some(x),
        _ => None,
    }
}

fn as_str(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Check every line of a JSONL stream against the trace event schema:
/// valid JSON object, numeric `t`, known `ev`, the event's required
/// fields present as unsigned integers, non-decreasing `t`, and a valid
/// `cause` on blocked/resumed lines. Returns all violations (empty =
/// conformant).
pub fn validate_jsonl(jsonl: &str) -> Vec<SchemaViolation> {
    let mut out = Vec::new();
    let mut last_t: Option<u64> = None;
    for (ix, line) in jsonl.lines().enumerate() {
        let lineno = ix + 1;
        let mut bad = |reason: String| {
            out.push(SchemaViolation {
                line: lineno,
                reason,
            })
        };
        let v: Value = match serde_json::parse_value(line) {
            Ok(v) => v,
            Err(e) => {
                bad(format!("not valid JSON: {e}"));
                continue;
            }
        };
        if !matches!(v, Value::Object(_)) {
            bad("not a JSON object".into());
            continue;
        }
        let Some(t) = as_u64(v.get("t")) else {
            bad("missing unsigned integer field \"t\"".into());
            continue;
        };
        if let Some(prev) = last_t {
            if t < prev {
                bad(format!("time went backwards: {t} after {prev}"));
            }
        }
        last_t = Some(t);
        let Some(ev) = as_str(v.get("ev")) else {
            bad("missing string field \"ev\"".into());
            continue;
        };
        let Some(required) = required_fields(ev) else {
            bad(format!("unknown event {ev:?}"));
            continue;
        };
        for field in required {
            if as_u64(v.get(field)).is_none() {
                bad(format!("{ev:?} missing unsigned integer field {field:?}"));
            }
        }
        if matches!(ev, "blocked" | "resumed") {
            match as_str(v.get("cause")) {
                Some(cause) => match cause_fields(cause) {
                    Some(extra) => {
                        for field in extra {
                            if as_u64(v.get(field)).is_none() {
                                bad(format!(
                                    "cause {cause:?} missing unsigned integer field {field:?}"
                                ));
                            }
                        }
                    }
                    None => bad(format!("unknown cause {cause:?}")),
                },
                None => bad(format!("{ev:?} missing string field \"cause\"")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::engine::HostId;
    use wormcast_sim::trace::TraceEvent;
    use wormcast_sim::worm::WormId;

    #[test]
    fn real_trace_validates_clean() {
        let mut tr = Trace::default();
        tr.push(5, TraceEvent::WormInjected {
            worm: WormId(3),
            host: HostId(1),
        });
        tr.push(9, TraceEvent::WormReceived {
            worm: WormId(3),
            host: HostId(2),
        });
        let jsonl = tr.to_jsonl();
        assert_eq!(validate_jsonl(&jsonl), vec![]);
    }

    #[test]
    fn rejects_garbage_and_schema_holes() {
        let bad = "\
{\"t\":1,\"ev\":\"worm-injected\",\"worm\":0,\"host\":0}
not json at all
{\"t\":2,\"ev\":\"no-such-event\"}
{\"t\":1,\"ev\":\"stop\",\"ch\":4,\"lane\":0}
{\"t\":3,\"ev\":\"blocked\",\"worm\":1,\"cause\":\"stop\"}
{\"t\":4,\"ev\":\"delivered\",\"msg\":2}
";
        let violations = validate_jsonl(bad);
        let lines: Vec<usize> = violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
        assert!(violations[2].reason.contains("backwards"));
        assert!(violations[3].reason.contains("ch"));
        assert!(violations[4].reason.contains("host"));
    }
}
