//! JSONL trace output for experiment runs.
//!
//! The simulator's [`Trace`] already knows how to render itself as JSON
//! Lines ([`Trace::to_jsonl`]); this module adds the file plumbing the
//! bench targets and the CI smoke job need — write a run's trace to disk,
//! validate that a JSONL stream conforms to the event schema (DESIGN.md
//! §3.2), and expand a span-batched trace back to the canonical per-byte
//! stream ([`expand_spans`]).

use serde_json::Value;
use std::io::Write;
use std::path::Path;
use wormcast_sim::trace::Trace;

/// Write a trace to `path` as JSON Lines, one event per line, sorted by
/// `(time, rendered line)` — the deterministic order [`Trace::to_jsonl`]
/// guarantees. Streams through [`Trace::write_jsonl`], so the trace is
/// never materialized as one giant `String`.
pub fn write_jsonl(trace: &Trace, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    trace.write_jsonl(&mut f)?;
    f.flush()
}

/// Deterministically reconstruct the canonical per-byte JSONL from a
/// span-level trace.
///
/// The canonical schema has no per-data-byte events — the thirteen
/// lifecycle events fire at the same per-byte-exact times in both engine
/// modes (see the determinism notes in `wormcast_sim::trace`) — so a
/// span-batched trace is exactly the per-byte trace plus interleaved
/// `span-*` engine events, and expansion is pure erasure of those lines.
/// Relative order of the surviving lines is untouched; [`Trace::to_jsonl`]
/// already emitted them in the canonical `(t, line)` sort, so for every
/// seed and configuration `expand_spans(trace(SpanBatched))` is
/// byte-identical to `trace(PerByte)` (pinned by the differential tests
/// in `tests/span_equivalence.rs` and `tests/shard_equivalence.rs`).
pub fn expand_spans(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        if !is_span_line(line) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// True when a rendered JSONL line is a span-level engine event. The
/// renderer's field order is fixed (`t` then `ev`), so a cheap substring
/// probe is exact — but fall back to a real parse for foreign-produced
/// lines that may order fields differently.
fn is_span_line(line: &str) -> bool {
    if line.contains("\"ev\":\"span-") {
        return true;
    }
    if !line.contains("span-") {
        return false;
    }
    matches!(
        serde_json::parse_value(line),
        Ok(v) if as_str(v.get("ev")).is_some_and(|e| e.starts_with("span-"))
    )
}

/// A schema violation found by [`validate_jsonl`]: line number (1-based)
/// and what was wrong with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaViolation {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Required integer fields per event name, beyond the universal `t`.
fn required_fields(ev: &str) -> Option<&'static [&'static str]> {
    Some(match ev {
        "worm-injected" | "worm-received" | "worm-refused" | "worm-corrupt"
        | "worm-flushed" => &["worm", "host"],
        "route-consumed" => &["worm", "switch", "out"],
        "blocked" | "resumed" => &["worm"],
        "fragment-parked" | "fragment-resumed" => &["worm", "host", "body_got"],
        "delivered" => &["msg", "host"],
        "stop" | "go" | "span-nack" | "span-credit" => &["ch", "lane"],
        "span-emitted" | "span-delivered" => &["worm", "ch", "lane", "len"],
        "span-truncated" => &["worm", "ch", "lane", "revoked"],
        _ => return None,
    })
}

/// Fields the `cause` discriminant adds to `blocked`/`resumed` events.
fn cause_fields(cause: &str) -> Option<&'static [&'static str]> {
    Some(match cause {
        "stop" => &["ch"],
        "output-busy" | "branch-wait" => &["switch", "out"],
        _ => return None,
    })
}

fn as_u64(v: Option<&Value>) -> Option<u64> {
    match v {
        Some(&Value::U64(x)) => Some(x),
        _ => None,
    }
}

fn as_str(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Check every line of a JSONL stream against the trace event schema:
/// valid JSON object, numeric `t`, known `ev`, the event's required
/// fields present as unsigned integers, non-decreasing `t`, and a valid
/// `cause` on blocked/resumed lines. Returns all violations (empty =
/// conformant).
pub fn validate_jsonl(jsonl: &str) -> Vec<SchemaViolation> {
    let mut out = Vec::new();
    let mut last_t: Option<u64> = None;
    for (ix, line) in jsonl.lines().enumerate() {
        let lineno = ix + 1;
        let mut bad = |reason: String| {
            out.push(SchemaViolation {
                line: lineno,
                reason,
            })
        };
        let v: Value = match serde_json::parse_value(line) {
            Ok(v) => v,
            Err(e) => {
                bad(format!("not valid JSON: {e}"));
                continue;
            }
        };
        if !matches!(v, Value::Object(_)) {
            bad("not a JSON object".into());
            continue;
        }
        let Some(t) = as_u64(v.get("t")) else {
            bad("missing unsigned integer field \"t\"".into());
            continue;
        };
        if let Some(prev) = last_t {
            if t < prev {
                bad(format!("time went backwards: {t} after {prev}"));
            }
        }
        last_t = Some(t);
        let Some(ev) = as_str(v.get("ev")) else {
            bad("missing string field \"ev\"".into());
            continue;
        };
        let Some(required) = required_fields(ev) else {
            bad(format!("unknown event {ev:?}"));
            continue;
        };
        for field in required {
            if as_u64(v.get(field)).is_none() {
                bad(format!("{ev:?} missing unsigned integer field {field:?}"));
            }
        }
        if matches!(ev, "blocked" | "resumed") {
            match as_str(v.get("cause")) {
                Some(cause) => match cause_fields(cause) {
                    Some(extra) => {
                        for field in extra {
                            if as_u64(v.get(field)).is_none() {
                                bad(format!(
                                    "cause {cause:?} missing unsigned integer field {field:?}"
                                ));
                            }
                        }
                    }
                    None => bad(format!("unknown cause {cause:?}")),
                },
                None => bad(format!("{ev:?} missing string field \"cause\"")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::engine::HostId;
    use wormcast_sim::trace::TraceEvent;
    

    #[test]
    fn real_trace_validates_clean() {
        let mut tr = Trace::default();
        tr.push(5, TraceEvent::WormInjected {
            worm: 3,
            host: HostId(1),
        });
        tr.push(9, TraceEvent::WormReceived {
            worm: 3,
            host: HostId(2),
        });
        let jsonl = tr.to_jsonl();
        assert_eq!(validate_jsonl(&jsonl), vec![]);
    }

    #[test]
    fn rejects_garbage_and_schema_holes() {
        let bad = "\
{\"t\":1,\"ev\":\"worm-injected\",\"worm\":0,\"host\":0}
not json at all
{\"t\":2,\"ev\":\"no-such-event\"}
{\"t\":1,\"ev\":\"stop\",\"ch\":4,\"lane\":0}
{\"t\":3,\"ev\":\"blocked\",\"worm\":1,\"cause\":\"stop\"}
{\"t\":4,\"ev\":\"delivered\",\"msg\":2}
";
        let violations = validate_jsonl(bad);
        let lines: Vec<usize> = violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
        assert!(violations[2].reason.contains("backwards"));
        assert!(violations[3].reason.contains("ch"));
        assert!(violations[4].reason.contains("host"));
    }

    #[test]
    fn span_events_validate_and_expand_away() {
        use wormcast_sim::link::ChanId;
        let mut tr = Trace::default();
        tr.push(5, TraceEvent::WormInjected {
            worm: 3,
            host: HostId(1),
        });
        tr.push(6, TraceEvent::SpanEmitted {
            worm: 3,
            ch: ChanId(2),
            lane: 0,
            len: 16,
        });
        tr.push(7, TraceEvent::SpanTruncated {
            worm: 3,
            ch: ChanId(2),
            lane: 0,
            revoked: 4,
        });
        tr.push(8, TraceEvent::SpanDelivered {
            worm: 3,
            ch: ChanId(2),
            lane: 0,
            len: 12,
        });
        tr.push(8, TraceEvent::SpanNack { ch: ChanId(2), lane: 0 });
        tr.push(9, TraceEvent::SpanCredit { ch: ChanId(2), lane: 0 });
        tr.push(9, TraceEvent::WormReceived {
            worm: 3,
            host: HostId(2),
        });
        let jsonl = tr.to_jsonl();
        assert_eq!(validate_jsonl(&jsonl), vec![]);
        let expanded = expand_spans(&jsonl);
        assert_eq!(validate_jsonl(&expanded), vec![]);
        assert_eq!(expanded.lines().count(), 2);
        assert!(!expanded.contains("span-"));
        // A trace with no span events expands to itself.
        assert_eq!(expand_spans(&expanded), expanded);
    }

    #[test]
    fn expander_keeps_foreign_field_order() {
        // Hand-written lines that put `ev` later than the renderer does
        // must still be classified correctly.
        let jsonl = "\
{\"t\":1,\"ev\":\"worm-injected\",\"worm\":0,\"host\":0}
{\"worm\":0,\"t\":2,\"ev\":\"span-emitted\",\"ch\":1,\"lane\":0,\"len\":8}
";
        let expanded = expand_spans(jsonl);
        assert_eq!(expanded.lines().count(), 1);
        assert!(expanded.contains("worm-injected"));
    }
}
