//! Figure 11: average delay vs load for varying multicast proportions on
//! the 24-node bidirectional shufflenet.
//!
//! Paper parameters: four multicast groups of six members, link
//! propagation delay 1000 byte-times, tree vs Hamiltonian circuit, with
//! the multicast generation probability swept over {0.05, 0.10, 0.15,
//! 0.20} and offered load over ≈ 0.03–0.07.
//!
//! Expected shape (paper): the tree sits below the Hamiltonian at every
//! proportion, and delay grows with both load and proportion (each
//! multicast worm is retransmitted several times, so raising the
//! proportion raises the actual carried traffic).

use crate::runner::{run_parallel, RunReport, SimSetup};
use crate::schemes::Scheme;
use wormcast_core::HcConfig;
use wormcast_stats::Series;
use wormcast_topo::shufflenet::shufflenet24;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

/// The paper's propagation delay for this experiment (byte-times).
pub const LINK_DELAY: u64 = 1000;

#[derive(Clone, Copy, Debug)]
pub struct Fig11Config {
    pub loads: &'static [f64],
    pub proportions: &'static [f64],
    pub warmup: u64,
    pub measure: u64,
    pub drain: u64,
    pub seed: u64,
}

impl Fig11Config {
    pub fn full() -> Self {
        Fig11Config {
            loads: &[0.030, 0.035, 0.040, 0.045, 0.050, 0.055, 0.060, 0.065, 0.070],
            proportions: &[0.05, 0.10, 0.15, 0.20],
            warmup: 200_000,
            measure: 900_000,
            drain: 200_000,
            seed: 0xF1611,
        }
    }

    pub fn quick() -> Self {
        Fig11Config {
            loads: &[0.03, 0.05, 0.07],
            proportions: &[0.05, 0.20],
            warmup: 60_000,
            measure: 250_000,
            drain: 120_000,
            seed: 0xF1611,
        }
    }
}

/// The two schemes of Figure 11 (both store-and-forward, as in the paper's
/// shufflenet runs). The tree is the same origin-rooted topology-aware
/// configuration as Figure 10 (see `fig10::figure_tree_scheme`).
pub fn schemes() -> Vec<Scheme> {
    vec![
        crate::fig10::figure_tree_scheme(),
        Scheme::Hc(HcConfig::store_and_forward()),
    ]
}

fn setup(scheme: Scheme, load: f64, proportion: f64, cfg: &Fig11Config) -> SimSetup {
    let mut grng = host_stream(cfg.seed, 0x6111);
    let groups = GroupSet::random(24, 4, 6, &mut grng);
    let workload = PaperWorkload {
        offered_load: load,
        multicast_prob: proportion,
        lengths: LengthDist::Geometric { mean: 400 },
        stop_at: None,
    };
    SimSetup::builder(shufflenet24(LINK_DELAY), groups, scheme, workload)
        .seed(cfg.seed)
        .windows(cfg.warmup, cfg.measure, cfg.drain)
        .build()
        .expect("figure 11 parameters are valid")
}

/// Run the figure: one series per (proportion, scheme) pair.
pub fn run_figure(cfg: &Fig11Config) -> Vec<(Series, Vec<RunReport>)> {
    let mut out = Vec::new();
    for &prop in cfg.proportions {
        for scheme in schemes() {
            let setups: Vec<SimSetup> = cfg
                .loads
                .iter()
                .map(|&load| setup(scheme, load, prop, cfg))
                .collect();
            let results = run_parallel(setups);
            let label = match scheme {
                Scheme::Tree(..) => format!("prop={prop:.2},tree"),
                _ => format!("prop={prop:.2},hc"),
            };
            let mut series = Series::new(label);
            for (&load, r) in cfg.loads.iter().zip(&results) {
                series.push(load, r.multicast.per_delivery.mean, r.multicast.per_delivery.ci95());
            }
            out.push((series, results));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shufflenet_point_delivers_with_long_links() {
        let cfg = Fig11Config {
            loads: &[0.03],
            proportions: &[0.10],
            warmup: 30_000,
            measure: 120_000,
            drain: 120_000,
            seed: 3,
        };
        let s = setup(crate::fig10::figure_tree_scheme(), 0.03, 0.10, &cfg);
        let r = crate::runner::run(&s);
        assert!(r.multicast.deliveries > 0);
        // With 1000-byte-time links every adapter hop costs >= 2000
        // byte-times of propagation alone; latencies must reflect that.
        assert!(
            r.multicast.per_delivery.mean > 2000.0,
            "latency {} ignores propagation delay",
            r.multicast.per_delivery.mean
        );
    }
}
