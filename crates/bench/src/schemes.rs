//! Multicast scheme selection and per-host protocol installation.

use std::collections::HashMap;
use std::sync::Arc;
use wormcast_core::credit::{CreditConfig, CreditProtocol};
use wormcast_core::{
    HcConfig, HcProtocol, Membership, TreeConfig, TreeProtocol, UnicastRepeatConfig,
    UnicastRepeatProtocol,
};
use wormcast_sim::engine::HostId;
use wormcast_sim::Network;
use wormcast_topo::hostgraph::HostGraph;
use wormcast_topo::tree::{MulticastTree, TreeShape};

/// Which multicast scheme the hosts run.
#[derive(Clone, Copy, Debug)]
pub enum Scheme {
    /// Hamiltonian circuit (Section 5).
    Hc(HcConfig),
    /// Rooted tree (Section 6) with the given construction shape.
    Tree(TreeConfig, TreeShape),
    /// Repeated unicast from the source (stock Myrinet baseline).
    Repeat(UnicastRepeatConfig),
    /// Centralized credit manager baseline (Verstoep/Langendoen/Bal, IR-399).
    Credit {
        manager: HostId,
        initial_credits: u64,
        token_period: u64,
        shape: TreeShape,
    },
}

impl Scheme {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Scheme::Hc(c) if c.cut_through => "hc-cut-through".into(),
            Scheme::Hc(_) => "hc-store-fwd".into(),
            Scheme::Tree(c, shape) => {
                let mode = match c.mode {
                    wormcast_core::TreeMode::RootSerialized => "tree",
                    wormcast_core::TreeMode::BroadcastFromOrigin => "tree-bcast",
                };
                let ct = if c.cut_through_first { "-ct" } else { "" };
                format!("{mode}{ct}-{shape:?}").to_lowercase()
            }
            Scheme::Repeat(c) if c.broadcast_filter => "bcast-filter".into(),
            Scheme::Repeat(_) => "repeat-unicast".into(),
            Scheme::Credit { .. } => "credit".into(),
        }
    }

    /// Build the per-group multicast trees this scheme needs.
    pub fn build_trees(
        &self,
        membership: &Membership,
        graph: &HostGraph,
    ) -> Arc<HashMap<u8, MulticastTree>> {
        let shape = match self {
            Scheme::Tree(_, shape) => *shape,
            Scheme::Credit { shape, .. } => *shape,
            _ => TreeShape::BinaryHeap,
        };
        let mut trees = HashMap::new();
        for g in membership.group_ids() {
            trees.insert(
                g,
                MulticastTree::build(membership.members(g), shape, Some(graph)),
            );
        }
        Arc::new(trees)
    }

    /// Install one protocol instance per host.
    pub fn install(&self, net: &mut Network, membership: &Arc<Membership>, graph: &HostGraph) {
        let n = net.num_hosts() as u32;
        match *self {
            Scheme::Hc(cfg) => {
                for h in 0..n {
                    let p = HcProtocol::new(HostId(h), cfg, Arc::clone(membership));
                    net.set_protocol(HostId(h), Box::new(p));
                }
            }
            Scheme::Tree(cfg, _) => {
                let trees = self.build_trees(membership, graph);
                for h in 0..n {
                    let p = TreeProtocol::new(HostId(h), cfg, Arc::clone(&trees));
                    net.set_protocol(HostId(h), Box::new(p));
                }
            }
            Scheme::Repeat(mut cfg) => {
                cfg.num_hosts = n;
                for h in 0..n {
                    let p = UnicastRepeatProtocol::new(HostId(h), cfg, Arc::clone(membership));
                    net.set_protocol(HostId(h), Box::new(p));
                }
            }
            Scheme::Credit {
                manager,
                initial_credits,
                token_period,
                shape: _,
            } => {
                let trees = self.build_trees(membership, graph);
                let cfg = CreditConfig {
                    manager,
                    num_hosts: n,
                    initial_credits,
                    token_period,
                };
                for h in 0..n {
                    let p =
                        CreditProtocol::new(HostId(h), cfg, Arc::clone(membership), Arc::clone(&trees));
                    net.set_protocol(HostId(h), Box::new(p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_for_figure10_schemes() {
        let a = Scheme::Hc(HcConfig::store_and_forward()).label();
        let b = Scheme::Hc(HcConfig::cut_through()).label();
        let c = Scheme::Tree(TreeConfig::store_and_forward(), TreeShape::BinaryHeap).label();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
