//! Generic simulation assembly and execution for the experiments.

use crate::schemes::Scheme;
use std::sync::Arc;
use wormcast_core::Membership;
use wormcast_sim::network::{NetStats, NetworkConfig, SimMode};
use wormcast_sim::time::SimTime;
use wormcast_sim::Network;
use wormcast_stats::latency::{latencies, Kind, LatencyReport};
use wormcast_topo::hostgraph::HostGraph;
use wormcast_topo::{Topology, UpDown};
use wormcast_traffic::workload::{install_paper_sources, PaperWorkload};
use wormcast_traffic::GroupSet;

/// One experiment point: topology + groups + scheme + workload + windows.
pub struct SimSetup {
    pub topo: Topology,
    pub updown_root: usize,
    /// Restrict all routes to the spanning tree (Section 3 ablation).
    pub restrict_to_tree: bool,
    pub groups: GroupSet,
    pub scheme: Scheme,
    pub workload: PaperWorkload,
    /// Engine transmission mode (never changes results, only event counts).
    pub mode: SimMode,
    pub seed: u64,
    /// Messages created before this time are excluded from statistics.
    pub warmup: SimTime,
    /// Message generation stops here (also the statistics window end).
    pub generate_until: SimTime,
    /// The simulation then drains until this deadline.
    pub drain_until: SimTime,
}

impl SimSetup {
    /// Standard measurement windows around a target duration.
    pub fn windows(mut self, warmup: SimTime, measure: SimTime, drain: SimTime) -> Self {
        self.warmup = warmup;
        self.generate_until = warmup + measure;
        self.drain_until = warmup + measure + drain;
        self
    }
}

/// Everything an experiment wants to know after a run.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub multicast: LatencyReport,
    pub unicast: LatencyReport,
    /// Measured mean output-link utilization per host (sanity check against
    /// the configured offered load; higher, because multicast copies are
    /// retransmitted several times — the paper notes ~46% of transmitted
    /// worms were multicast at a 10% generation probability).
    pub host_tx_utilization: f64,
    pub stats: NetStats,
    /// Fraction of expected multicast deliveries that completed by the end
    /// of the drain window (1.0 below saturation).
    pub delivery_ratio: f64,
}

/// Build the network for a setup (shared with tests and examples).
pub fn build_network(setup: &SimSetup) -> Network {
    let ud = UpDown::compute(&setup.topo, setup.updown_root);
    let routes = ud.route_table(&setup.topo, setup.restrict_to_tree);
    let graph = HostGraph::from_routes(&routes);
    let cfg = NetworkConfig {
        seed: setup.seed,
        mode: setup.mode,
        ..NetworkConfig::default()
    };
    let mut net = Network::build(&setup.topo.to_fabric_spec(), routes, cfg);
    let membership = membership_of(&setup.groups);
    setup.scheme.install(&mut net, &membership, &graph);
    let mut workload = setup.workload;
    workload.stop_at = Some(setup.generate_until);
    install_paper_sources(&mut net, workload, &Arc::new(setup.groups.clone()), setup.seed);
    net
}

/// Convert a traffic-crate group set into the protocols' membership table.
pub fn membership_of(groups: &GroupSet) -> Arc<Membership> {
    Membership::from_groups(
        (0..groups.num_groups() as u8).map(|g| (g, groups.members(g).to_vec())),
    )
}

/// Run one experiment point to completion and extract statistics.
pub fn run(setup: &SimSetup) -> RunResult {
    let mut net = build_network(setup);
    let out = net.run_until(setup.drain_until);
    debug_assert!(out.deadlock.is_none(), "unexpected deadlock: {out:?}");
    net.audit().expect("conservation invariant");
    let membership = membership_of(&setup.groups);
    let multicast = latencies(
        &net.msgs,
        Kind::Multicast,
        setup.warmup,
        setup.generate_until,
        None,
    );
    let unicast = latencies(
        &net.msgs,
        Kind::Unicast,
        setup.warmup,
        setup.generate_until,
        None,
    );
    // Delivery ratio: observed deliveries / expected deliveries for
    // multicast messages in the window (expected = members - origin-member).
    let mut expected_total = 0usize;
    for rec in &net.msgs.created {
        if rec.created < setup.warmup || rec.created >= setup.generate_until {
            continue;
        }
        if let wormcast_sim::protocol::Destination::Multicast(g) = rec.dest {
            expected_total += membership.expected_deliveries(g, rec.origin);
        }
    }
    let delivery_ratio = if expected_total == 0 {
        1.0
    } else {
        multicast.deliveries as f64 / expected_total as f64
    };
    let elapsed = setup.drain_until;
    RunResult {
        multicast,
        unicast,
        host_tx_utilization: net.mean_host_tx_utilization(elapsed),
        stats: net.stats.clone(),
        delivery_ratio,
    }
}

/// Run several setups concurrently, preserving order. At most
/// `available_parallelism()` worker threads pull setups from a shared
/// index, so a large sweep never oversubscribes the machine.
pub fn run_parallel(setups: Vec<SimSetup>) -> Vec<RunResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(setups.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunResult>>> =
        setups.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(s) = setups.get(i) else { break };
                *results[i].lock().expect("no poisoned slot") = Some(run(s));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled")
        })
        .collect()
}
