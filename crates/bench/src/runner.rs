//! Generic simulation assembly and execution for the experiments.

use crate::schemes::Scheme;
use std::sync::Arc;
use wormcast_core::Membership;
use wormcast_sim::config::ConfigError;
use wormcast_sim::fault::FaultConfig;
use wormcast_sim::link::LaneArbiterKind;
use wormcast_sim::network::{NetStats, NetworkConfig, RunOutcome, SimMode};
use wormcast_sim::time::SimTime;
use wormcast_sim::shard::ShardedNetwork;
use wormcast_sim::trace::{Trace, TraceConfig};
use wormcast_sim::Network;
use wormcast_stats::latency::{latencies, Kind, LatencyReport};
use wormcast_topo::hostgraph::HostGraph;
use wormcast_topo::{ShardPlan, Topology, UpDown};
use wormcast_traffic::workload::{install_paper_sources_for, PaperWorkload};
use wormcast_traffic::GroupSet;

/// One experiment point: topology + groups + scheme + workload + windows.
/// Construct through [`SimSetup::builder`], which validates the whole
/// configuration.
pub struct SimSetup {
    pub topo: Topology,
    pub updown_root: usize,
    /// Restrict all routes to the spanning tree (Section 3 ablation).
    pub restrict_to_tree: bool,
    pub groups: GroupSet,
    pub scheme: Scheme,
    pub workload: PaperWorkload,
    /// Engine transmission mode (never changes results, only event counts).
    pub mode: SimMode,
    pub seed: u64,
    /// Messages created before this time are excluded from statistics.
    pub warmup: SimTime,
    /// Message generation stops here (also the statistics window end).
    pub generate_until: SimTime,
    /// The simulation then drains until this deadline.
    pub drain_until: SimTime,
    /// Trace sink for the run (off by default; `Memory` lets
    /// [`run_traced`] return the full lifecycle log).
    pub trace: TraceConfig,
    /// Fault injection, folded into the network configuration.
    pub faults: FaultConfig,
    /// Shards the single simulation runs on (1 = sequential engine). A
    /// sharded run produces byte-identical statistics and traces;
    /// configurations the parallel engine cannot honor (fault injection,
    /// switch-level multicast) fall back to the sequential engine.
    pub shards: u32,
    /// Explicit switch→shard plan; `None` derives a balanced contiguous
    /// plan from the up/down root ([`ShardPlan::bfs_contiguous`]).
    pub shard_plan: Option<ShardPlan>,
    /// Lanes per switch-to-switch link (1 = the paper's single-lane links).
    pub lanes: u8,
    /// Lane-selection policy for multi-lane links.
    pub arbiter: LaneArbiterKind,
}

impl SimSetup {
    /// Start building an experiment point from its four mandatory parts.
    pub fn builder(
        topo: Topology,
        groups: GroupSet,
        scheme: Scheme,
        workload: PaperWorkload,
    ) -> SimSetupBuilder {
        SimSetupBuilder {
            setup: SimSetup {
                topo,
                updown_root: 0,
                restrict_to_tree: false,
                groups,
                scheme,
                workload,
                mode: SimMode::SpanBatched,
                seed: 0,
                warmup: 0,
                generate_until: 0,
                drain_until: 0,
                trace: TraceConfig::Off,
                faults: FaultConfig::default(),
                shards: 1,
                shard_plan: None,
                lanes: 1,
                arbiter: LaneArbiterKind::default(),
            },
        }
    }

    /// Standard measurement windows around a target duration.
    pub fn windows(mut self, warmup: SimTime, measure: SimTime, drain: SimTime) -> Self {
        self.warmup = warmup;
        self.generate_until = warmup + measure;
        self.drain_until = warmup + measure + drain;
        self
    }

    /// The validated [`NetworkConfig`] this setup runs with.
    fn network_config(&self) -> Result<NetworkConfig, ConfigError> {
        NetworkConfig::builder()
            .seed(self.seed)
            .mode(self.mode)
            .trace(self.trace)
            .faults(self.faults)
            .lanes(self.lanes)
            .arbiter(self.arbiter)
            .build()
    }
}

/// Builder for [`SimSetup`]; validates windows, workload rates and the
/// derived network configuration in [`build`](SimSetupBuilder::build).
pub struct SimSetupBuilder {
    setup: SimSetup,
}

impl SimSetupBuilder {
    /// Root switch of the up/down spanning tree.
    pub fn updown_root(mut self, root: usize) -> Self {
        self.setup.updown_root = root;
        self
    }

    /// Restrict all routes to the spanning tree (Section 3 ablation).
    pub fn restrict_to_tree(mut self, restrict: bool) -> Self {
        self.setup.restrict_to_tree = restrict;
        self
    }

    /// Engine transmission mode.
    pub fn mode(mut self, mode: SimMode) -> Self {
        self.setup.mode = mode;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.setup.seed = seed;
        self
    }

    /// Standard measurement windows around a target duration.
    pub fn windows(mut self, warmup: SimTime, measure: SimTime, drain: SimTime) -> Self {
        self.setup = self.setup.windows(warmup, measure, drain);
        self
    }

    /// Trace sink for the run.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.setup.trace = trace;
        self
    }

    /// Fault injection for the run.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.setup.faults = faults;
        self
    }

    /// Run the single simulation on `n` parallel shards (1 = sequential).
    /// Results are byte-identical to the sequential engine; configurations
    /// the parallel engine cannot honor fall back to sequential.
    pub fn shards(mut self, n: u32) -> Self {
        self.setup.shards = n;
        self
    }

    /// Explicit switch→shard plan (e.g. [`ShardPlan::torus_grid`]
    /// quadrants, or [`ShardPlan::switch_hash`] for adversarial tests).
    /// Implies the plan's shard count.
    pub fn shard_plan(mut self, plan: ShardPlan) -> Self {
        self.setup.shards = plan.num_shards();
        self.setup.shard_plan = Some(plan);
        self
    }

    /// Lanes per switch-to-switch link (virtual channels); 1 — the
    /// default — reproduces the paper's single-lane Myrinet byte-for-byte.
    pub fn lanes(mut self, lanes: u8) -> Self {
        self.setup.lanes = lanes;
        self
    }

    /// Lane-selection policy for multi-lane links (ignored with one lane).
    pub fn arbiter(mut self, arbiter: LaneArbiterKind) -> Self {
        self.setup.arbiter = arbiter;
        self
    }

    /// Validate and produce the setup.
    pub fn build(self) -> Result<SimSetup, ConfigError> {
        let s = self.setup;
        if s.updown_root >= s.topo.num_switches() {
            return Err(ConfigError::Invalid {
                field: "updown_root",
                reason: format!(
                    "root {} out of range for {} switches",
                    s.updown_root,
                    s.topo.num_switches()
                ),
            });
        }
        if !(s.warmup <= s.generate_until && s.generate_until <= s.drain_until) {
            return Err(ConfigError::Invalid {
                field: "windows",
                reason: format!(
                    "must be ordered warmup <= generate_until <= drain_until, got {} / {} / {}",
                    s.warmup, s.generate_until, s.drain_until
                ),
            });
        }
        if !(0.0..=1.0).contains(&s.workload.offered_load) {
            return Err(ConfigError::OutOfRange {
                field: "offered_load",
                value: s.workload.offered_load,
                min: 0.0,
                max: 1.0,
            });
        }
        if !(0.0..=1.0).contains(&s.workload.multicast_prob) {
            return Err(ConfigError::OutOfRange {
                field: "multicast_prob",
                value: s.workload.multicast_prob,
                min: 0.0,
                max: 1.0,
            });
        }
        if s.shards == 0 {
            return Err(ConfigError::Invalid {
                field: "shards",
                reason: "shard count must be at least 1".into(),
            });
        }
        if s.shards > 1 {
            let plan = resolve_plan(&s).map_err(|reason| ConfigError::Invalid {
                field: "shards",
                reason,
            })?;
            plan.validate(&s.topo).map_err(|reason| ConfigError::Invalid {
                field: "shard_plan",
                reason,
            })?;
        }
        // Surface network-level violations (fault probability, trace ring
        // capacity) now rather than as a panic inside `build_network`.
        s.network_config()?;
        Ok(s)
    }
}

/// The switch→shard plan a setup runs with: the explicit plan if set,
/// otherwise a balanced contiguous plan rooted at the up/down root.
fn resolve_plan(setup: &SimSetup) -> Result<ShardPlan, String> {
    match &setup.shard_plan {
        Some(p) => Ok(p.clone()),
        None => ShardPlan::bfs_contiguous(&setup.topo, setup.updown_root, setup.shards),
    }
}

/// Everything an experiment wants to know after a run: the simulator's own
/// [`RunOutcome`] plus the derived latency and delivery figures.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended (end time, drained flag, deadlock forensics,
    /// final network counters).
    pub outcome: RunOutcome,
    pub multicast: LatencyReport,
    pub unicast: LatencyReport,
    /// Measured mean output-link utilization per host (sanity check against
    /// the configured offered load; higher, because multicast copies are
    /// retransmitted several times — the paper notes ~46% of transmitted
    /// worms were multicast at a 10% generation probability).
    pub host_tx_utilization: f64,
    /// Fraction of expected multicast deliveries that completed by the end
    /// of the drain window (1.0 below saturation).
    pub delivery_ratio: f64,
    /// Trace events discarded by ring-sink overflow (0 for the other
    /// sinks; summed across shards). A nonzero count means the returned
    /// trace is a truncated suffix of the run, not the whole timeline.
    pub trace_dropped: u64,
}

impl RunReport {
    /// The network counters at the end of the run.
    pub fn stats(&self) -> &NetStats {
        &self.outcome.stats
    }
}

/// Build the network for a setup (shared with tests and examples).
pub fn build_network(setup: &SimSetup) -> Network {
    build_network_owned(setup, |_| true)
}

/// Build the network with traffic sources only on hosts the caller `owns`.
/// Everything else — fabric, routes, protocols, seeds — is identical to
/// [`build_network`], including the per-host source start times (the
/// stagger stream is drawn for skipped hosts too), so N such builds with a
/// partition of the host set behave exactly like one whole build.
fn build_network_owned(
    setup: &SimSetup,
    owned: impl Fn(wormcast_sim::engine::HostId) -> bool,
) -> Network {
    let ud = UpDown::compute(&setup.topo, setup.updown_root);
    let routes = ud.route_table(&setup.topo, setup.restrict_to_tree);
    let graph = HostGraph::from_routes(&routes);
    let cfg = setup
        .network_config()
        .expect("SimSetup::builder validated this configuration");
    let mut net = Network::build(&setup.topo.to_fabric_spec(), routes, cfg);
    let membership = membership_of(&setup.groups);
    setup.scheme.install(&mut net, &membership, &graph);
    let mut workload = setup.workload;
    workload.stop_at = Some(setup.generate_until);
    install_paper_sources_for(
        &mut net,
        workload,
        &Arc::new(setup.groups.clone()),
        setup.seed,
        owned,
    );
    net
}

/// Build the sharded engine for a setup: one full [`Network`] per shard
/// (sources filtered to owned hosts), wired through the setup's
/// [`ShardPlan`]. Errors when the configuration is not shardable (fault
/// injection, switch-level multicast, zero-delay cut, > 64 shards).
pub fn build_sharded(setup: &SimSetup) -> Result<ShardedNetwork, String> {
    let plan = resolve_plan(setup)?;
    plan.validate(&setup.topo)?;
    let host_shard = plan.host_shard(&setup.topo);
    let nets = (0..plan.num_shards())
        .map(|s| build_network_owned(setup, |h| host_shard[h.0 as usize] == s))
        .collect();
    ShardedNetwork::new(nets, plan.switch_shard().to_vec()).map_err(|e| e.to_string())
}

/// Convert a traffic-crate group set into the protocols' membership table.
pub fn membership_of(groups: &GroupSet) -> Arc<Membership> {
    Membership::from_groups(
        (0..groups.num_groups() as u8).map(|g| (g, groups.members(g).to_vec())),
    )
}

/// Run one experiment point to completion and extract statistics.
pub fn run(setup: &SimSetup) -> RunReport {
    run_traced(setup).0
}

/// Like [`run`], but also hand back the worm-lifecycle [`Trace`] (empty
/// unless the setup selected a sink). The bench JSONL writer and the
/// trace-equivalence tests use this.
pub fn run_traced(setup: &SimSetup) -> (RunReport, Trace) {
    if setup.shards > 1 {
        // Sharded path (tracing shards cleanly: each lifecycle event is
        // recorded by exactly one owning shard and the logs merge into
        // the canonical stream). A build error means the configuration
        // is not shardable (e.g. fault injection) — fall through to
        // sequential.
        if let Ok(mut sharded) = build_sharded(setup) {
            let outcome = sharded.run_until(setup.drain_until);
            debug_assert!(
                outcome.deadlock.is_none(),
                "unexpected deadlock: {outcome:?}"
            );
            sharded.audit().expect("conservation invariant");
            let msgs = sharded.msgs();
            let util = sharded.mean_host_tx_utilization(setup.drain_until);
            let trace = sharded.trace();
            let report = make_report(setup, outcome, &msgs, util, trace.dropped());
            return (report, trace);
        }
    }
    let mut net = build_network(setup);
    let outcome = net.run_until(setup.drain_until);
    debug_assert!(
        outcome.deadlock.is_none(),
        "unexpected deadlock: {outcome:?}"
    );
    net.audit().expect("conservation invariant");
    let host_tx_utilization = net.mean_host_tx_utilization(setup.drain_until);
    let report = make_report(
        setup,
        outcome,
        &net.msgs,
        host_tx_utilization,
        net.trace.dropped(),
    );
    (report, net.trace)
}

/// Derive the experiment report from a finished run's outcome and message
/// log (shared by the sequential and sharded paths).
fn make_report(
    setup: &SimSetup,
    outcome: RunOutcome,
    msgs: &wormcast_sim::network::MessageLog,
    host_tx_utilization: f64,
    trace_dropped: u64,
) -> RunReport {
    let membership = membership_of(&setup.groups);
    let multicast = latencies(msgs, Kind::Multicast, setup.warmup, setup.generate_until, None);
    let unicast = latencies(msgs, Kind::Unicast, setup.warmup, setup.generate_until, None);
    // Delivery ratio: observed deliveries / expected deliveries for
    // multicast messages in the window (expected = members - origin-member).
    let mut expected_total = 0usize;
    for rec in &msgs.created {
        if rec.created < setup.warmup || rec.created >= setup.generate_until {
            continue;
        }
        if let wormcast_sim::protocol::Destination::Multicast(g) = rec.dest {
            expected_total += membership.expected_deliveries(g, rec.origin);
        }
    }
    let delivery_ratio = if expected_total == 0 {
        1.0
    } else {
        multicast.deliveries as f64 / expected_total as f64
    };
    RunReport {
        outcome,
        multicast,
        unicast,
        host_tx_utilization,
        delivery_ratio,
        trace_dropped,
    }
}

/// Run several setups concurrently, preserving order. Worker threads pull
/// setups from a shared index, so a large sweep never oversubscribes the
/// machine: each sharded setup occupies `shards` threads of its own, so
/// the worker count is `available_parallelism / max(shards)` — setups ×
/// shards stays within the machine's parallelism.
pub fn run_parallel(setups: Vec<SimSetup>) -> Vec<RunReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let max_shards = setups.iter().map(|s| s.shards.max(1)).max().unwrap_or(1) as usize;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .div_euclid(max_shards)
        .max(1)
        .min(setups.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunReport>>> =
        setups.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(s) = setups.get(i) else { break };
                *results[i].lock().expect("no poisoned slot") = Some(run(s));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled")
        })
        .collect()
}
