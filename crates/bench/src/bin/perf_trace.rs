//! CI trace-perf smoke: traced runs must move at span-batched speed.
//!
//! Before span-native tracing, attaching a trace sink silently forced the
//! per-byte engine; tracing cost roughly the full span-batching speedup.
//! This bench pins the recovery at the Fig 10 operating point that
//! `results/BENCH_engine.json` uses (load 0.08, seed 0xF1610): for every
//! Figure 10 scheme it times the four corners of
//! {per-byte, span-batched} x {untraced, in-memory trace} and gates
//!
//! - traced span-batched at least `MIN_TRACED_SPEEDUP`x faster than
//!   traced per-byte (the fallback this PR removed), and
//! - the tracing overhead of span-batched runs at most
//!   `MAX_TRACE_OVERHEAD`x untraced span-batched.
//!
//! Both are same-machine wall-clock *ratios*, so they hold on slow
//! runners. On top sits the hardware-independent equivalence gate: the
//! span-level trace must validate against the JSONL schema and its
//! per-byte expansion must be byte-identical to the per-byte engine's
//! trace. Measurements land in `results/BENCH_trace.json`.

use serde::Serialize;
use std::time::Instant;
use wormcast_bench::fig10::{self, Fig10Config};
use wormcast_bench::runner::run_traced;
use wormcast_bench::schemes::Scheme;
use wormcast_bench::trace_io::{expand_spans, validate_jsonl};
use wormcast_sim::network::SimMode;
use wormcast_sim::trace::TraceConfig;

/// The BENCH_engine.json operating point: load 0.08, same windows and seed.
const LOAD: f64 = 0.08;
const CFG: Fig10Config = Fig10Config {
    loads: &[LOAD],
    warmup: 20_000,
    measure: 100_000,
    drain: 40_000,
    seed: 0xF1610,
};

const MIN_TRACED_SPEEDUP: f64 = 3.0;
const MAX_TRACE_OVERHEAD: f64 = 1.3;

#[derive(Serialize)]
struct TraceRow {
    scheme: String,
    per_byte_untraced_s: f64,
    per_byte_traced_s: f64,
    span_untraced_s: f64,
    span_traced_s: f64,
    /// Traced per-byte wall clock over traced span-batched: what removing
    /// the traced-run per-byte fallback buys.
    traced_speedup: f64,
    /// Traced span-batched over untraced span-batched: what tracing costs
    /// on the fast path.
    trace_overhead: f64,
    trace_lines: u64,
    span_lines: u64,
}

fn timed(
    scheme: Scheme,
    mode: SimMode,
    trace: TraceConfig,
) -> (f64, wormcast_sim::trace::Trace) {
    let mut setup = fig10::setup(scheme, LOAD, &CFG);
    setup.mode = mode;
    setup.trace = trace;
    let t0 = Instant::now();
    let (report, trace) = run_traced(&setup);
    let secs = t0.elapsed().as_secs_f64();
    assert!(report.outcome.deadlock.is_none(), "deadlock at smoke point");
    assert_eq!(report.trace_dropped, 0, "memory sink must not drop events");
    (secs, trace)
}

fn main() {
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let mut rows = Vec::new();
    let mut failed = false;
    for scheme in fig10::schemes() {
        let (pb_off, _) = timed(scheme.clone(), SimMode::PerByte, TraceConfig::Off);
        let (pb_mem, pb_trace) = timed(scheme.clone(), SimMode::PerByte, TraceConfig::Memory);
        let (sp_off, _) = timed(scheme.clone(), SimMode::SpanBatched, TraceConfig::Off);
        let (sp_mem, sp_trace) = timed(scheme.clone(), SimMode::SpanBatched, TraceConfig::Memory);

        // Hardware-independent gate first: span-native tracing is only
        // worth its speed if it is *lossless* — schema-valid, and
        // expanding the span-level stream reproduces the per-byte trace
        // byte for byte.
        let span_jsonl = sp_trace.to_jsonl();
        let violations = validate_jsonl(&span_jsonl);
        assert!(
            violations.is_empty(),
            "{scheme:?}: span trace schema violations: {violations:?}"
        );
        let per_byte_jsonl = pb_trace.to_jsonl();
        assert!(
            expand_spans(&span_jsonl) == per_byte_jsonl,
            "{scheme:?}: expanded span trace diverged from the per-byte trace"
        );

        let traced_speedup = pb_mem / sp_mem;
        let trace_overhead = sp_mem / sp_off;
        eprintln!(
            "perf-trace {scheme:?}: per-byte {pb_off:.3}s/{pb_mem:.3}s, \
             span {sp_off:.3}s/{sp_mem:.3}s (untraced/traced) — \
             traced speedup {traced_speedup:.2}x, trace overhead {trace_overhead:.2}x"
        );
        if traced_speedup < MIN_TRACED_SPEEDUP {
            eprintln!(
                "perf-trace: FAIL {scheme:?}: traced span-batched only {traced_speedup:.2}x \
                 faster than traced per-byte (need >= {MIN_TRACED_SPEEDUP}x)"
            );
            failed = true;
        }
        if trace_overhead > MAX_TRACE_OVERHEAD {
            eprintln!(
                "perf-trace: FAIL {scheme:?}: tracing costs {trace_overhead:.2}x \
                 on the span fast path (budget {MAX_TRACE_OVERHEAD}x)"
            );
            failed = true;
        }
        rows.push(TraceRow {
            scheme: format!("{scheme:?}"),
            per_byte_untraced_s: pb_off,
            per_byte_traced_s: pb_mem,
            span_untraced_s: sp_off,
            span_traced_s: sp_mem,
            traced_speedup,
            trace_overhead,
            trace_lines: per_byte_jsonl.lines().count() as u64,
            span_lines: span_jsonl.lines().count() as u64,
        });
    }

    let out = format!("{results_dir}/BENCH_trace.json");
    std::fs::write(&out, serde_json::to_string_pretty(&rows).expect("serialize"))
        .expect("write BENCH_trace.json");
    eprintln!("perf-trace: wrote {out}");
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "perf-trace: all schemes >= {MIN_TRACED_SPEEDUP}x traced speedup, \
         <= {MAX_TRACE_OVERHEAD}x trace overhead, expansions byte-identical"
    );
}
