//! Shard-scaling bench at the Figure 10 operating points.
//!
//! Runs the figure's tree scheme on the 8×8 torus over a shards × load
//! grid — the sequential engine as the 1-shard baseline, then the
//! quadrant-partitioned parallel engine at 2 and 4 shards — and writes
//! `results/BENCH_shard.json` with wall-clock speedups per point.
//!
//! Three gates:
//!
//! * **Counter drift (always on):** every sharded run's `bytes_moved` /
//!   `worms_delivered` must equal the sequential baseline measured in the
//!   same process, and the 0.08/0.12 span-batched points must also match
//!   the checked-in `results/BENCH_wallclock.json` "after" rows — sharding
//!   must never change *what* is simulated. Exits non-zero on drift.
//! * **Event inflation (always on):** the 4-shard run at the saturating
//!   load must schedule at most 1.3× the sequential engine's events. This
//!   pins the receive-side span admission protocol (DESIGN.md §3.4): if
//!   cut links regress to per-byte crossing, inflation shoots back toward
//!   3× and the bench fails regardless of hardware.
//! * **Speedup (gated on hardware):** when the machine has at least 4
//!   CPUs, the 4-shard run at the saturating load must be ≥ 2.5× the
//!   sequential baseline. On smaller machines the ratio is recorded but
//!   not enforced — conservative parallelism cannot beat sequential on a
//!   single core. Any sub-1.0× sharded point prints a visible warning
//!   either way.

use serde::Serialize;
use std::time::Instant;
use wormcast_bench::fig10::{self, figure_tree_scheme, Fig10Config};
use wormcast_bench::runner::{self, SimSetup};
use wormcast_topo::ShardPlan;

/// Same windows and seed as `BENCH_wallclock.json`, so counters line up.
const LOADS: &[f64] = &[0.08, 0.12];
const SHARDS: &[u32] = &[1, 2, 4];
const CFG: Fig10Config = Fig10Config {
    loads: LOADS,
    warmup: 20_000,
    measure: 100_000,
    drain: 40_000,
    seed: 0xF1610,
};
/// The saturating load whose 4-shard speedup the acceptance gate checks.
const GATE_LOAD: f64 = 0.12;
const GATE_SPEEDUP: f64 = 2.5;
/// Hardware-independent ceiling on 4-shard event inflation vs sequential.
const GATE_INFLATION: f64 = 1.3;

#[derive(Serialize, Clone)]
struct ShardRow {
    load: f64,
    shards: u32,
    wall_seconds: f64,
    sim_byte_times_per_sec: f64,
    /// Wall-clock ratio vs the 1-shard (sequential engine) run at the
    /// same load, measured in this same process.
    speedup_vs_sequential: f64,
    bytes_moved: u64,
    worms_delivered: u64,
    events_scheduled: u64,
    /// `events_scheduled` ÷ the sequential run's at the same load (1.0 for
    /// the baseline row itself) — the engine-cost overhead of sharding.
    event_inflation: f64,
}

#[derive(Serialize)]
struct ShardDump {
    experiment: String,
    scheme: String,
    loads: Vec<f64>,
    shard_counts: Vec<u32>,
    windows: (u64, u64, u64),
    machine: String,
    cpus: usize,
    /// Whether the ≥ 2.5× @ 4 shards gate was enforced (needs ≥ 4 cpus).
    speedup_gate_enforced: bool,
    rows: Vec<ShardRow>,
}

fn machine_desc() -> String {
    let uname = std::process::Command::new("uname")
        .arg("-srm")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_default();
    format!("{uname} ({} cpus)", cpus())
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn point(load: f64, shards: u32) -> SimSetup {
    let mut setup = fig10::setup(figure_tree_scheme(), load, &CFG);
    if shards > 1 {
        setup.shards = shards;
        setup.shard_plan = Some(ShardPlan::torus_grid(8, shards).expect("torus plan"));
    }
    setup
}

fn field_u64(v: &serde_json::Value, key: &str) -> u64 {
    match v.get(key) {
        Some(&serde_json::Value::U64(n)) => n,
        other => panic!("BENCH_wallclock.json {key}: expected u64, got {other:?}"),
    }
}

/// The sharded points must reproduce the checked-in sequential wall-clock
/// baseline's counters at the shared operating points.
fn check_against_wallclock_baseline(rows: &[ShardRow], results_dir: &str) -> bool {
    let path = format!("{results_dir}/BENCH_wallclock.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("perf-shard: no {path}; skipping baseline check");
        return true;
    };
    let baseline = serde_json::parse_value(&text).expect("parse BENCH_wallclock.json");
    let after = baseline.get("after").expect("after phase");
    let serde_json::Value::Array(brows) = after.get("rows").expect("rows").clone() else {
        panic!("BENCH_wallclock.json after.rows is not an array");
    };
    let scheme = format!("{:?}", figure_tree_scheme());
    let mut ok = true;
    for &load in LOADS {
        let b = brows
            .iter()
            .find(|r| {
                matches!(r.get("load"), Some(&serde_json::Value::F64(l)) if l == load)
                    && matches!(r.get("scheme"), Some(serde_json::Value::Str(s)) if *s == scheme)
                    && matches!(r.get("mode"), Some(serde_json::Value::Str(m)) if m == "span_batched")
            })
            .unwrap_or_else(|| panic!("no BENCH_wallclock row for load {load}"));
        let expect = (field_u64(b, "bytes_moved"), field_u64(b, "worms_delivered"));
        for row in rows.iter().filter(|r| r.load == load) {
            let got = (row.bytes_moved, row.worms_delivered);
            if got != expect {
                eprintln!(
                    "perf-shard: DRIFT vs BENCH_wallclock.json at load {load} shards \
                     {}: (bytes_moved, worms_delivered) got {got:?}, baseline {expect:?}",
                    row.shards
                );
                ok = false;
            }
        }
    }
    if ok {
        eprintln!("perf-shard: counters match BENCH_wallclock.json");
    }
    ok
}

fn main() {
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).expect("create results dir");
    let sim_horizon = CFG.warmup + CFG.measure + CFG.drain;
    let mut rows: Vec<ShardRow> = Vec::new();
    let mut ok = true;

    for &load in LOADS {
        let mut seq_wall = 0.0f64;
        let mut seq_counters = (0u64, 0u64);
        let mut seq_events = 0u64;
        for &shards in SHARDS {
            let setup = point(load, shards);
            let (secs, stats) = if shards == 1 {
                let mut net = runner::build_network(&setup);
                let t0 = Instant::now();
                let outcome = net.run_until(sim_horizon);
                let secs = t0.elapsed().as_secs_f64();
                net.audit().expect("sequential conservation");
                (secs, outcome.stats)
            } else {
                let mut sharded = runner::build_sharded(&setup).expect("shardable point");
                let t0 = Instant::now();
                let outcome = sharded.run_until(sim_horizon);
                let secs = t0.elapsed().as_secs_f64();
                sharded.audit().expect("sharded conservation");
                (secs, outcome.stats)
            };
            if shards == 1 {
                seq_wall = secs;
                seq_counters = (stats.bytes_moved, stats.worms_delivered);
                seq_events = stats.events_scheduled;
            } else if (stats.bytes_moved, stats.worms_delivered) != seq_counters {
                eprintln!(
                    "perf-shard: DRIFT at load {load}: {shards} shards moved \
                     ({}, {}) vs sequential {seq_counters:?}",
                    stats.bytes_moved, stats.worms_delivered
                );
                ok = false;
            }
            let speedup = seq_wall / secs;
            let inflation = if shards == 1 {
                1.0
            } else {
                stats.events_scheduled as f64 / seq_events as f64
            };
            eprintln!(
                "perf-shard load={load:.2} shards={shards}: {secs:.3}s = {:.0} \
                 byte-times/s ({speedup:.2}x vs sequential, {inflation:.2}x events)",
                sim_horizon as f64 / secs
            );
            if shards > 1 && speedup < 1.0 {
                eprintln!(
                    "perf-shard: WARNING — sharding made this point SLOWER than \
                     sequential ({speedup:.2}x at load {load:.2}, {shards} shards)"
                );
            }
            rows.push(ShardRow {
                load,
                shards,
                wall_seconds: secs,
                sim_byte_times_per_sec: sim_horizon as f64 / secs,
                speedup_vs_sequential: speedup,
                bytes_moved: stats.bytes_moved,
                worms_delivered: stats.worms_delivered,
                events_scheduled: stats.events_scheduled,
                event_inflation: inflation,
            });
        }
    }

    ok &= check_against_wallclock_baseline(&rows, results_dir);

    let gate_enforced = cpus() >= 4;
    let dump = ShardDump {
        experiment: "fig10 8x8 torus, tree scheme, quadrant-sharded scaling".into(),
        scheme: format!("{:?}", figure_tree_scheme()),
        loads: LOADS.to_vec(),
        shard_counts: SHARDS.to_vec(),
        windows: (CFG.warmup, CFG.measure, CFG.drain),
        machine: machine_desc(),
        cpus: cpus(),
        speedup_gate_enforced: gate_enforced,
        rows: rows.clone(),
    };
    let path = format!("{results_dir}/BENCH_shard.json");
    std::fs::write(&path, serde_json::to_string_pretty(&dump).expect("serialize"))
        .expect("write BENCH_shard.json");
    eprintln!("perf-shard: wrote {path}");

    let gate_row = rows
        .iter()
        .find(|r| r.load == GATE_LOAD && r.shards == 4)
        .expect("gate point measured");
    if gate_row.event_inflation > GATE_INFLATION {
        eprintln!(
            "perf-shard: FAIL — {:.2}x event inflation at 4 shards (load \
             {GATE_LOAD}), ceiling {GATE_INFLATION}x (cut links regressed to per-byte?)",
            gate_row.event_inflation
        );
        ok = false;
    } else {
        eprintln!(
            "perf-shard: {:.2}x event inflation at 4 shards (load {GATE_LOAD}) \
             <= {GATE_INFLATION}x",
            gate_row.event_inflation
        );
    }
    if gate_enforced {
        if gate_row.speedup_vs_sequential < GATE_SPEEDUP {
            eprintln!(
                "perf-shard: FAIL — {:.2}x at 4 shards (load {GATE_LOAD}), need {GATE_SPEEDUP}x",
                gate_row.speedup_vs_sequential
            );
            ok = false;
        } else {
            eprintln!(
                "perf-shard: {:.2}x at 4 shards (load {GATE_LOAD}) >= {GATE_SPEEDUP}x",
                gate_row.speedup_vs_sequential
            );
        }
    } else {
        eprintln!(
            "perf-shard: {} cpu(s) — speedup gate not enforced ({:.2}x recorded)",
            cpus(),
            gate_row.speedup_vs_sequential
        );
    }
    if !ok {
        std::process::exit(1);
    }
}
