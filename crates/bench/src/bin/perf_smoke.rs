//! CI perf-smoke: one Fig 10 operating point, wall-clock timed, with an
//! engine-drift gate.
//!
//! Runs load 0.08 (the point `results/BENCH_engine.json` pins) across the
//! three Figure 10 schemes in both [`SimMode`]s, writes the measurements to
//! `results/perf_smoke.json` (uploaded as a CI artifact), and exits
//! non-zero if any `events_scheduled`/`bytes_moved`/`worms_delivered`
//! counter drifts from the checked-in baseline — an engine change that
//! alters *what* is simulated, not just how fast, must re-pin the baseline
//! deliberately.

use serde::Serialize;
use std::time::Instant;
use wormcast_bench::fig10::{self, Fig10Config};
use wormcast_bench::runner;
use wormcast_sim::network::SimMode;

/// The BENCH_engine.json operating point: load 0.08, same windows and seed.
const LOAD: f64 = 0.08;
const CFG: Fig10Config = Fig10Config {
    loads: &[LOAD],
    warmup: 20_000,
    measure: 100_000,
    drain: 40_000,
    seed: 0xF1610,
};

#[derive(Serialize)]
struct SmokeRow {
    scheme: String,
    mode: String,
    wall_seconds: f64,
    sim_byte_times_per_sec: f64,
    events_scheduled: u64,
    bytes_moved: u64,
    worms_delivered: u64,
}

fn field_u64(v: &serde_json::Value, key: &str) -> u64 {
    match v.get(key) {
        Some(&serde_json::Value::U64(n)) => n,
        other => panic!("BENCH_engine.json {key}: expected u64, got {other:?}"),
    }
}

fn main() {
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let sim_horizon = CFG.warmup + CFG.measure + CFG.drain;
    let mut rows = Vec::new();
    for scheme in fig10::schemes() {
        for mode in [SimMode::PerByte, SimMode::SpanBatched] {
            let mut setup = fig10::setup(scheme, LOAD, &CFG);
            setup.mode = mode;
            let mut net = runner::build_network(&setup);
            let t0 = Instant::now();
            let outcome = net.run_until(sim_horizon);
            let secs = t0.elapsed().as_secs_f64();
            net.audit().expect("conservation invariant");
            let mode_name = match mode {
                SimMode::PerByte => "per_byte",
                SimMode::SpanBatched => "span_batched",
            };
            eprintln!(
                "perf-smoke {scheme:?} {mode_name}: {secs:.3}s = {:.0} byte-times/s",
                sim_horizon as f64 / secs
            );
            rows.push(SmokeRow {
                scheme: format!("{scheme:?}"),
                mode: mode_name.into(),
                wall_seconds: secs,
                sim_byte_times_per_sec: sim_horizon as f64 / secs,
                events_scheduled: outcome.stats.events_scheduled,
                bytes_moved: outcome.stats.bytes_moved,
                worms_delivered: outcome.stats.worms_delivered,
            });
        }
    }

    let out = format!("{results_dir}/perf_smoke.json");
    std::fs::write(&out, serde_json::to_string_pretty(&rows).expect("serialize"))
        .expect("write perf_smoke.json");
    eprintln!("perf-smoke: wrote {out}");

    // Drift gate against the checked-in baseline.
    let path = format!("{results_dir}/BENCH_engine.json");
    let text = std::fs::read_to_string(&path).expect("read BENCH_engine.json");
    let baseline = serde_json::parse_value(&text).expect("parse BENCH_engine.json");
    let serde_json::Value::Array(brows) = baseline.get("rows").expect("rows").clone() else {
        panic!("BENCH_engine.json rows is not an array");
    };
    let mut drift = false;
    for brow in &brows {
        let Some(serde_json::Value::Str(scheme)) = brow.get("scheme") else {
            panic!("BENCH_engine.json row without scheme");
        };
        for mode in ["per_byte", "span_batched"] {
            let b = brow.get(mode).expect("mode counters");
            let ours = rows
                .iter()
                .find(|r| &r.scheme == scheme && r.mode == mode)
                .unwrap_or_else(|| panic!("no smoke row for {scheme} {mode}"));
            let expect = (
                field_u64(b, "events_scheduled"),
                field_u64(b, "bytes_moved"),
                field_u64(b, "worms_delivered"),
            );
            let got = (ours.events_scheduled, ours.bytes_moved, ours.worms_delivered);
            if got != expect {
                eprintln!(
                    "perf-smoke: DRIFT for {scheme} {mode}: \
                     (events_scheduled, bytes_moved, worms_delivered) \
                     got {got:?}, baseline {expect:?}"
                );
                drift = true;
            }
        }
    }
    if drift {
        eprintln!("perf-smoke: counters drifted from results/BENCH_engine.json");
        std::process::exit(1);
    }
    eprintln!("perf-smoke: counters match results/BENCH_engine.json");
}
