//! Lane-scaling bench at the Figure 10 operating points.
//!
//! Runs the figure's tree scheme on the 8×8 torus over a lanes × load
//! grid — single-lane links (the paper's Myrinet) as the baseline, then
//! the same fabric with 2 and 4 lanes per trunk — and writes
//! `results/BENCH_lanes.json`.
//!
//! Two gates, both always on:
//!
//! * **Counter drift:** the single-lane run at load 0.08 must reproduce
//!   the checked-in `results/BENCH_engine.json` tree-scheme counters
//!   exactly — the lane-port redesign must never change what a one-lane
//!   fabric simulates. Exits non-zero on drift.
//! * **Monotone capacity:** at every load, delivered worms must not
//!   decrease as lanes are added, and at the saturating load the 2-lane
//!   fabric must deliver strictly more than the 1-lane fabric (extra
//!   trunk capacity must show up as throughput once the single lane is
//!   the bottleneck).

use serde::Serialize;
use std::time::Instant;
use wormcast_bench::fig10::{self, figure_tree_scheme, Fig10Config};
use wormcast_bench::runner;

/// Same windows and seed as `BENCH_engine.json`, so counters line up.
const LOADS: &[f64] = &[0.08, 0.12];
const LANES: &[u8] = &[1, 2, 4];
const CFG: Fig10Config = Fig10Config {
    loads: LOADS,
    warmup: 20_000,
    measure: 100_000,
    drain: 40_000,
    seed: 0xF1610,
};
/// The load where one lane saturates and extra lanes must pay off.
const GATE_LOAD: f64 = 0.12;

#[derive(Serialize, Clone)]
struct LaneRow {
    load: f64,
    lanes: u8,
    wall_seconds: f64,
    bytes_moved: u64,
    worms_delivered: u64,
    multicast_deliveries: u64,
    /// Delivered worms relative to the 1-lane run at the same load,
    /// measured in this same process.
    delivered_vs_single_lane: f64,
}

#[derive(Serialize)]
struct LaneDump {
    experiment: String,
    scheme: String,
    arbiter: String,
    loads: Vec<f64>,
    lane_counts: Vec<u8>,
    windows: (u64, u64, u64),
    rows: Vec<LaneRow>,
}

fn field_u64(v: &serde_json::Value, key: &str) -> u64 {
    match v.get(key) {
        Some(&serde_json::Value::U64(n)) => n,
        other => panic!("BENCH_engine.json {key}: expected u64, got {other:?}"),
    }
}

/// The single-lane load-0.08 point must reproduce the checked-in engine
/// baseline's counters (the tree-scheme span-batched row).
fn check_against_engine_baseline(rows: &[LaneRow], results_dir: &str) -> bool {
    let path = format!("{results_dir}/BENCH_engine.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("perf-lanes: no {path}; skipping baseline check");
        return true;
    };
    let baseline = serde_json::parse_value(&text).expect("parse BENCH_engine.json");
    let serde_json::Value::Array(brows) = baseline.get("rows").expect("rows").clone() else {
        panic!("BENCH_engine.json rows is not an array");
    };
    let scheme = format!("{:?}", figure_tree_scheme());
    let b = brows
        .iter()
        .find(|r| matches!(r.get("scheme"), Some(serde_json::Value::Str(s)) if *s == scheme))
        .expect("no BENCH_engine row for the tree scheme");
    let span = b.get("span_batched").expect("span_batched block");
    let expect = (field_u64(span, "bytes_moved"), field_u64(span, "worms_delivered"));
    let row = rows
        .iter()
        .find(|r| r.load == 0.08 && r.lanes == 1)
        .expect("single-lane 0.08 point measured");
    let got = (row.bytes_moved, row.worms_delivered);
    if got != expect {
        eprintln!(
            "perf-lanes: DRIFT vs BENCH_engine.json at load 0.08 lanes 1: \
             (bytes_moved, worms_delivered) got {got:?}, baseline {expect:?}"
        );
        return false;
    }
    eprintln!("perf-lanes: single-lane counters match BENCH_engine.json");
    true
}

fn main() {
    let results_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results_dir).expect("create results dir");
    let sim_horizon = CFG.warmup + CFG.measure + CFG.drain;
    let mut rows: Vec<LaneRow> = Vec::new();
    let mut ok = true;

    for &load in LOADS {
        let mut single_lane_delivered = 0u64;
        for &lanes in LANES {
            let mut setup = fig10::setup(figure_tree_scheme(), load, &CFG);
            setup.lanes = lanes;
            let mut net = runner::build_network(&setup);
            let t0 = Instant::now();
            let outcome = net.run_until(sim_horizon);
            let secs = t0.elapsed().as_secs_f64();
            net.audit().expect("conservation");
            assert!(outcome.deadlock.is_none(), "deadlock: {outcome:?}");
            if lanes == 1 {
                single_lane_delivered = outcome.stats.worms_delivered;
            }
            let ratio =
                outcome.stats.worms_delivered as f64 / single_lane_delivered.max(1) as f64;
            eprintln!(
                "perf-lanes load={load:.2} lanes={lanes}: {secs:.3}s, {} worms \
                 delivered ({ratio:.2}x vs single lane)",
                outcome.stats.worms_delivered
            );
            rows.push(LaneRow {
                load,
                lanes,
                wall_seconds: secs,
                bytes_moved: outcome.stats.bytes_moved,
                worms_delivered: outcome.stats.worms_delivered,
                multicast_deliveries: net.msgs.deliveries.len() as u64,
                delivered_vs_single_lane: ratio,
            });
        }
    }

    ok &= check_against_engine_baseline(&rows, results_dir);

    for &load in LOADS {
        let per_load: Vec<&LaneRow> = rows.iter().filter(|r| r.load == load).collect();
        if !per_load.windows(2).all(|w| w[0].worms_delivered <= w[1].worms_delivered) {
            eprintln!(
                "perf-lanes: FAIL — delivered worms decreased with more lanes at \
                 load {load}: {:?}",
                per_load.iter().map(|r| r.worms_delivered).collect::<Vec<_>>()
            );
            ok = false;
        }
    }
    let gate: Vec<&LaneRow> = rows.iter().filter(|r| r.load == GATE_LOAD).collect();
    let (one, two) = (gate[0].worms_delivered, gate[1].worms_delivered);
    if two <= one {
        eprintln!(
            "perf-lanes: FAIL — at load {GATE_LOAD}, 2 lanes delivered {two} worms, \
             need strictly more than the single lane's {one}"
        );
        ok = false;
    } else {
        eprintln!(
            "perf-lanes: 2 lanes deliver {:.2}x the single lane at load {GATE_LOAD}",
            two as f64 / one as f64
        );
    }

    let dump = LaneDump {
        experiment: "fig10 8x8 torus, tree scheme, lane scaling".into(),
        scheme: format!("{:?}", figure_tree_scheme()),
        arbiter: "round-robin".into(),
        loads: LOADS.to_vec(),
        lane_counts: LANES.to_vec(),
        windows: (CFG.warmup, CFG.measure, CFG.drain),
        rows,
    };
    let path = format!("{results_dir}/BENCH_lanes.json");
    std::fs::write(&path, serde_json::to_string_pretty(&dump).expect("serialize"))
        .expect("write BENCH_lanes.json");
    eprintln!("perf-lanes: wrote {path}");
    if !ok {
        std::process::exit(1);
    }
}
