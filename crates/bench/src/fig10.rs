//! Figure 10: average multicast latency vs offered load on the 8×8 torus.
//!
//! Paper parameters (Section 7.1): 64 hosts, ten multicast groups of ten
//! members chosen at random, multicast generation probability 0.10,
//! Poisson arrivals, geometric worm lengths with mean 400 bytes, unicast
//! destinations uniform, up/down routing with a fixed path per pair.
//! Offered load (per-host output-link utilization) sweeps 0.04–0.12.
//!
//! Expected shape (paper): tree below Hamiltonian store-and-forward
//! everywhere; Hamiltonian cut-through below the tree at light load and
//! above it at heavy load; the Hamiltonian curves saturate earlier.

use crate::runner::{run_parallel, RunReport, SimSetup};
use crate::schemes::Scheme;
use wormcast_core::{HcConfig, Reliability, TreeConfig, TreeMode};
use wormcast_stats::Series;
use wormcast_topo::torus::torus;
use wormcast_topo::tree::TreeShape;
use wormcast_traffic::rng::host_stream;
use wormcast_traffic::workload::PaperWorkload;
use wormcast_traffic::{GroupSet, LengthDist};

/// Experiment scale. `Full` is the paper's configuration; `Quick` shrinks
/// the measurement window for CI-friendly runs with the same shape.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Config {
    pub loads: &'static [f64],
    pub warmup: u64,
    pub measure: u64,
    pub drain: u64,
    pub seed: u64,
}

impl Fig10Config {
    pub fn full() -> Self {
        Fig10Config {
            loads: &[0.04, 0.045, 0.05, 0.055, 0.06, 0.065, 0.07, 0.08, 0.10, 0.12],
            warmup: 150_000,
            measure: 800_000,
            drain: 150_000,
            seed: 0xF1610,
        }
    }

    pub fn quick() -> Self {
        Fig10Config {
            loads: &[0.04, 0.08, 0.12],
            warmup: 50_000,
            measure: 200_000,
            drain: 80_000,
            seed: 0xF1610,
        }
    }
}

/// The tree configuration used in the figures: broadcast on a
/// topology-aware (greedy hop-cost, ID-ordered) tree, full reassembly at
/// each adapter. The paper observes that "the average hop length for each
/// link of the tree is less than the average hop length for all pairs" —
/// which is only true of a topology-aware tree — and its Figure 10 tree
/// curve beats the Hamiltonian, which requires the origin-rooted
/// (non-serialized) variant; the root-serialized variant funnels every
/// group's traffic through one adapter and loses that advantage (shown in
/// the tree-shape ablation bench).
pub fn figure_tree_scheme() -> Scheme {
    Scheme::Tree(
        TreeConfig {
            mode: TreeMode::BroadcastFromOrigin,
            cut_through_first: false,
            reliability: Reliability::None,
        },
        TreeShape::GreedyHop,
    )
}

/// The three schemes of Figure 10.
pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Hc(HcConfig::store_and_forward()),
        Scheme::Hc(HcConfig::cut_through()),
        figure_tree_scheme(),
    ]
}

/// One experiment point of the figure (public so engine benches can rerun
/// the same operating point under a different [`SimMode`]).
pub fn setup(scheme: Scheme, load: f64, cfg: &Fig10Config) -> SimSetup {
    let mut grng = host_stream(cfg.seed, 0x6071);
    let groups = GroupSet::random(64, 10, 10, &mut grng);
    let workload = PaperWorkload {
        offered_load: load,
        multicast_prob: 0.10,
        lengths: LengthDist::Geometric { mean: 400 },
        stop_at: None,
    };
    SimSetup::builder(torus(8, 1), groups, scheme, workload)
        .seed(cfg.seed)
        .windows(cfg.warmup, cfg.measure, cfg.drain)
        .build()
        .expect("figure 10 parameters are valid")
}

/// Run the full figure: one series per scheme, one point per load.
pub fn run_figure(cfg: &Fig10Config) -> Vec<(Series, Vec<RunReport>)> {
    schemes()
        .into_iter()
        .map(|scheme| {
            let setups: Vec<SimSetup> = cfg
                .loads
                .iter()
                .map(|&load| setup(scheme, load, cfg))
                .collect();
            let results = run_parallel(setups);
            let mut series = Series::new(scheme_label(&scheme));
            for (&load, r) in cfg.loads.iter().zip(&results) {
                series.push(load, r.multicast.per_delivery.mean, r.multicast.per_delivery.ci95());
            }
            (series, results)
        })
        .collect()
}

fn scheme_label(s: &Scheme) -> String {
    match s {
        Scheme::Hc(c) if c.cut_through => "Hamiltonian cycle, cut-thru".into(),
        Scheme::Hc(_) => "Hamiltonian cycle".into(),
        _ => "Rooted tree".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single light-load point behaves sanely (fast, so part of the unit
    /// suite; the full figure lives in the bench target).
    #[test]
    fn light_load_point_delivers() {
        let cfg = Fig10Config {
            loads: &[0.03],
            warmup: 10_000,
            measure: 50_000,
            drain: 60_000,
            seed: 7,
        };
        let s = setup(figure_tree_scheme(), 0.03, &cfg);
        let r = crate::runner::run(&s);
        assert!(r.multicast.deliveries > 0, "no multicast deliveries");
        assert!(r.delivery_ratio > 0.95, "ratio {}", r.delivery_ratio);
        // Latency at light load: a few worm times — an order of magnitude
        // below the >100k byte-times a saturated point shows. (Wide bound:
        // this short window is noisy; the figure bench uses long windows.)
        assert!(
            r.multicast.per_delivery.mean > 300.0
                && r.multicast.per_delivery.mean < 9000.0,
            "implausible light-load latency {}",
            r.multicast.per_delivery.mean
        );
    }
}
