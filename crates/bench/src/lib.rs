//! # wormcast-bench — experiment harness
//!
//! Reproduces every figure of the paper's evaluation plus the ablation
//! studies DESIGN.md calls out. Each `benches/` target is a thin printer
//! around this library so results are also reachable from tests.
//!
//! * [`fig10`] — average multicast latency vs offered load, 8×8 torus
//!   (Hamiltonian store-and-forward / Hamiltonian cut-through / tree).
//! * [`fig11`] — average delay vs load for multicast proportions
//!   {0.05, 0.10, 0.15, 0.20} on the 24-node bidirectional shufflenet.
//! * Figures 12 and 13 are produced by `wormcast-myrinet`'s prototype
//!   model; see `benches/fig12_prototype_throughput.rs` and
//!   `benches/fig13_prototype_loss.rs`.
//! * [`runner`] and [`schemes`] — shared simulation assembly.

pub mod fig10;
pub mod fig11;
pub mod runner;
pub mod schemes;
pub mod trace_io;

pub use runner::{run, run_parallel, run_traced, RunReport, SimSetup, SimSetupBuilder};
pub use schemes::Scheme;
pub use trace_io::{expand_spans, validate_jsonl, write_jsonl};
pub use wormcast_sim::network::RunOutcome;
