//! Interoperation with multicast IP (Section 8.1).
//!
//! IP multicast uses class D addresses (top nibble `1110`, a 28-bit group
//! space). Myrinet multicast groups are 8-bit, with group 255 reserved for
//! broadcast. The paper's driver takes the **low eight bits** of the class
//! D address as the Myrinet group. Several IP groups can collide in their
//! low byte — that is fine, because the receiving IP layer filters — but
//! the Myrinet group must then be the **union** of all colliding IP
//! groups' memberships. That union maintenance and the receiver-side
//! filter live here.

use crate::group::BROADCAST_GROUP;
use std::collections::BTreeMap;
use wormcast_sim::engine::HostId;

/// A class D IPv4 address (stored as the full 32-bit address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassD(pub u32);

impl std::fmt::Display for ClassD {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl ClassD {
    /// Build from dotted-quad parts; panics unless it is class D
    /// (224.0.0.0 – 239.255.255.255).
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        let addr = u32::from_be_bytes([a, b, c, d]);
        assert!(
            (addr >> 28) == 0b1110,
            "{a}.{b}.{c}.{d} is not a class D address"
        );
        ClassD(addr)
    }

    /// The Myrinet group this address maps to: its low eight bits.
    pub fn myrinet_group(self) -> u8 {
        (self.0 & 0xFF) as u8
    }
}

/// The driver's mapping state: IP group memberships and the derived
/// Myrinet union groups.
#[derive(Clone, Debug, Default)]
pub struct IpMulticastMap {
    ip_members: BTreeMap<ClassD, Vec<HostId>>,
}

impl IpMulticastMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// A host joins an IP multicast group.
    pub fn join(&mut self, addr: ClassD, host: HostId) {
        assert_ne!(
            addr.myrinet_group(),
            BROADCAST_GROUP,
            "low byte 255 collides with the Myrinet broadcast address"
        );
        let members = self.ip_members.entry(addr).or_default();
        if let Err(ix) = members.binary_search(&host) {
            members.insert(ix, host);
        }
    }

    /// A host leaves an IP multicast group.
    pub fn leave(&mut self, addr: ClassD, host: HostId) {
        if let Some(members) = self.ip_members.get_mut(&addr) {
            if let Ok(ix) = members.binary_search(&host) {
                members.remove(ix);
            }
            if members.is_empty() {
                self.ip_members.remove(&addr);
            }
        }
    }

    /// Members of one IP group.
    pub fn ip_members(&self, addr: ClassD) -> &[HostId] {
        self.ip_members.get(&addr).map_or(&[], |v| v.as_slice())
    }

    /// The **union** membership the Myrinet group must carry: every member
    /// of every IP group whose address shares the low eight bits.
    pub fn myrinet_members(&self, group: u8) -> Vec<HostId> {
        let mut out: Vec<HostId> = self
            .ip_members
            .iter()
            .filter(|(addr, _)| addr.myrinet_group() == group)
            .flat_map(|(_, m)| m.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Receiver-side IP filter: should `host`'s IP layer keep a packet
    /// addressed to `addr` that arrived on the (possibly wider) Myrinet
    /// union group?
    pub fn host_accepts(&self, addr: ClassD, host: HostId) -> bool {
        self.ip_members(addr).binary_search(&host).is_ok()
    }

    /// All Myrinet groups currently needed, with their union memberships —
    /// what the driver pushes to the multicast group manager.
    pub fn required_myrinet_groups(&self) -> Vec<(u8, Vec<HostId>)> {
        let mut groups: Vec<u8> = self
            .ip_members
            .keys()
            .map(|a| a.myrinet_group())
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups
            .into_iter()
            .map(|g| (g, self.myrinet_members(g)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dotted_quad() {
        assert_eq!(ClassD::new(224, 2, 127, 7).to_string(), "224.2.127.7");
    }

    #[test]
    fn class_d_validation() {
        let a = ClassD::new(224, 0, 0, 5);
        assert_eq!(a.myrinet_group(), 5);
        let b = ClassD::new(239, 255, 255, 254);
        assert_eq!(b.myrinet_group(), 254);
    }

    #[test]
    #[should_panic(expected = "not a class D")]
    fn non_class_d_rejected() {
        let _ = ClassD::new(192, 168, 0, 1);
    }

    #[test]
    fn low_byte_collision_unions_memberships() {
        let mut m = IpMulticastMap::new();
        // Two IP groups with the same low byte (7).
        let g1 = ClassD::new(224, 1, 1, 7);
        let g2 = ClassD::new(239, 9, 9, 7);
        m.join(g1, HostId(0));
        m.join(g1, HostId(1));
        m.join(g2, HostId(2));
        assert_eq!(
            m.myrinet_members(7),
            vec![HostId(0), HostId(1), HostId(2)]
        );
        // The IP filter still separates them.
        assert!(m.host_accepts(g1, HostId(1)));
        assert!(!m.host_accepts(g1, HostId(2)));
        assert!(m.host_accepts(g2, HostId(2)));
        assert!(!m.host_accepts(g2, HostId(0)));
    }

    #[test]
    fn join_leave_roundtrip() {
        let mut m = IpMulticastMap::new();
        let g = ClassD::new(224, 0, 0, 9);
        m.join(g, HostId(4));
        m.join(g, HostId(4)); // idempotent
        assert_eq!(m.ip_members(g), &[HostId(4)]);
        m.leave(g, HostId(4));
        assert!(m.ip_members(g).is_empty());
        assert!(m.myrinet_members(9).is_empty());
        m.leave(g, HostId(4)); // idempotent on empty
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn group_255_reserved() {
        let mut m = IpMulticastMap::new();
        m.join(ClassD::new(224, 0, 0, 255), HostId(0));
    }

    #[test]
    fn required_groups_enumerates_unions() {
        let mut m = IpMulticastMap::new();
        m.join(ClassD::new(224, 0, 0, 1), HostId(0));
        m.join(ClassD::new(224, 0, 1, 1), HostId(1));
        m.join(ClassD::new(224, 0, 0, 2), HostId(2));
        let req = m.required_myrinet_groups();
        assert_eq!(req.len(), 2);
        assert_eq!(req[0], (1, vec![HostId(0), HostId(1)]));
        assert_eq!(req[1], (2, vec![HostId(2)]));
    }
}
