//! Host-side support for switch-level multicast (Section 3).
//!
//! When replication happens inside the crossbar switches, the host
//! adapter's job shrinks to (a) computing the linearized tree source route
//! of Figure 2 (or the to-root + broadcast-address route), (b) injecting
//! the worm, and (c) filtering/delivering at the receivers. The deadlock
//! machinery lives in the fabric (`wormcast_sim::switchcast`); the three
//! Section 3 variants map to [`wormcast_sim::switchcast::SwitchcastMode`]:
//!
//! * **V1 / RestrictedIdle** — all routes restricted to the up/down
//!   spanning tree; blocked multicasts fill their branches with IDLEs.
//!   Multicasts start at the *origin* (directive from the origin's switch).
//! * **V2 / RootedInterrupt** — multicasts are serialized through the
//!   up/down root (route = unicast to root + directive from the root);
//!   blocked multicasts interrupt and resume as fragments.
//! * **V3 / IdleFlush** — like V1, but a unicast stuck behind a
//!   multicast-IDLE port is flushed (Backward Reset) and retransmitted by
//!   its source "after a random time out" — implemented here in
//!   [`SwitchcastProtocol::on_worm_flushed`].
//! * **Broadcast** — the Section 3 special case: a unicast route to the
//!   root followed by the one-byte broadcast address; switches flood all
//!   down-tree links and host ports. Receivers filter by group, like the
//!   stock Myrinet broadcast facility.

use crate::group::Membership;
use std::collections::HashMap;
use std::sync::Arc;
use wormcast_sim::engine::HostId;
use wormcast_sim::network::RouteTable;
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::switchcast::merge_paths;
use wormcast_sim::time::SimTime;
use wormcast_sim::worm::{RouteSym, WormInstance, WormKind};
use wormcast_topo::{Topology, UpDown};

/// Which Section 3 scheme the hosts drive. Must match the fabric's
/// `NetworkConfig::switchcast` mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchcastVariant {
    /// V1: origin-rooted directive over tree-restricted routes, IDLE fills.
    RestrictedIdle,
    /// V2: root-serialized directive, interrupt/resume fragments.
    RootedInterrupt,
    /// V3: V1 plus flush-and-retransmit for blocked unicasts.
    IdleFlush,
    /// Root-serialized one-byte broadcast address; receivers filter.
    Broadcast,
}

/// Precomputed routes for every group and origin.
#[derive(Clone, Debug, Default)]
pub struct SwitchcastTables {
    /// V1/V3: encoded directive per (group, origin), leaves excluded the
    /// origin itself.
    from_origin: HashMap<(u8, u32), (Vec<RouteSym>, u32)>,
    /// V2/Broadcast: unicast port path from each host's switch to the root
    /// switch (empty when already there).
    to_root: Vec<Vec<u8>>,
    /// V2: encoded directive from the root switch covering all members.
    from_root: HashMap<u8, (Vec<RouteSym>, u32)>,
    /// Broadcast sink count = total hosts (everyone hears a broadcast).
    num_hosts: u32,
}

impl SwitchcastTables {
    /// Build all route tables for the given topology/orientation/groups.
    /// `restrict` must match how `routes` was built (V1/V3 require
    /// tree-restricted routing for deadlock freedom).
    pub fn build(
        topo: &Topology,
        ud: &UpDown,
        routes: &RouteTable,
        membership: &Membership,
        restrict: bool,
    ) -> Self {
        let mut t = SwitchcastTables {
            num_hosts: topo.num_hosts() as u32,
            to_root: Vec::with_capacity(topo.num_hosts()),
            ..Default::default()
        };
        for h in &topo.hosts {
            t.to_root.push(
                ud.route_ports(topo, h.switch, ud.root, restrict)
                    .expect("root reachable"),
            );
        }
        for g in membership.group_ids() {
            let members = membership.members(g);
            // Directive from the root switch over all members (V2).
            let root_paths: Vec<Vec<u8>> = members
                .iter()
                .map(|&m| {
                    let att = topo.hosts[m.0 as usize];
                    let mut p = ud
                        .route_ports(topo, ud.root, att.switch, restrict)
                        .expect("member reachable");
                    p.push(att.port);
                    p
                })
                .collect();
            let refs: Vec<&[u8]> = root_paths.iter().map(|v| v.as_slice()).collect();
            let d = merge_paths(&refs).expect("non-empty group");
            let enc = wormcast_sim::switchcast::encode(&d).expect("encodable");
            t.from_root.insert(g, (enc, d.num_leaves() as u32));
            // Directive from each member origin over the others (V1/V3).
            for &origin in members {
                let paths: Vec<&[u8]> = members
                    .iter()
                    .filter(|&&m| m != origin)
                    .map(|&m| routes.get(origin, m))
                    .collect();
                if paths.is_empty() {
                    continue; // singleton group
                }
                let d = merge_paths(&paths).expect("non-empty");
                let enc = wormcast_sim::switchcast::encode(&d).expect("encodable");
                t.from_origin
                    .insert((g, origin.0), (enc, d.num_leaves() as u32));
            }
        }
        t
    }

    /// The broadcast-port set the fabric needs
    /// ([`wormcast_sim::Network::set_broadcast_ports`]): per switch, its
    /// down-tree link ports plus its host ports.
    pub fn broadcast_ports(topo: &Topology, ud: &UpDown) -> Vec<Vec<u8>> {
        let mut ports: Vec<Vec<u8>> = vec![Vec::new(); topo.num_switches()];
        for (i, l) in topo.links.iter().enumerate() {
            if !ud.tree_link[i] {
                continue;
            }
            // The down direction points away from the root.
            if ud.is_up(l.b, l.a) {
                ports[l.a].push(l.a_port); // a -> b is down
            } else {
                ports[l.b].push(l.b_port);
            }
        }
        for h in &topo.hosts {
            ports[h.switch].push(h.port);
        }
        for p in &mut ports {
            p.sort_unstable();
        }
        ports
    }
}

/// Per-host protocol instance driving switch-level multicast.
pub struct SwitchcastProtocol {
    host: HostId,
    variant: SwitchcastVariant,
    membership: Arc<Membership>,
    tables: Arc<SwitchcastTables>,
    /// Worms flushed by the fabric awaiting their retransmission timer.
    pending_retx: HashMap<u64, SendSpec>,
    next_retx_token: u64,
    /// Retransmission backoff bound (uniform random, the paper's "random
    /// time out").
    pub retx_backoff: SimTime,
    /// Broadcast worms filtered out because this host is not a member.
    pub filtered: u64,
    pub flush_retransmits: u64,
}

impl SwitchcastProtocol {
    pub fn new(
        host: HostId,
        variant: SwitchcastVariant,
        membership: Arc<Membership>,
        tables: Arc<SwitchcastTables>,
    ) -> Self {
        SwitchcastProtocol {
            host,
            variant,
            membership,
            tables,
            pending_retx: HashMap::new(),
            next_retx_token: 1,
            retx_backoff: 20_000,
            filtered: 0,
            flush_retransmits: 0,
        }
    }
}

impl AdapterProtocol for SwitchcastProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        match msg.dest {
            Destination::Unicast(d) => {
                ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
            }
            Destination::Multicast(group) => {
                let kind = WormKind::SwitchMulticast { group };
                match self.variant {
                    SwitchcastVariant::RestrictedIdle | SwitchcastVariant::IdleFlush => {
                        let Some((enc, leaves)) =
                            self.tables.from_origin.get(&(group, self.host.0))
                        else {
                            return; // not a member / singleton group
                        };
                        let dest = self
                            .membership
                            .members(group)
                            .iter()
                            .copied()
                            .find(|&m| m != self.host)
                            .unwrap_or(self.host);
                        if dest == self.host {
                            return;
                        }
                        let mut spec = SendSpec::data(&msg, dest, kind);
                        spec.route_override = Some(enc.clone());
                        spec.sinks = *leaves;
                        ctx.send(spec);
                    }
                    SwitchcastVariant::RootedInterrupt => {
                        let Some((enc, leaves)) = self.tables.from_root.get(&group) else {
                            return;
                        };
                        let mut route: Vec<RouteSym> = self.tables.to_root
                            [self.host.0 as usize]
                            .iter()
                            .map(|&p| RouteSym::Port(p))
                            .collect();
                        route.extend(enc.iter().copied());
                        let dest = self
                            .membership
                            .lowest(group)
                            .filter(|&m| m != self.host)
                            .or_else(|| {
                                self.membership
                                    .members(group)
                                    .iter()
                                    .copied()
                                    .find(|&m| m != self.host)
                            });
                        let Some(dest) = dest else { return };
                        let mut spec = SendSpec::data(&msg, dest, kind);
                        spec.route_override = Some(route);
                        spec.sinks = *leaves;
                        ctx.send(spec);
                    }
                    SwitchcastVariant::Broadcast => {
                        let mut route: Vec<RouteSym> = self.tables.to_root
                            [self.host.0 as usize]
                            .iter()
                            .map(|&p| RouteSym::Port(p))
                            .collect();
                        route.push(RouteSym::Broadcast);
                        // Any other host works as the nominal destination.
                        let dest = HostId(if self.host.0 == 0 { 1 } else { 0 });
                        let mut spec = SendSpec::data(&msg, dest, kind);
                        spec.route_override = Some(route);
                        spec.sinks = self.tables.num_hosts;
                        ctx.send(spec);
                    }
                }
            }
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        match worm.meta.kind {
            WormKind::Unicast => ctx.deliver_local(worm.meta.msg),
            WormKind::SwitchMulticast { group } => {
                if worm.meta.origin == self.host {
                    return; // our own copy came around (V2 / broadcast)
                }
                match self.variant {
                    SwitchcastVariant::Broadcast => {
                        // Receiver-side group filter, like stock Myrinet
                        // broadcast.
                        if self.membership.is_member(group, self.host) {
                            ctx.deliver_local(worm.meta.msg);
                        } else {
                            self.filtered += 1;
                        }
                    }
                    _ => ctx.deliver_local(worm.meta.msg),
                }
            }
            other => unreachable!("unexpected worm kind {other:?} at switchcast host"),
        }
    }

    fn on_worm_flushed(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        // The paper's V3 recovery: "the source is thus notified of the drop
        // and retransmits the unicast message after a random time out."
        use rand::Rng;
        debug_assert!(matches!(worm.meta.kind, WormKind::Unicast));
        self.flush_retransmits += 1;
        let spec = SendSpec::forward(worm, worm.meta.dest);
        let token = self.next_retx_token;
        self.next_retx_token += 1;
        self.pending_retx.insert(token, spec);
        let delay = ctx.rng.gen_range(1..=self.retx_backoff.max(1));
        ctx.set_timer(delay, token);
    }

    fn on_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) {
        if let Some(spec) = self.pending_retx.remove(&token) {
            ctx.send(spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_topo::TopoBuilder;

    fn small() -> (Topology, UpDown, RouteTable, Arc<Membership>) {
        // 3 switches in a line, 2 hosts each.
        let mut b = TopoBuilder::new(3);
        b.link(0, 1, 1);
        b.link(1, 2, 1);
        for s in 0..3 {
            b.host(s);
            b.host(s);
        }
        let topo = b.build();
        let ud = UpDown::compute(&topo, 0);
        let routes = ud.route_table(&topo, true);
        let membership = Membership::from_groups([(0u8, vec![
            HostId(0),
            HostId(3),
            HostId(5),
        ])]);
        (topo, ud, routes, membership)
    }

    #[test]
    fn tables_cover_groups_and_origins() {
        let (topo, ud, routes, membership) = small();
        let t = SwitchcastTables::build(&topo, &ud, &routes, &membership, true);
        assert_eq!(t.to_root.len(), 6);
        assert!(t.to_root[0].is_empty(), "host 0 sits on the root switch");
        assert!(!t.to_root[5].is_empty());
        let (enc_root, leaves_root) = t.from_root.get(&0).expect("group 0");
        assert_eq!(*leaves_root, 3, "root directive reaches all members");
        assert!(!enc_root.is_empty());
        for origin in [0u32, 3, 5] {
            let (enc, leaves) = t
                .from_origin
                .get(&(0, origin))
                .unwrap_or_else(|| panic!("origin {origin}"));
            assert_eq!(*leaves, 2, "origin directive excludes the origin");
            assert!(!enc.is_empty());
        }
        assert!(!t.from_origin.contains_key(&(0, 1)), "non-members absent");
    }

    fn run_gen(
        p: &mut SwitchcastProtocol,
        origin: u32,
        group: u8,
    ) -> Vec<wormcast_sim::protocol::Command> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(0, HostId(origin), 0, &mut rng, &mut cmds);
        let msg = AppMessage {
            msg: wormcast_sim::worm::MessageId(5),
            origin: HostId(origin),
            dest: Destination::Multicast(group),
            payload_len: 300,
            created: 0,
        };
        p.on_generate(&mut ctx, msg);
        cmds
    }

    #[test]
    fn v1_injects_directive_route_with_leaf_sinks() {
        use wormcast_sim::protocol::Command;
        let (topo, ud, routes, membership) = small();
        let tables = Arc::new(SwitchcastTables::build(&topo, &ud, &routes, &membership, true));
        let mut p = SwitchcastProtocol::new(
            HostId(3),
            SwitchcastVariant::RestrictedIdle,
            Arc::clone(&membership),
            tables,
        );
        let cmds = run_gen(&mut p, 3, 0);
        match &cmds[..] {
            [Command::Send(s)] => {
                assert!(matches!(s.kind, WormKind::SwitchMulticast { group: 0 }));
                assert_eq!(s.sinks, 2, "members 0 and 5");
                let route = s.route_override.as_ref().expect("tree route");
                assert!(route.iter().any(|r| matches!(r, RouteSym::Ptr(_))));
                assert!(route.iter().any(|r| matches!(r, RouteSym::End)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v2_prepends_the_to_root_path() {
        use wormcast_sim::protocol::Command;
        let (topo, ud, routes, membership) = small();
        let tables = Arc::new(SwitchcastTables::build(&topo, &ud, &routes, &membership, false));
        let mut p = SwitchcastProtocol::new(
            HostId(5),
            SwitchcastVariant::RootedInterrupt,
            Arc::clone(&membership),
            tables,
        );
        let cmds = run_gen(&mut p, 5, 0);
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.sinks, 3, "root directive covers all members");
                let route = s.route_override.as_ref().expect("route");
                // Host 5 sits two switches from the root: two plain port
                // hops before the directive starts.
                assert!(matches!(route[0], RouteSym::Port(_)));
                assert!(matches!(route[1], RouteSym::Port(_)));
                assert!(!matches!(route[1], RouteSym::Ptr(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_route_ends_with_the_broadcast_byte() {
        use wormcast_sim::protocol::Command;
        let (topo, ud, routes, membership) = small();
        let tables = Arc::new(SwitchcastTables::build(&topo, &ud, &routes, &membership, false));
        let mut p = SwitchcastProtocol::new(
            HostId(2),
            SwitchcastVariant::Broadcast,
            Arc::clone(&membership),
            tables,
        );
        let cmds = run_gen(&mut p, 2, 0);
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.sinks, 6, "broadcast reaches every host");
                let route = s.route_override.as_ref().expect("route");
                assert_eq!(*route.last().unwrap(), RouteSym::Broadcast);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_member_origin_sends_nothing_in_v1() {
        let (topo, ud, routes, membership) = small();
        let tables = Arc::new(SwitchcastTables::build(&topo, &ud, &routes, &membership, true));
        let mut p = SwitchcastProtocol::new(
            HostId(1), // not in group 0
            SwitchcastVariant::RestrictedIdle,
            Arc::clone(&membership),
            tables,
        );
        let cmds = run_gen(&mut p, 1, 0);
        assert!(cmds.is_empty(), "{cmds:?}");
    }

    #[test]
    fn broadcast_ports_are_down_tree_plus_hosts() {
        let (topo, ud, _, _) = small();
        let ports = SwitchcastTables::broadcast_ports(&topo, &ud);
        assert_eq!(ports.len(), 3);
        // Switch 0 (root): down link to switch 1 + two host ports = 3.
        assert_eq!(ports[0].len(), 3);
        // Switch 1: down to switch 2 + two hosts = 3 (its up link excluded).
        assert_eq!(ports[1].len(), 3);
        // Switch 2 (leaf): just its two host ports.
        assert_eq!(ports[2].len(), 2);
    }
}
