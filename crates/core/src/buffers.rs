//! The two-buffer-class adapter pools (Figures 6 and 7).
//!
//! Buffer deadlock happens when multicast worms holding full buffers wait on
//! each other in a cycle (Figure 6). The paper's rule: multicasts propagate
//! from lower to higher host IDs, and at the (at most one) ID reversal a
//! worm switches from **class 1** to **class 2** buffers. A buffer request
//! then always points to a strictly higher `(host ID, class)` pair, so the
//! wait-for relation is a partial order — no cycles, no deadlock. The proof
//! obligation "each adapter can buffer two worms, one per class" shows up
//! here as the requirement that each class pool hold at least one maximum
//! worm.
//!
//! The pool also models the `[VLB96]` trick the paper adopts: worms may
//! overflow into the **host DMA buffer extension** when the on-card SRAM
//! class pool is full.

use serde::{Deserialize, Serialize};

/// Pool sizing. The Myrinet LANai has 128 KB SRAM of which ~25 KB is
/// usable worm buffering; the default splits it across the two classes and
/// allows a generous host-DMA extension.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Class-1 (pre-reversal) capacity in bytes.
    pub class1: u32,
    /// Class-2 (post-reversal) capacity in bytes.
    pub class2: u32,
    /// Shared host-DMA overflow capacity in bytes (0 disables).
    pub dma_extension: u32,
}

impl PoolConfig {
    /// The Myrinet-flavoured default: two 12 KB class pools on the card and
    /// a 64 KB host DMA extension.
    pub fn myrinet_default() -> Self {
        PoolConfig {
            class1: 12 * 1024,
            class2: 12 * 1024,
            dma_extension: 64 * 1024,
        }
    }

    /// A deliberately tight configuration for deadlock experiments: each
    /// class holds exactly one worm of `worm_bytes`, no DMA extension.
    pub fn tight(worm_bytes: u32) -> Self {
        PoolConfig {
            class1: worm_bytes,
            class2: worm_bytes,
            dma_extension: 0,
        }
    }

    /// Collapse both classes into one (rule OFF) with the same total
    /// capacity — the ablation's "single class" arm.
    pub fn single_class(self) -> Self {
        PoolConfig {
            class1: self.class1 + self.class2,
            class2: 0,
            dma_extension: self.dma_extension,
        }
    }
}

/// A granted reservation; return it to [`BufferPool::release`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    pub class: u8,
    /// Bytes taken from the class pool.
    pub from_class: u32,
    /// Bytes taken from the DMA extension.
    pub from_dma: u32,
}

impl Reservation {
    pub fn bytes(&self) -> u32 {
        self.from_class + self.from_dma
    }
}

/// Byte-accounted two-class buffer pool with DMA overflow.
///
/// ```
/// use wormcast_core::buffers::{BufferPool, PoolConfig};
/// let mut pool = BufferPool::new(PoolConfig::tight(1000));
/// let pre = pool.reserve(1, 1000).expect("class 1 fits one worm");
/// // Class 1 is now full, but a post-reversal worm still has room —
/// // the Figure 7 deadlock-freedom guarantee:
/// assert!(pool.reserve(1, 1).is_none());
/// let post = pool.reserve(2, 1000).expect("class 2 is independent");
/// pool.release(pre);
/// pool.release(post);
/// assert_eq!(pool.total_used(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    cfg: PoolConfig,
    used1: u32,
    used2: u32,
    used_dma: u32,
    /// Classes collapsed (deadlock-rule ablation): all requests draw from
    /// class 1 regardless of the worm's class field.
    single_class: bool,
}

impl BufferPool {
    pub fn new(cfg: PoolConfig) -> Self {
        BufferPool {
            cfg,
            used1: 0,
            used2: 0,
            used_dma: 0,
            single_class: false,
        }
    }

    /// Disable the two-class rule (ablation arm): both classes draw from a
    /// single merged pool.
    pub fn new_single_class(cfg: PoolConfig) -> Self {
        let mut p = Self::new(cfg.single_class());
        p.single_class = true;
        p
    }

    /// Try to reserve `bytes` in `class` (1 or 2), overflowing into the DMA
    /// extension if the class pool is short. All-or-nothing.
    pub fn reserve(&mut self, class: u8, bytes: u32) -> Option<Reservation> {
        assert!(class == 1 || class == 2, "buffer class must be 1 or 2");
        let class = if self.single_class { 1 } else { class };
        let (cap, used) = match class {
            1 => (self.cfg.class1, &mut self.used1),
            _ => (self.cfg.class2, &mut self.used2),
        };
        let class_free = cap.saturating_sub(*used);
        let from_class = bytes.min(class_free);
        let from_dma = bytes - from_class;
        if from_dma > self.cfg.dma_extension.saturating_sub(self.used_dma) {
            return None;
        }
        *used += from_class;
        self.used_dma += from_dma;
        Some(Reservation {
            class,
            from_class,
            from_dma,
        })
    }

    pub fn release(&mut self, r: Reservation) {
        match r.class {
            1 => {
                debug_assert!(self.used1 >= r.from_class, "double release");
                self.used1 -= r.from_class;
            }
            _ => {
                debug_assert!(self.used2 >= r.from_class, "double release");
                self.used2 -= r.from_class;
            }
        }
        debug_assert!(self.used_dma >= r.from_dma, "double release (dma)");
        self.used_dma -= r.from_dma;
    }

    pub fn used(&self, class: u8) -> u32 {
        match class {
            1 => self.used1,
            _ => self.used2,
        }
    }

    pub fn used_dma(&self) -> u32 {
        self.used_dma
    }

    pub fn total_used(&self) -> u32 {
        self.used1 + self.used2 + self.used_dma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut p = BufferPool::new(PoolConfig {
            class1: 100,
            class2: 50,
            dma_extension: 0,
        });
        let r = p.reserve(1, 60).expect("fits");
        assert_eq!(p.used(1), 60);
        let r2 = p.reserve(1, 40).expect("fits exactly");
        assert!(p.reserve(1, 1).is_none(), "class 1 exhausted");
        let r3 = p.reserve(2, 50).expect("class 2 independent");
        p.release(r);
        p.release(r2);
        p.release(r3);
        assert_eq!(p.total_used(), 0);
    }

    #[test]
    fn classes_are_independent() {
        let mut p = BufferPool::new(PoolConfig::tight(1000));
        assert!(p.reserve(1, 1000).is_some());
        assert!(p.reserve(1, 1).is_none());
        // Class 2 still has a full worm of space: the deadlock-freedom
        // guarantee.
        assert!(p.reserve(2, 1000).is_some());
    }

    #[test]
    fn dma_overflow_spills() {
        let mut p = BufferPool::new(PoolConfig {
            class1: 100,
            class2: 0,
            dma_extension: 80,
        });
        let r = p.reserve(1, 150).expect("spills into dma");
        assert_eq!(r.from_class, 100);
        assert_eq!(r.from_dma, 50);
        assert_eq!(p.used_dma(), 50);
        assert!(p.reserve(1, 40).is_none(), "only 30 dma left");
        let r2 = p.reserve(1, 30).expect("exactly the rest");
        p.release(r);
        p.release(r2);
        assert_eq!(p.total_used(), 0);
    }

    #[test]
    fn all_or_nothing() {
        let mut p = BufferPool::new(PoolConfig {
            class1: 10,
            class2: 0,
            dma_extension: 0,
        });
        assert!(p.reserve(1, 11).is_none());
        assert_eq!(p.used(1), 0, "failed reserve must not leak");
    }

    #[test]
    fn single_class_merges_pools() {
        let mut p = BufferPool::new_single_class(PoolConfig::tight(1000));
        // Merged capacity 2000, but class 2 requests draw from the same pool.
        assert!(p.reserve(1, 1500).is_some());
        assert!(p.reserve(2, 1000).is_none(), "no independent class 2");
        assert!(p.reserve(2, 500).is_some());
    }

    #[test]
    #[should_panic(expected = "class must be 1 or 2")]
    fn invalid_class_rejected() {
        let mut p = BufferPool::new(PoolConfig::tight(10));
        let _ = p.reserve(3, 1);
    }
}
