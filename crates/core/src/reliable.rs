//! Implicit buffer reservation with ACK/NACK and retransmission (Figure 5).
//!
//! The paper's "optimistic" alternative to a-priori credit reservation:
//! the worm header advertises its size; a hop that has buffer space accepts
//! the worm and returns an **ACK**, a hop that does not drops it and
//! returns a **NACK**; the sender — which always holds a complete copy —
//! retransmits after a timeout. Temporary buffer shortage therefore never
//! ties up *network* resources (the worm is never left backpressured in
//! the fabric), and with the two-buffer-class rule of [`crate::buffers`]
//! the buffer waits cannot cycle.
//!
//! [`ReliableFwd`] is the per-host engine the Hamiltonian and tree
//! protocols embed. It owns the buffer pool, the pending-retransmission
//! table, and the retry timers.

use crate::buffers::{BufferPool, PoolConfig, Reservation};
use crate::tags;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{Admission, ProtocolCtx, SendSpec};
use wormcast_sim::time::SimTime;
use wormcast_sim::worm::{MessageId, WormInstance, WormKind};

/// Reliability mode of a protocol instance.
#[derive(Clone, Copy, Debug)]
pub enum Reliability {
    /// Infinite buffering, fire-and-forget forwarding. This matches the
    /// paper's simulation experiments (Figures 10–11), where buffers are
    /// assumed sufficient and the fabric is lossless.
    None,
    /// Finite two-class pools with ACK/NACK and timeout retransmission.
    AckNack(AckNackConfig),
    /// Finite pools with **silent drops**: no NACK, no retransmission —
    /// the "less reliable multicast scheme with a (low) probability of
    /// dropping messages, but much simpler to implement" that the paper's
    /// conclusion proposes investigating. The buffer-contention ablation
    /// measures exactly when that probability stays low.
    FiniteDrop {
        pool: PoolConfig,
        single_class: bool,
    },
}

/// Parameters of the ACK/NACK mode.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AckNackConfig {
    pub pool: PoolConfig,
    /// Run the pool with the two-class rule disabled (deadlock ablation).
    pub single_class: bool,
    /// Base retransmission timeout in byte-times.
    pub retry_timeout: SimTime,
    /// Uniform random extra delay added per retry (the paper's "random
    /// time out" — avoids synchronised retry storms).
    pub retry_jitter: SimTime,
    /// Give up after this many retransmissions (livelock guard; a give-up
    /// is counted, not hidden).
    pub max_retries: u32,
}

impl AckNackConfig {
    pub fn myrinet_default() -> Self {
        AckNackConfig {
            pool: PoolConfig::myrinet_default(),
            single_class: false,
            retry_timeout: 20_000,
            retry_jitter: 10_000,
            max_retries: 50,
        }
    }
}

/// Counters for the ablation studies.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FwdStats {
    pub forwards: u64,
    pub acks: u64,
    pub nacks: u64,
    pub retries: u64,
    /// Forwards abandoned after `max_retries` (livelock / persistent
    /// overload indicator — zero whenever the two-class rule holds).
    pub gave_up: u64,
}

struct Held {
    res: Reservation,
    refs: u32,
}

struct Pending {
    spec: SendSpec,
    retries: u32,
    hold: Option<MessageId>,
}

/// Engine tokens carry the top bit; protocols must route unknown timer
/// tokens into [`ReliableFwd::handle_timer`].
const ENGINE_TOKEN_BIT: u64 = 1 << 63;

/// Per-host reliable forwarding engine.
pub struct ReliableFwd {
    mode: Reliability,
    pool: Option<BufferPool>,
    held: HashMap<MessageId, Held>,
    pending: HashMap<u64, Pending>,
    /// Token registry: `(msg, dest)` → the timer token of its pending
    /// retransmission entry. Tokens are allocated from a local counter in
    /// this host's own event order (message ids are too wide to pack into
    /// a token alongside the destination), so allocation is deterministic
    /// per host — which is all a sharded run needs.
    tok_of: HashMap<(MessageId, HostId), u64>,
    next_tok: u64,
    /// Messages already processed here (duplicate suppression for
    /// retransmitted worms — e.g. after a lost ACK). Only populated in
    /// ACK/NACK mode, where retransmissions exist.
    seen: std::collections::HashSet<MessageId>,
    pub stats: FwdStats,
}

impl ReliableFwd {
    pub fn new(mode: Reliability) -> Self {
        let pool = match mode {
            Reliability::None => None,
            Reliability::AckNack(AckNackConfig {
                pool,
                single_class,
                ..
            })
            | Reliability::FiniteDrop { pool, single_class } => Some(if single_class {
                BufferPool::new_single_class(pool)
            } else {
                BufferPool::new(pool)
            }),
        };
        ReliableFwd {
            mode,
            pool,
            held: HashMap::new(),
            pending: HashMap::new(),
            tok_of: HashMap::new(),
            next_tok: 0,
            seen: std::collections::HashSet::new(),
            stats: FwdStats::default(),
        }
    }

    /// Record that `msg` has been fully processed at this host. Returns
    /// true if it was already processed before — the worm is a duplicate
    /// (retransmission after a lost ACK) and must be acknowledged but not
    /// delivered or forwarded again. Always false in `Reliability::None`
    /// (no retransmissions exist, so no memory is spent).
    pub fn is_duplicate(&mut self, msg: MessageId) -> bool {
        match self.mode {
            // No retransmissions exist in these modes; save the memory.
            Reliability::None | Reliability::FiniteDrop { .. } => false,
            Reliability::AckNack(_) => !self.seen.insert(msg),
        }
    }

    /// Admission check for an arriving data worm (call from `on_header`).
    /// Accepting reserves pool space under the worm's buffer class;
    /// refusing NACKs the upstream hop immediately (the worm is dropped).
    /// The ACK is sent later, by [`Self::acknowledge`], once the worm has
    /// fully arrived with a good checksum — so a worm corrupted in transit
    /// is retransmitted by the sender's timeout like any other loss.
    pub fn admit(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) -> Admission {
        debug_assert!(worm.meta.kind.is_data(), "admit() is for data worms");
        if let Reliability::FiniteDrop { .. } = self.mode {
            // Silent-drop mode: reserve or drop, no control traffic.
            let pool = self.pool.as_mut().expect("pool exists");
            let bytes = worm.meta.advertised_size.max(worm.payload_len);
            return match pool.reserve(worm.meta.buffer_class, bytes) {
                Some(res) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = self.held.entry(worm.meta.msg) {
                        e.insert(Held { res, refs: 1 });
                    } else {
                        pool.release(res);
                    }
                    Admission::Accept
                }
                None => Admission::Refuse,
            };
        }
        let Reliability::AckNack(_) = self.mode else {
            return Admission::Accept;
        };
        // A retransmission of a message this host already fully processed
        // (a lost ACK) needs no buffer at all: it will be re-ACKed on
        // arrival and discarded.
        if self.seen.contains(&worm.meta.msg) {
            return Admission::Accept;
        }
        let pool = self.pool.as_mut().expect("pool exists in AckNack mode");
        let bytes = worm.meta.advertised_size.max(worm.payload_len);
        match pool.reserve(worm.meta.buffer_class, bytes) {
            Some(res) => {
                // One reference for "being received / processed locally";
                // forwards add theirs via `forward`.
                // A retransmission may arrive while the original's buffer
                // is still held: reuse the reservation, no extra reference.
                if let std::collections::hash_map::Entry::Vacant(e) = self.held.entry(worm.meta.msg) {
                    e.insert(Held { res, refs: 1 });
                } else {
                    pool.release(res);
                }
                Admission::Accept
            }
            None => {
                ctx.send(SendSpec::control(
                    tags::NACK,
                    worm.meta.msg,
                    ctx.host,
                    worm.meta.injector,
                ));
                Admission::Refuse
            }
        }
    }

    /// Acknowledge a fully received (checksum-good) data worm to the hop
    /// that sent it. Call from `on_worm_received` before forwarding.
    pub fn acknowledge(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        if let Reliability::AckNack(_) = self.mode {
            ctx.send(SendSpec::control(
                tags::ACK,
                worm.meta.msg,
                ctx.host,
                worm.meta.injector,
            ));
        }
    }

    /// Forward (or originate) a worm. In ACK/NACK mode the spec is kept for
    /// retransmission until the downstream hop ACKs. `hold` names the held
    /// local buffer backing the copy (None for origin sends, which live in
    /// host memory).
    pub fn forward(&mut self, ctx: &mut ProtocolCtx, spec: SendSpec, hold: Option<MessageId>) {
        self.stats.forwards += 1;
        if let Reliability::AckNack(cfg) = self.mode {
            if let Some(h) = hold {
                if let Some(held) = self.held.get_mut(&h) {
                    held.refs += 1;
                }
            }
            let tok = match self.tok_of.entry((spec.msg, spec.dest)) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let tok = ENGINE_TOKEN_BIT | self.next_tok;
                    self.next_tok += 1;
                    *e.insert(tok)
                }
            };
            let mut stored = spec.clone();
            stored.follow = None; // retransmissions can never cut-through
            self.pending.insert(tok, Pending {
                spec: stored,
                retries: 0,
                hold,
            });
            let delay = self.retry_delay(ctx, &cfg);
            ctx.set_timer(delay, tok);
        }
        ctx.send(spec);
    }

    fn retry_delay(&self, ctx: &mut ProtocolCtx, cfg: &AckNackConfig) -> SimTime {
        use rand::Rng;
        cfg.retry_timeout
            + if cfg.retry_jitter > 0 {
                ctx.rng.gen_range(0..=cfg.retry_jitter)
            } else {
                0
            }
    }

    /// Call when a received worm has been fully processed locally (from
    /// `on_worm_received`, after issuing any forwards). Releases the
    /// reception reference on the held buffer.
    pub fn done_receiving(&mut self, msg: MessageId) {
        self.unref(msg);
    }

    /// Handle an incoming control worm. Returns true if it was an engine
    /// control worm (ACK/NACK) and has been consumed.
    pub fn on_control(&mut self, _ctx: &mut ProtocolCtx, worm: &WormInstance) -> bool {
        let WormKind::Control(tag) = worm.meta.kind else {
            return false;
        };
        match tag {
            tags::ACK => {
                if let Some(tok) = self.tok_of.remove(&(worm.meta.msg, worm.meta.injector)) {
                    if let Some(p) = self.pending.remove(&tok) {
                        self.stats.acks += 1;
                        if let Some(h) = p.hold {
                            self.unref(h);
                        }
                    }
                }
                true
            }
            tags::NACK => {
                // The downstream hop dropped the worm; the retry timer will
                // retransmit. (The paper retransmits "after a time out",
                // not immediately — an immediate retry would mostly find
                // the same full buffer.)
                self.stats.nacks += 1;
                true
            }
            _ => false,
        }
    }

    /// Handle a timer token. Returns true if it was an engine token.
    pub fn handle_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) -> bool {
        if token & ENGINE_TOKEN_BIT == 0 {
            return false;
        }
        let Reliability::AckNack(cfg) = self.mode else {
            return true; // stale token after reconfiguration; ignore
        };
        let Some(p) = self.pending.get_mut(&token) else {
            return true; // already ACKed
        };
        if p.retries >= cfg.max_retries {
            let p = self.pending.remove(&token).expect("present");
            self.tok_of.remove(&(p.spec.msg, p.spec.dest));
            self.stats.gave_up += 1;
            if let Some(h) = p.hold {
                self.unref(h);
            }
            return true;
        }
        p.retries += 1;
        self.stats.retries += 1;
        let spec = p.spec.clone();
        let delay = self.retry_delay(ctx, &cfg);
        ctx.set_timer(delay, token);
        ctx.send(spec);
        true
    }

    fn unref(&mut self, msg: MessageId) {
        if let Some(h) = self.held.get_mut(&msg) {
            h.refs -= 1;
            if h.refs == 0 {
                let held = self.held.remove(&msg).expect("present");
                if let Some(pool) = self.pool.as_mut() {
                    pool.release(held.res);
                }
            }
        }
    }

    /// Outstanding unACKed forwards (drain checks in tests).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Bytes currently held in the pool (0 in `Reliability::None`).
    pub fn pool_used(&self) -> u32 {
        self.pool.as_ref().map_or(0, |p| p.total_used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;
    use wormcast_sim::worm::{WormId, WormMeta};

    fn ctx_parts() -> (SmallRng, Vec<Command>) {
        (SmallRng::seed_from_u64(1), Vec::new())
    }

    fn worm(msg: u64, injector: u32, class: u8, size: u32) -> WormInstance {
        WormInstance {
            id: WormId(0),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Multicast { group: 0 },
                msg: MessageId(msg),
                injector: HostId(injector),
                origin: HostId(injector),
                dest: HostId(9),
                seq: 0,
                hops_left: 3,
                buffer_class: class,
                frag_index: 0,
                frag_last: true,
                advertised_size: size,
                stage: 0,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: size,
            created: 0,
            injected: 0,
        }
    }

    fn acknack(pool: PoolConfig) -> Reliability {
        Reliability::AckNack(AckNackConfig {
            pool,
            single_class: false,
            retry_timeout: 100,
            retry_jitter: 0,
            max_retries: 3,
        })
    }

    #[test]
    fn none_mode_accepts_everything() {
        let mut f = ReliableFwd::new(Reliability::None);
        let (mut rng, mut cmds) = ctx_parts();
        let mut ctx = ProtocolCtx::new(0, HostId(9), 0, &mut rng, &mut cmds);
        let w = worm(1, 2, 1, 1_000_000);
        assert_eq!(f.admit(&mut ctx, &w), Admission::Accept);
        assert!(cmds.is_empty(), "no ACK traffic in None mode");
    }

    #[test]
    fn admit_reserves_and_acks() {
        let mut f = ReliableFwd::new(acknack(PoolConfig::tight(500)));
        let (mut rng, mut cmds) = ctx_parts();
        let w = worm(1, 2, 1, 400);
        {
            let mut ctx = ProtocolCtx::new(0, HostId(9), 0, &mut rng, &mut cmds);
            assert_eq!(f.admit(&mut ctx, &w), Admission::Accept);
            assert_eq!(f.pool_used(), 400);
        }
        // No ACK yet: it is sent on complete reception via acknowledge().
        assert!(cmds.is_empty(), "unexpected {cmds:?}");
        {
            let mut ctx = ProtocolCtx::new(0, HostId(9), 0, &mut rng, &mut cmds);
            f.acknowledge(&mut ctx, &w);
        }
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.kind, WormKind::Control(tags::ACK));
                assert_eq!(s.dest, HostId(2));
                assert!(s.priority);
            }
            other => panic!("unexpected commands {other:?}"),
        }
        // Second worm of the same class does not fit: NACK.
        cmds.clear();
        let mut ctx = ProtocolCtx::new(0, HostId(9), 0, &mut rng, &mut cmds);
        let w2 = worm(2, 3, 1, 400);
        assert_eq!(f.admit(&mut ctx, &w2), Admission::Refuse);
        match &cmds[..] {
            [Command::Send(s)] => assert_eq!(s.kind, WormKind::Control(tags::NACK)),
            other => panic!("unexpected commands {other:?}"),
        }
        // ... but the other class still has room (two-class guarantee).
        cmds.clear();
        let mut ctx = ProtocolCtx::new(0, HostId(9), 0, &mut rng, &mut cmds);
        let w3 = worm(3, 3, 2, 400);
        assert_eq!(f.admit(&mut ctx, &w3), Admission::Accept);
    }

    #[test]
    fn buffer_released_after_receive_and_ack() {
        let mut f = ReliableFwd::new(acknack(PoolConfig::tight(500)));
        let (mut rng, mut cmds) = ctx_parts();
        let w = worm(1, 2, 1, 400);
        {
            let mut ctx = ProtocolCtx::new(0, HostId(5), 0, &mut rng, &mut cmds);
            assert_eq!(f.admit(&mut ctx, &w), Admission::Accept);
            // Forward the copy onward to host 7, backed by the held buffer.
            let spec = SendSpec::forward(&w, HostId(7));
            f.forward(&mut ctx, spec, Some(MessageId(1)));
        }
        // Local processing finished: buffer still held by the forward.
        f.done_receiving(MessageId(1));
        assert_eq!(f.pool_used(), 400);
        assert_eq!(f.pending_count(), 1);
        // ACK arrives from host 7.
        let mut ack = worm(1, 7, 1, 0);
        ack.meta.kind = WormKind::Control(tags::ACK);
        {
            let mut ctx = ProtocolCtx::new(10, HostId(5), 0, &mut rng, &mut cmds);
            assert!(f.on_control(&mut ctx, &ack));
        }
        assert_eq!(f.pool_used(), 0, "buffer released after receive + ack");
        assert_eq!(f.pending_count(), 0);
        assert_eq!(f.stats.acks, 1);
    }

    #[test]
    fn timer_retransmits_until_max_then_gives_up() {
        let mut f = ReliableFwd::new(acknack(PoolConfig::tight(500)));
        let (mut rng, mut cmds) = ctx_parts();
        let w = worm(1, 2, 1, 400);
        // First token this engine allocates.
        let tok = ENGINE_TOKEN_BIT;
        {
            let mut ctx = ProtocolCtx::new(0, HostId(5), 0, &mut rng, &mut cmds);
            assert_eq!(f.admit(&mut ctx, &w), Admission::Accept);
            f.forward(&mut ctx, SendSpec::forward(&w, HostId(7)), Some(MessageId(1)));
        }
        f.done_receiving(MessageId(1));
        for i in 0..3 {
            cmds.clear();
            let mut ctx = ProtocolCtx::new(100 * (i + 1), HostId(5), 0, &mut rng, &mut cmds);
            assert!(f.handle_timer(&mut ctx, tok));
            assert!(
                cmds.iter()
                    .any(|c| matches!(c, Command::Send(s) if s.dest == HostId(7))),
                "retry {i} must resend"
            );
        }
        assert_eq!(f.stats.retries, 3);
        // Fourth firing exceeds max_retries: give up, release the buffer.
        cmds.clear();
        let mut ctx = ProtocolCtx::new(1000, HostId(5), 0, &mut rng, &mut cmds);
        assert!(f.handle_timer(&mut ctx, tok));
        assert_eq!(f.stats.gave_up, 1);
        assert_eq!(f.pending_count(), 0);
        assert_eq!(f.pool_used(), 0);
    }

    #[test]
    fn non_engine_tokens_are_ignored() {
        let mut f = ReliableFwd::new(Reliability::None);
        let (mut rng, mut cmds) = ctx_parts();
        let mut ctx = ProtocolCtx::new(0, HostId(0), 0, &mut rng, &mut cmds);
        assert!(!f.handle_timer(&mut ctx, 42));
    }

    #[test]
    fn nack_counts_but_defers_to_timer() {
        let mut f = ReliableFwd::new(acknack(PoolConfig::tight(500)));
        let (mut rng, mut cmds) = ctx_parts();
        let w = worm(1, 2, 1, 400);
        {
            let mut ctx = ProtocolCtx::new(0, HostId(5), 0, &mut rng, &mut cmds);
            assert_eq!(f.admit(&mut ctx, &w), Admission::Accept);
            f.forward(&mut ctx, SendSpec::forward(&w, HostId(7)), Some(MessageId(1)));
        }
        let n_cmds = cmds.len();
        let mut nack = worm(1, 7, 1, 0);
        nack.meta.kind = WormKind::Control(tags::NACK);
        {
            let mut ctx = ProtocolCtx::new(5, HostId(5), 0, &mut rng, &mut cmds);
            assert!(f.on_control(&mut ctx, &nack));
        }
        assert_eq!(f.stats.nacks, 1);
        assert_eq!(cmds.len(), n_cmds, "no immediate retransmit");
        assert_eq!(f.pending_count(), 1, "still pending for the timer");
    }
}
