//! Multicasting on a rooted tree (Section 6).
//!
//! The tree is heap-ordered — every child's ID exceeds its parent's
//! (Figure 9) — and built over the host-connectivity graph by
//! `wormcast_topo::tree`. Two operating modes, both from the paper:
//!
//! * [`TreeMode::RootSerialized`] — the originator first sends the message
//!   to the **root** (the lowest-ID member), which starts the multicast
//!   down the tree. All forwarding goes parent → child, i.e. towards
//!   strictly higher IDs: buffer requests cannot cycle with a single
//!   class, and the root serialises all of the group's messages — total
//!   ordering for free.
//! * [`TreeMode::BroadcastFromOrigin`] — the originator broadcasts on the
//!   tree directly: each adapter forwards to all tree neighbours except
//!   the one the worm arrived on. A copy *climbs* (towards lower IDs)
//!   for a while and then *descends*; it inverts direction at most once,
//!   so the two-buffer-class rule (class 1 climbing, class 2 descending)
//!   keeps waits acyclic. Lower latency, no total ordering.
//!
//! An adapter with several children transmits to them **sequentially**
//! (the adapter has a single network port); with `cut_through_first` the
//! first copy streams in lockstep with reception and the rest follow from
//! the reassembled buffer — exactly the behaviour the paper describes.

use crate::reliable::{Reliability, ReliableFwd};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{
    Admission, AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::worm::{WormId, WormInstance, WormKind};
use wormcast_topo::tree::MulticastTree;

/// Relay from the originator to the root (RootSerialized mode).
const STAGE_SEED: u8 = 1;
/// A copy climbing towards lower IDs (BroadcastFromOrigin mode).
const STAGE_CLIMB: u8 = 2;
/// A copy descending towards higher IDs.
const STAGE_DESCEND: u8 = 3;

/// Tree protocol operating mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeMode {
    RootSerialized,
    BroadcastFromOrigin,
}

/// Tree protocol configuration.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    pub mode: TreeMode,
    /// Stream the first child's copy in lockstep with reception when the
    /// port is free (the others always wait for full reassembly).
    pub cut_through_first: bool,
    pub reliability: Reliability,
}

impl TreeConfig {
    /// Store-and-forward, root-serialized, infinite buffers — Figure 10's
    /// tree curve.
    pub fn store_and_forward() -> Self {
        TreeConfig {
            mode: TreeMode::RootSerialized,
            cut_through_first: false,
            reliability: Reliability::None,
        }
    }
}

/// Per-host rooted-tree protocol instance.
pub struct TreeProtocol {
    host: HostId,
    cfg: TreeConfig,
    trees: Arc<HashMap<u8, MulticastTree>>,
    fwd: ReliableFwd,
    /// Root-side per-group sequence numbers (RootSerialized).
    seq: HashMap<u8, u32>,
    /// Receiver-side sequence cursors and reorder buffers (RootSerialized
    /// total ordering survives retransmission reordering).
    next_deliver: HashMap<u8, u32>,
    pending_deliver: HashMap<u8, std::collections::BTreeMap<u32, Option<wormcast_sim::worm::MessageId>>>,
    /// Worms whose first-child copy was already issued at header time.
    forwarded_at_header: HashSet<WormId>,
}

impl TreeProtocol {
    pub fn new(
        host: HostId,
        cfg: TreeConfig,
        trees: Arc<HashMap<u8, MulticastTree>>,
    ) -> Self {
        TreeProtocol {
            host,
            cfg,
            trees,
            fwd: ReliableFwd::new(cfg.reliability),
            seq: HashMap::new(),
            next_deliver: HashMap::new(),
            pending_deliver: HashMap::new(),
            forwarded_at_header: HashSet::new(),
        }
    }

    /// Sequence-ordered local delivery (see the Hamiltonian twin).
    fn deliver_in_order(
        &mut self,
        ctx: &mut ProtocolCtx,
        group: u8,
        seq: u32,
        msg: Option<wormcast_sim::worm::MessageId>,
    ) {
        if seq == 0 {
            if let Some(m) = msg {
                ctx.deliver_local(m);
            }
            return;
        }
        let next = self.next_deliver.entry(group).or_insert(1);
        if seq < *next {
            return;
        }
        let pending = self.pending_deliver.entry(group).or_default();
        pending.insert(seq, msg);
        while let Some(entry) = pending.remove(&*next) {
            if let Some(m) = entry {
                ctx.deliver_local(m);
            }
            *next += 1;
        }
    }

    pub fn fwd_stats(&self) -> crate::reliable::FwdStats {
        self.fwd.stats
    }

    fn tree(&self, group: u8) -> &MulticastTree {
        self.trees
            .get(&group)
            .unwrap_or_else(|| panic!("no tree installed for group {group}"))
    }

    /// Children copies of a descending worm at this host. `skip_first` when
    /// the first copy was already issued via cut-through.
    fn descend_specs(&self, worm: &WormInstance, group: u8, skip_first: bool) -> Vec<SendSpec> {
        self.tree(group)
            .children(self.host)
            .iter()
            .skip(usize::from(skip_first))
            .map(|&c| {
                let mut spec = SendSpec::forward(worm, c);
                spec.stage = STAGE_DESCEND;
                spec.buffer_class = match self.cfg.mode {
                    TreeMode::RootSerialized => 1, // IDs only ever ascend
                    TreeMode::BroadcastFromOrigin => 2,
                };
                spec
            })
            .collect()
    }

    /// Forward a broadcast-mode worm to all tree neighbours except the one
    /// it arrived from.
    fn broadcast_specs(&self, worm: &WormInstance, group: u8, from: Option<HostId>) -> Vec<SendSpec> {
        let tree = self.tree(group);
        let mut specs = Vec::new();
        if let Some(p) = tree.parent(self.host) {
            if Some(p) != from {
                let mut spec = SendSpec::forward(worm, p);
                spec.stage = STAGE_CLIMB;
                spec.buffer_class = 1;
                specs.push(spec);
            }
        }
        for &c in tree.children(self.host) {
            if Some(c) != from {
                let mut spec = SendSpec::forward(worm, c);
                spec.stage = STAGE_DESCEND;
                spec.buffer_class = 2;
                specs.push(spec);
            }
        }
        specs
    }

    fn start_multicast(&mut self, ctx: &mut ProtocolCtx, msg: &AppMessage, group: u8) {
        let tree = self.trees.get(&group);
        let Some(tree) = tree else {
            return;
        };
        match self.cfg.mode {
            TreeMode::RootSerialized => {
                if self.host == tree.root() {
                    let seq = self.seq.entry(group).or_insert(0);
                    *seq += 1;
                    let seq = *seq;
                    for &c in tree.children(self.host) {
                        let mut spec = SendSpec::data(msg, c, WormKind::Multicast { group });
                        spec.stage = STAGE_DESCEND;
                        spec.seq = seq;
                        spec.buffer_class = 1;
                        self.fwd.forward(ctx, spec, None);
                    }
                } else {
                    let root = tree.root();
                    let mut spec = SendSpec::data(msg, root, WormKind::Multicast { group });
                    spec.stage = STAGE_SEED;
                    // Relaying to the root goes to a lower ID: class 2 under
                    // the ordering rule (a seed is a unicast-like transfer).
                    spec.buffer_class = 2;
                    self.fwd.forward(ctx, spec, None);
                }
            }
            TreeMode::BroadcastFromOrigin => {
                if !tree.contains(self.host) {
                    // Non-member originators seed the root instead.
                    let root = tree.root();
                    let mut spec = SendSpec::data(msg, root, WormKind::Multicast { group });
                    spec.stage = STAGE_SEED;
                    spec.buffer_class = 2;
                    self.fwd.forward(ctx, spec, None);
                    return;
                }
                // Build a synthetic "worm" spec set from the message.
                let tree_neighbors = tree.neighbors_except(self.host, None);
                for n in tree_neighbors {
                    let climbing = Some(n) == tree.parent(self.host);
                    let mut spec = SendSpec::data(msg, n, WormKind::Multicast { group });
                    spec.stage = if climbing { STAGE_CLIMB } else { STAGE_DESCEND };
                    spec.buffer_class = if climbing { 1 } else { 2 };
                    self.fwd.forward(ctx, spec, None);
                }
            }
        }
    }

    fn handle_multicast(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance, group: u8) {
        self.fwd.acknowledge(ctx, worm);
        if self.fwd.is_duplicate(worm.meta.msg) {
            // Re-ACKed above; the first copy's processing (and its buffer
            // accounting) already happened.
            return;
        }
        let from = worm.meta.injector;
        match (self.cfg.mode, worm.meta.stage) {
            (TreeMode::RootSerialized, STAGE_SEED) => {
                debug_assert_eq!(self.host, self.tree(group).root());
                if worm.meta.origin != self.host {
                    ctx.deliver_local(worm.meta.msg);
                }
                let seq = self.seq.entry(group).or_insert(0);
                *seq += 1;
                let seq = *seq;
                for mut spec in self.descend_specs(worm, group, false) {
                    spec.stage = STAGE_DESCEND;
                    spec.seq = seq;
                    self.fwd.forward(ctx, spec, Some(worm.meta.msg));
                }
                self.fwd.done_receiving(worm.meta.msg);
            }
            (TreeMode::RootSerialized, _) => {
                if worm.meta.origin != self.host {
                    self.deliver_in_order(ctx, group, worm.meta.seq, Some(worm.meta.msg));
                } else {
                    self.deliver_in_order(ctx, group, worm.meta.seq, None);
                }
                let skip_first = self.forwarded_at_header.remove(&worm.id);
                for spec in self.descend_specs(worm, group, skip_first) {
                    self.fwd.forward(ctx, spec, Some(worm.meta.msg));
                }
                self.fwd.done_receiving(worm.meta.msg);
            }
            (TreeMode::BroadcastFromOrigin, STAGE_SEED) => {
                // Non-member origin seeded the root: broadcast from here.
                debug_assert_eq!(self.host, self.tree(group).root());
                ctx.deliver_local(worm.meta.msg);
                for spec in self.broadcast_specs(worm, group, None) {
                    self.fwd.forward(ctx, spec, Some(worm.meta.msg));
                }
                self.fwd.done_receiving(worm.meta.msg);
            }
            (TreeMode::BroadcastFromOrigin, _) => {
                if worm.meta.origin != self.host {
                    ctx.deliver_local(worm.meta.msg);
                }
                let skip_first = self.forwarded_at_header.remove(&worm.id);
                let specs = self.broadcast_specs(worm, group, Some(from));
                for spec in specs.into_iter().skip(usize::from(skip_first)) {
                    self.fwd.forward(ctx, spec, Some(worm.meta.msg));
                }
                self.fwd.done_receiving(worm.meta.msg);
            }
        }
    }
}

impl AdapterProtocol for TreeProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        match msg.dest {
            Destination::Unicast(d) => {
                debug_assert_ne!(d, self.host);
                let spec = SendSpec::data(&msg, d, WormKind::Unicast);
                self.fwd.forward(ctx, spec, None);
            }
            Destination::Multicast(g) => self.start_multicast(ctx, &msg, g),
        }
    }

    fn on_header(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) -> Admission {
        match worm.meta.kind {
            WormKind::Control(_) | WormKind::Unicast => Admission::Accept,
            WormKind::Multicast { group } => {
                let adm = self.fwd.admit(ctx, worm);
                if adm == Admission::Accept
                    && self.cfg.cut_through_first
                    && worm.meta.stage != STAGE_SEED
                    && ctx.tx_backlog == 0
                {
                    let first = match self.cfg.mode {
                        TreeMode::RootSerialized => {
                            self.descend_specs(worm, group, false).into_iter().next()
                        }
                        TreeMode::BroadcastFromOrigin => self
                            .broadcast_specs(worm, group, Some(worm.meta.injector))
                            .into_iter()
                            .next(),
                    };
                    if let Some(mut spec) = first {
                        spec.follow = Some(worm.id);
                        self.fwd.forward(ctx, spec, Some(worm.meta.msg));
                        self.forwarded_at_header.insert(worm.id);
                    }
                }
                adm
            }
            WormKind::SwitchMulticast { .. } => {
                unreachable!("switch-level multicast worm at a host-adapter protocol")
            }
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        match worm.meta.kind {
            WormKind::Control(_) => {
                let consumed = self.fwd.on_control(ctx, worm);
                debug_assert!(consumed, "unknown control worm at tree protocol");
            }
            WormKind::Unicast => ctx.deliver_local(worm.meta.msg),
            WormKind::Multicast { group } => self.handle_multicast(ctx, worm, group),
            WormKind::SwitchMulticast { .. } => {
                unreachable!("switch-level multicast worm at a host-adapter protocol")
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) {
        let handled = self.fwd.handle_timer(ctx, token);
        debug_assert!(handled, "tree protocol sets no timers of its own");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;
    use wormcast_sim::worm::{MessageId, WormMeta};
    use wormcast_topo::tree::TreeShape;

    /// Members {1,2,3,4,5} as a binary heap: 1 -> {2,3}, 2 -> {4,5}.
    fn setup() -> Arc<HashMap<u8, MulticastTree>> {
        let members: Vec<HostId> = (1..=5).map(HostId).collect();
        let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
        let mut trees = HashMap::new();
        trees.insert(0u8, tree);
        Arc::new(trees)
    }

    fn run_cb<F: FnOnce(&mut TreeProtocol, &mut ProtocolCtx)>(
        p: &mut TreeProtocol,
        host: HostId,
        backlog: usize,
        f: F,
    ) -> Vec<Command> {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(0, host, backlog, &mut rng, &mut cmds);
        f(p, &mut ctx);
        cmds
    }

    fn msg(origin: u32) -> AppMessage {
        AppMessage {
            msg: MessageId(1),
            origin: HostId(origin),
            dest: Destination::Multicast(0),
            payload_len: 400,
            created: 0,
        }
    }

    fn worm(origin: u32, injector: u32, stage: u8) -> WormInstance {
        WormInstance {
            id: WormId(11),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Multicast { group: 0 },
                msg: MessageId(1),
                injector: HostId(injector),
                origin: HostId(origin),
                dest: HostId(0),
                seq: 0,
                hops_left: 0,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: 400,
                stage,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 400,
            created: 0,
            injected: 0,
        }
    }

    fn sends(cmds: &[Command]) -> Vec<(HostId, u8, u8)> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Send(s) => Some((s.dest, s.stage, s.buffer_class)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn non_root_origin_seeds_the_root() {
        let t = setup();
        let mut p = TreeProtocol::new(HostId(4), TreeConfig::store_and_forward(), t);
        let cmds = run_cb(&mut p, HostId(4), 0, |p, ctx| p.on_generate(ctx, msg(4)));
        assert_eq!(sends(&cmds), vec![(HostId(1), STAGE_SEED, 2)]);
    }

    #[test]
    fn root_origin_multicasts_to_children() {
        let t = setup();
        let mut p = TreeProtocol::new(HostId(1), TreeConfig::store_and_forward(), t);
        let cmds = run_cb(&mut p, HostId(1), 0, |p, ctx| p.on_generate(ctx, msg(1)));
        assert_eq!(
            sends(&cmds),
            vec![
                (HostId(2), STAGE_DESCEND, 1),
                (HostId(3), STAGE_DESCEND, 1)
            ]
        );
    }

    #[test]
    fn root_on_seed_delivers_stamps_seq_and_descends() {
        let t = setup();
        let mut p = TreeProtocol::new(HostId(1), TreeConfig::store_and_forward(), t);
        let w = worm(4, 4, STAGE_SEED);
        let cmds = run_cb(&mut p, HostId(1), 0, |p, ctx| p.on_worm_received(ctx, &w));
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
        let s = sends(&cmds);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|&(_, stage, class)| stage == STAGE_DESCEND && class == 1));
    }

    #[test]
    fn interior_member_delivers_and_descends() {
        let t = setup();
        let mut p = TreeProtocol::new(HostId(2), TreeConfig::store_and_forward(), t);
        let w = worm(4, 1, STAGE_DESCEND);
        let cmds = run_cb(&mut p, HostId(2), 0, |p, ctx| p.on_worm_received(ctx, &w));
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
        assert_eq!(
            sends(&cmds),
            vec![
                (HostId(4), STAGE_DESCEND, 1),
                (HostId(5), STAGE_DESCEND, 1)
            ]
        );
    }

    #[test]
    fn leaf_only_delivers() {
        let t = setup();
        let mut p = TreeProtocol::new(HostId(5), TreeConfig::store_and_forward(), t);
        let w = worm(4, 2, STAGE_DESCEND);
        let cmds = run_cb(&mut p, HostId(5), 0, |p, ctx| p.on_worm_received(ctx, &w));
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
    }

    #[test]
    fn origin_skips_its_own_delivery_in_descend() {
        let t = setup();
        let mut p = TreeProtocol::new(HostId(2), TreeConfig::store_and_forward(), t);
        let w = worm(2, 1, STAGE_DESCEND); // message 2 originated, seeded via root
        let cmds = run_cb(&mut p, HostId(2), 0, |p, ctx| p.on_worm_received(ctx, &w));
        assert!(
            !cmds.iter().any(|c| matches!(c, Command::DeliverLocal { .. })),
            "origin must not deliver its own message"
        );
        assert_eq!(sends(&cmds).len(), 2, "but still forwards to children");
    }

    #[test]
    fn broadcast_mode_origin_climbs_and_descends() {
        let t = setup();
        let cfg = TreeConfig {
            mode: TreeMode::BroadcastFromOrigin,
            cut_through_first: false,
            reliability: Reliability::None,
        };
        let mut p = TreeProtocol::new(HostId(2), cfg, t);
        let cmds = run_cb(&mut p, HostId(2), 0, |p, ctx| p.on_generate(ctx, msg(2)));
        assert_eq!(
            sends(&cmds),
            vec![
                (HostId(1), STAGE_CLIMB, 1),
                (HostId(4), STAGE_DESCEND, 2),
                (HostId(5), STAGE_DESCEND, 2)
            ]
        );
    }

    #[test]
    fn broadcast_mode_excludes_arrival_edge() {
        let t = setup();
        let cfg = TreeConfig {
            mode: TreeMode::BroadcastFromOrigin,
            cut_through_first: false,
            reliability: Reliability::None,
        };
        // Worm arrives at root 1 from child 2 (climbing): forward only to 3.
        let mut p = TreeProtocol::new(HostId(1), cfg, t);
        let w = worm(2, 2, STAGE_CLIMB);
        let cmds = run_cb(&mut p, HostId(1), 0, |p, ctx| p.on_worm_received(ctx, &w));
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
        assert_eq!(sends(&cmds), vec![(HostId(3), STAGE_DESCEND, 2)]);
    }

    #[test]
    fn cut_through_first_child_only() {
        let t = setup();
        let cfg = TreeConfig {
            cut_through_first: true,
            ..TreeConfig::store_and_forward()
        };
        let mut p = TreeProtocol::new(HostId(2), cfg, t);
        let w = worm(4, 1, STAGE_DESCEND);
        let header_cmds = run_cb(&mut p, HostId(2), 0, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w), Admission::Accept);
        });
        let hs = sends(&header_cmds);
        assert_eq!(hs.len(), 1, "only the first child cut-throughs");
        assert_eq!(hs[0].0, HostId(4));
        let rx_cmds = run_cb(&mut p, HostId(2), 1, |p, ctx| p.on_worm_received(ctx, &w));
        let rs = sends(&rx_cmds);
        assert_eq!(rs, vec![(HostId(5), STAGE_DESCEND, 1)], "second child after reassembly");
    }
}
