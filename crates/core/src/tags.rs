//! Control-worm tags.
//!
//! Control worms are tiny priority worms (`WormKind::Control(tag)`); the tag
//! says what they mean. Tags are partitioned per protocol family so a
//! mis-delivered control worm is detected instead of misinterpreted.

/// Positive acknowledgement of a forwarded worm (implicit reservation,
/// Figure 5): "I had buffer space and accepted your worm."
pub const ACK: u8 = 0;
/// Negative acknowledgement: "no buffer space; I dropped your worm —
/// retransmit after your timeout."
pub const NACK: u8 = 1;
/// Credit scheme: request a cumulative buffer credit from the manager.
pub const CREDIT_REQ: u8 = 16;
/// Credit scheme: the manager's grant (carries the grant sequence number).
pub const CREDIT_GRANT: u8 = 17;
/// Credit scheme: the credit-gathering token circulating among members.
pub const CREDIT_TOKEN: u8 = 18;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let all = [ACK, NACK, CREDIT_REQ, CREDIT_GRANT, CREDIT_TOKEN];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
