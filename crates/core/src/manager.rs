//! A dynamic multicast group manager — the paper's stated next step.
//!
//! Section 8: "The control process, the multicast group manager, is
//! currently a stub process but it is expected to develop into a more
//! complex program that will interact with multicast group managers on
//! other hosts and with the IP group management protocol." This module
//! develops it: a designated manager host owns the authoritative member
//! list of each group; hosts send **JOIN**/**LEAVE** control worms; the
//! manager versions every change and disseminates **UPDATE** worms to all
//! affected hosts, which apply them strictly in version order. Each
//! adapter then derives, per group, exactly the triple the paper's driver
//! needed — *(group, next hop, hop count)* — from its current local view.
//!
//! The data path is the Section 5 Hamiltonian circuit (ascending IDs,
//! store-and-forward, class reversal at the wrap), running against the
//! live membership. Joins and leaves take one manager round trip plus one
//! dissemination hop to converge; worms in flight during a change follow
//! the forwarding tables of the hosts they traverse, like any routing
//! update in a real network.
//!
//! Control-worm encoding note: the simulator's worms carry a small
//! out-of-band header rather than payload bytes, so the update fields ride
//! in header fields (`stage` = group, `hops_left` = subject host,
//! `seq` = version, `frag_index` = join/leave). A production LANai
//! program would place them in the first payload bytes.

use crate::group::BROADCAST_GROUP;
use std::collections::{BTreeMap, HashMap};
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::worm::{WormInstance, WormKind};

/// Control tags (continuing `crate::tags`' numbering).
pub const JOIN: u8 = 32;
pub const LEAVE: u8 = 33;
pub const UPDATE: u8 = 34;

/// A scripted membership operation, posted to the protocol through
/// [`wormcast_sim::Network::post_timer`] with the token from
/// [`ManagedHcProtocol::script`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupOp {
    Join(u8),
    Leave(u8),
}

/// One group's state at the manager.
#[derive(Clone, Debug, Default)]
struct ManagedGroup {
    members: Vec<HostId>, // sorted
    version: u32,
    /// Full change log; entry `i` is version `i + 1`. A joining host is
    /// brought up to date by replaying it (a production manager would send
    /// a snapshot; the log is equivalent and keeps updates uniform).
    log: Vec<(HostId, bool)>,
}

/// One group's state at a member (local view).
#[derive(Clone, Debug, Default)]
struct LocalGroup {
    members: Vec<HostId>, // sorted
    version: u32,
    /// Updates that arrived ahead of order, keyed by version.
    pending: BTreeMap<u32, (HostId, bool)>,
}

impl LocalGroup {
    fn apply(&mut self, version: u32, subject: HostId, joined: bool) {
        if version <= self.version {
            return; // duplicate / stale
        }
        self.pending.insert(version, (subject, joined));
        while let Some(&(subject, joined)) = self.pending.get(&(self.version + 1)) {
            self.pending.remove(&(self.version + 1));
            self.version += 1;
            match self.members.binary_search(&subject) {
                Ok(ix) if !joined => {
                    self.members.remove(ix);
                }
                Err(ix) if joined => {
                    self.members.insert(ix, subject);
                }
                _ => {} // idempotent
            }
        }
    }
}

/// Hamiltonian-circuit multicast over manager-maintained dynamic groups.
pub struct ManagedHcProtocol {
    host: HostId,
    manager: HostId,
    /// Scripted ops, fired by externally posted timers.
    script: HashMap<u64, GroupOp>,
    next_token: u64,
    /// Local membership views (updated by UPDATE worms).
    local: HashMap<u8, LocalGroup>,
    /// Authoritative state (manager host only).
    authority: HashMap<u8, ManagedGroup>,
    pub updates_applied: u64,
}

impl ManagedHcProtocol {
    pub fn new(host: HostId, manager: HostId) -> Self {
        ManagedHcProtocol {
            host,
            manager,
            script: HashMap::new(),
            next_token: 1,
            local: HashMap::new(),
            authority: HashMap::new(),
            updates_applied: 0,
        }
    }

    /// Register a membership operation and return the timer token to post
    /// via [`wormcast_sim::Network::post_timer`] at the desired time.
    pub fn script(&mut self, op: GroupOp) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.script.insert(token, op);
        token
    }

    /// The current local member view of a group (sorted).
    pub fn members(&self, group: u8) -> &[HostId] {
        self.local.get(&group).map_or(&[], |g| g.members.as_slice())
    }

    fn successor(&self, group: u8, h: HostId) -> Option<HostId> {
        let members = self.members(group);
        if members.is_empty() {
            return None;
        }
        Some(match members.binary_search(&h) {
            Ok(ix) => members[(ix + 1) % members.len()],
            Err(ix) => members[ix % members.len()],
        })
    }

    /// Manager side: apply an op, bump the version, disseminate.
    fn manage(&mut self, ctx: &mut ProtocolCtx, group: u8, subject: HostId, joined: bool) {
        debug_assert_eq!(self.host, self.manager);
        let g = self.authority.entry(group).or_default();
        match g.members.binary_search(&subject) {
            Ok(ix) if !joined => {
                g.members.remove(ix);
            }
            Err(ix) if joined => {
                g.members.insert(ix, subject);
            }
            _ => return, // no-op join of a member / leave of a non-member
        }
        g.version += 1;
        g.log.push((subject, joined));
        let version = g.version;
        // Disseminate the new version to everyone affected: current members
        // plus the subject (a leaver must learn its leave took effect). A
        // joiner additionally gets the whole log so its view starts from
        // version 1. The manager applies locally without a worm.
        let mut targets = g.members.clone();
        if let Err(ix) = targets.binary_search(&subject) {
            targets.insert(ix, subject);
        }
        let log = g.log.clone();
        self.local
            .entry(group)
            .or_default()
            .apply(version, subject, joined);
        self.updates_applied += 1;
        for t in targets {
            if t == self.host {
                continue;
            }
            let range = if joined && t == subject {
                1..=version // full history for the joiner
            } else {
                version..=version
            };
            for v in range {
                let (subj, j) = log[(v - 1) as usize];
                let mut upd = SendSpec::control(UPDATE, worm_msg_id(group, v), self.host, t);
                upd.stage = group;
                upd.seq = v;
                upd.hops_left = subj.0 as u16;
                upd.frag_index = u16::from(j);
                ctx.send(upd);
            }
        }
    }
}

/// Synthetic message ids for control worms (never delivered as messages).
fn worm_msg_id(group: u8, version: u32) -> wormcast_sim::worm::MessageId {
    wormcast_sim::worm::MessageId(((group as u64) << 40) | version as u64 | (1 << 60))
}

impl AdapterProtocol for ManagedHcProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        match msg.dest {
            Destination::Unicast(d) => {
                ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
            }
            Destination::Multicast(group) => {
                debug_assert_ne!(group, BROADCAST_GROUP);
                let members = self.members(group);
                let n = members.len();
                let is_member = members.binary_search(&self.host).is_ok();
                let receivers = if is_member { n.saturating_sub(1) } else { n };
                if receivers == 0 {
                    return;
                }
                let Some(succ) = self.successor(group, self.host) else {
                    return;
                };
                if succ == self.host {
                    return;
                }
                let mut spec = SendSpec::data(&msg, succ, WormKind::Multicast { group });
                spec.hops_left = receivers as u16;
                spec.buffer_class = if succ < self.host { 2 } else { 1 };
                ctx.send(spec);
            }
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        match worm.meta.kind {
            WormKind::Unicast => ctx.deliver_local(worm.meta.msg),
            WormKind::Multicast { group } => {
                if worm.meta.origin != self.host {
                    ctx.deliver_local(worm.meta.msg);
                }
                if worm.meta.hops_left > 1 {
                    if let Some(succ) = self.successor(group, self.host) {
                        if succ != self.host {
                            let mut spec = SendSpec::forward(worm, succ);
                            spec.hops_left = worm.meta.hops_left - 1;
                            spec.buffer_class = if succ < self.host {
                                2
                            } else {
                                worm.meta.buffer_class
                            };
                            ctx.send(spec);
                        }
                    }
                }
            }
            WormKind::Control(JOIN) | WormKind::Control(LEAVE) => {
                let joined = matches!(worm.meta.kind, WormKind::Control(JOIN));
                let group = worm.meta.stage;
                let subject = worm.meta.injector;
                self.manage(ctx, group, subject, joined);
            }
            WormKind::Control(UPDATE) => {
                let group = worm.meta.stage;
                let subject = HostId(worm.meta.hops_left as u32);
                let joined = worm.meta.frag_index == 1;
                self.local
                    .entry(group)
                    .or_default()
                    .apply(worm.meta.seq, subject, joined);
                self.updates_applied += 1;
            }
            other => unreachable!("unexpected worm {other:?} at managed-HC host"),
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) {
        let Some(op) = self.script.remove(&token) else {
            return; // stale or foreign token
        };
        let (group, joined) = match op {
            GroupOp::Join(g) => (g, true),
            GroupOp::Leave(g) => (g, false),
        };
        if self.host == self.manager {
            self.manage(ctx, group, self.host, joined);
        } else {
            let tag = if joined { JOIN } else { LEAVE };
            let mut req = SendSpec::control(tag, worm_msg_id(group, 0), self.host, self.manager);
            req.stage = group;
            ctx.send(req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;

    fn run_cb<F: FnOnce(&mut ManagedHcProtocol, &mut ProtocolCtx)>(
        p: &mut ManagedHcProtocol,
        f: F,
    ) -> Vec<Command> {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(0, p.host, 0, &mut rng, &mut cmds);
        f(p, &mut ctx);
        cmds
    }

    #[test]
    fn local_updates_apply_in_version_order() {
        let mut g = LocalGroup::default();
        // Version 2 arrives before version 1: held back.
        g.apply(2, HostId(5), true);
        assert!(g.members.is_empty());
        g.apply(1, HostId(3), true);
        assert_eq!(g.members, vec![HostId(3), HostId(5)]);
        assert_eq!(g.version, 2);
        // Duplicate and stale versions are ignored.
        g.apply(2, HostId(9), true);
        assert_eq!(g.members, vec![HostId(3), HostId(5)]);
        g.apply(3, HostId(3), false);
        assert_eq!(g.members, vec![HostId(5)]);
    }

    #[test]
    fn manager_versions_and_disseminates() {
        let mut mgr = ManagedHcProtocol::new(HostId(0), HostId(0));
        let t = mgr.script(GroupOp::Join(4));
        let cmds = run_cb(&mut mgr, |p, ctx| p.on_timer(ctx, t));
        // Manager joined its own group: no member needs an update worm yet.
        assert!(cmds.is_empty(), "{cmds:?}");
        assert_eq!(mgr.members(4), &[HostId(0)]);
        // A remote join triggers dissemination to the other member(s).
        let join = WormInstance {
            id: wormcast_sim::worm::WormId(0),
            sinks: 1,
            meta: wormcast_sim::worm::WormMeta {
                kind: WormKind::Control(JOIN),
                msg: worm_msg_id(4, 0),
                injector: HostId(3),
                origin: HostId(3),
                dest: HostId(0),
                seq: 0,
                hops_left: 0,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: 0,
                stage: 4,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 4,
            created: 0,
            injected: 0,
        };
        let cmds = run_cb(&mut mgr, |p, ctx| p.on_worm_received(ctx, &join));
        assert_eq!(mgr.members(4), &[HostId(0), HostId(3)]);
        let updates: Vec<&SendSpec> = cmds
            .iter()
            .filter_map(|c| match c {
                Command::Send(s) if s.kind == WormKind::Control(UPDATE) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(updates.len(), 2, "the joiner gets the full log");
        assert!(updates.iter().all(|u| u.dest == HostId(3)));
        assert_eq!(updates[0].seq, 1);
        assert_eq!(updates[1].seq, 2, "its own join is the second version");
        assert_eq!(updates[1].frag_index, 1, "a join");
    }

    #[test]
    fn member_sends_join_to_manager() {
        let mut p = ManagedHcProtocol::new(HostId(7), HostId(0));
        let t = p.script(GroupOp::Join(2));
        let cmds = run_cb(&mut p, |p, ctx| p.on_timer(ctx, t));
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.kind, WormKind::Control(JOIN));
                assert_eq!(s.dest, HostId(0));
                assert_eq!(s.stage, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Stale token: no effect.
        let cmds = run_cb(&mut p, |p, ctx| p.on_timer(ctx, t));
        assert!(cmds.is_empty());
    }

    #[test]
    fn data_path_follows_local_view() {
        let mut p = ManagedHcProtocol::new(HostId(3), HostId(0));
        let g = p.local.entry(6).or_default();
        g.apply(1, HostId(1), true);
        g.apply(2, HostId(3), true);
        g.apply(3, HostId(8), true);
        let msg = AppMessage {
            msg: wormcast_sim::worm::MessageId(9),
            origin: HostId(3),
            dest: Destination::Multicast(6),
            payload_len: 200,
            created: 0,
        };
        let cmds = run_cb(&mut p, |p, ctx| p.on_generate(ctx, msg));
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.dest, HostId(8), "ascending successor");
                assert_eq!(s.hops_left, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
