//! Total-order verification.
//!
//! Several of the paper's schemes claim **total ordering**: all members of
//! a group receive the group's messages in the same order. This module
//! checks that claim against a run's delivery log: for every pair of
//! members, the messages they both received must appear in the same
//! relative order.

use std::collections::HashMap;
use wormcast_sim::engine::HostId;
use wormcast_sim::network::MessageLog;
use wormcast_sim::protocol::Destination;
use wormcast_sim::worm::MessageId;

/// A detected ordering violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderViolation {
    pub a: HostId,
    pub b: HostId,
    /// Messages delivered in opposite relative orders at `a` and `b`.
    pub first: MessageId,
    pub second: MessageId,
}

/// Per-host delivery sequences of one group's multicast messages, in
/// delivery-time order (ties broken by log order, which the simulator
/// records deterministically).
pub fn delivery_sequences(
    log: &MessageLog,
    group: u8,
    members: &[HostId],
) -> HashMap<HostId, Vec<MessageId>> {
    let group_msgs: std::collections::HashSet<MessageId> = log
        .created
        .iter()
        .filter(|r| matches!(r.dest, Destination::Multicast(g) if g == group))
        .map(|r| r.msg)
        .collect();
    let mut seqs: HashMap<HostId, Vec<MessageId>> = members.iter().map(|&h| (h, vec![])).collect();
    // Deliveries are logged in event order; stable sort by time keeps that
    // order for ties.
    let mut deliveries = log.deliveries.clone();
    deliveries.sort_by_key(|d| d.at);
    for d in deliveries {
        if group_msgs.contains(&d.msg) {
            if let Some(seq) = seqs.get_mut(&d.host) {
                seq.push(d.msg);
            }
        }
    }
    seqs
}

/// Check total ordering of `group`'s messages across `members`. Returns the
/// first violation found, or `None` if the ordering is total.
pub fn check_total_order(
    log: &MessageLog,
    group: u8,
    members: &[HostId],
) -> Option<OrderViolation> {
    let seqs = delivery_sequences(log, group, members);
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let sa = &seqs[&a];
            let sb = &seqs[&b];
            // Position maps of the shorter sequence against the longer.
            let pos_b: HashMap<MessageId, usize> =
                sb.iter().enumerate().map(|(ix, &m)| (m, ix)).collect();
            let mut last: Option<(usize, MessageId)> = None;
            for &m in sa {
                if let Some(&ix) = pos_b.get(&m) {
                    if let Some((prev_ix, prev_m)) = last {
                        if ix < prev_ix {
                            return Some(OrderViolation {
                                a,
                                b,
                                first: prev_m,
                                second: m,
                            });
                        }
                    }
                    last = Some((ix, m));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::network::{Delivery, MessageRecord};

    fn mklog(deliveries: &[(u64, u32, u64)]) -> MessageLog {
        // (msg, host, time); all messages are multicast group 0.
        let mut log = MessageLog::default();
        let mut seen = std::collections::HashSet::new();
        for &(m, _, _) in deliveries {
            if seen.insert(m) {
                log.created.push(MessageRecord {
                    msg: MessageId(m),
                    origin: HostId(99),
                    dest: Destination::Multicast(0),
                    payload_len: 1,
                    created: 0,
                });
            }
        }
        for &(m, h, t) in deliveries {
            log.deliveries.push(Delivery {
                msg: MessageId(m),
                host: HostId(h),
                at: t,
            });
        }
        log
    }

    #[test]
    fn consistent_order_passes() {
        let log = mklog(&[(1, 0, 10), (2, 0, 20), (1, 1, 15), (2, 1, 30)]);
        assert_eq!(check_total_order(&log, 0, &[HostId(0), HostId(1)]), None);
    }

    #[test]
    fn reversed_order_detected() {
        let log = mklog(&[(1, 0, 10), (2, 0, 20), (2, 1, 15), (1, 1, 30)]);
        let v = check_total_order(&log, 0, &[HostId(0), HostId(1)]).expect("violation");
        assert_eq!((v.a, v.b), (HostId(0), HostId(1)));
    }

    #[test]
    fn missing_messages_do_not_violate() {
        // Host 1 never got message 1; the common subsequence {2} is trivially
        // ordered.
        let log = mklog(&[(1, 0, 10), (2, 0, 20), (2, 1, 15)]);
        assert_eq!(check_total_order(&log, 0, &[HostId(0), HostId(1)]), None);
    }

    #[test]
    fn other_groups_ignored() {
        let mut log = mklog(&[(1, 0, 10), (2, 0, 20), (2, 1, 15), (1, 1, 30)]);
        // Re-tag message 1 as group 7: no common *group-0* ordering issue.
        log.created[0].dest = Destination::Multicast(7);
        assert_eq!(check_total_order(&log, 0, &[HostId(0), HostId(1)]), None);
    }

    #[test]
    fn sequences_are_time_ordered() {
        let log = mklog(&[(2, 0, 20), (1, 0, 10)]);
        let seqs = delivery_sequences(&log, 0, &[HostId(0)]);
        assert_eq!(seqs[&HostId(0)], vec![MessageId(1), MessageId(2)]);
    }
}
