//! # wormcast-core — deadlock-free reliable multicast for wormhole LANs
//!
//! The paper's contribution, implemented as pluggable host-adapter protocols
//! for the `wormcast-sim` fabric plus the switch-level multicast host logic:
//!
//! * [`hamiltonian`] — multicasting on a Hamiltonian circuit (Section 5):
//!   ascending-ID circuits, hop-count termination, optional cut-through,
//!   optional return-to-origin confirmation, and total ordering by
//!   serialising through the lowest-ID member;
//! * [`tree`] — multicasting on a rooted tree (Section 6): start-at-root
//!   (totally ordered) and broadcast-from-originator (two-buffer-class
//!   climb/descend) modes;
//! * [`reliable`] — the paper's *implicit buffer reservation* (Figure 5):
//!   acquire-as-you-go admission by advertised size, ACK/NACK, and
//!   timeout-retransmission;
//! * [`buffers`] — the **two-buffer-class** pools (Figures 6–7) that make
//!   buffer deadlocks impossible when multicasts propagate in ascending
//!   host-ID order with at most one reversal;
//! * [`unicast_repeat`] — the baseline stock-Myrinet behaviour: repeated
//!   unicast from the source (optionally broadcast-and-filter);
//! * [`credit`] — the centralized credit-manager baseline of
//!   Verstoep/Langendoen/Bal (IR-399, 1996) that the paper argues against;
//! * [`ordering`] — total-order verification across group members;
//! * [`ipmap`] — the Section 8.1 IP class-D → 8-bit Myrinet group mapping.

pub mod buffers;
pub mod credit;
pub mod group;
pub mod hamiltonian;
pub mod ipmap;
pub mod manager;
pub mod ordering;
pub mod reliable;
pub mod switchcast;
pub mod tags;
pub mod tree;
pub mod unicast_repeat;

pub use buffers::{BufferPool, PoolConfig, Reservation};
pub use group::Membership;
pub use hamiltonian::{HcConfig, HcProtocol};
pub use reliable::{AckNackConfig, Reliability};
pub use tree::{TreeConfig, TreeMode, TreeProtocol};
pub use unicast_repeat::{UnicastRepeatConfig, UnicastRepeatProtocol};
