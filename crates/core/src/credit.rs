//! The centralized credit-manager baseline (Verstoep/Langendoen/Bal,
//! IR-399, 1996), which the paper contrasts with its optimistic
//! acquire-as-you-go approach.
//!
//! Before multicasting, a source must obtain a **cumulative buffer credit**
//! for all destinations from a designated manager host. Grants are issued
//! in sequence (total ordering and feedback congestion control for free),
//! the multicast then runs over a precomputed heap-ordered binary tree, and
//! the manager replenishes its pool with a periodic **credit-gathering
//! token** that circulates among the hosts collecting freed buffer space.
//!
//! The costs the paper calls out are structural and visible in the
//! ablation benches: every multicast pays a request/grant round trip
//! before its first byte moves, buffer credit is held far longer than the
//! buffers are actually used (until the token comes around), and the
//! manager is a single point of failure.

use crate::group::Membership;
use crate::tags;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::time::SimTime;
use wormcast_sim::worm::{MessageId, WormInstance, WormKind};
use wormcast_topo::tree::MulticastTree;

const STAGE_SEED: u8 = 1;

/// Timer token for the manager's periodic token launch.
const TOKEN_TIMER: u64 = 0x43_52_45_44; // "CRED"

/// Credit-scheme configuration (shared by all hosts).
#[derive(Clone, Copy, Debug)]
pub struct CreditConfig {
    /// The designated credit manager.
    pub manager: HostId,
    pub num_hosts: u32,
    /// Manager's initial credit pool, in bytes of destination buffering.
    pub initial_credits: u64,
    /// Period of the credit-gathering token.
    pub token_period: SimTime,
}

/// Counters for the ablation study.
#[derive(Clone, Copy, Debug, Default)]
pub struct CreditStats {
    pub requests: u64,
    pub grants: u64,
    /// Requests that had to queue for credits.
    pub queued: u64,
    pub tokens_completed: u64,
    pub credits_recovered: u64,
}

/// Per-host credit protocol instance.
pub struct CreditProtocol {
    host: HostId,
    cfg: CreditConfig,
    groups: Arc<Membership>,
    trees: Arc<HashMap<u8, MulticastTree>>,
    /// Origin side: messages awaiting a grant.
    waiting: HashMap<MessageId, AppMessage>,
    /// Manager side.
    credits: u64,
    grant_queue: VecDeque<(MessageId, HostId, u64)>,
    grant_seq: u32,
    token_out: bool,
    token_started: bool,
    /// Member side: buffer bytes freed since the token last passed.
    freed: u64,
    pub stats: CreditStats,
}

impl CreditProtocol {
    pub fn new(
        host: HostId,
        cfg: CreditConfig,
        groups: Arc<Membership>,
        trees: Arc<HashMap<u8, MulticastTree>>,
    ) -> Self {
        CreditProtocol {
            host,
            cfg,
            groups,
            trees,
            waiting: HashMap::new(),
            credits: cfg.initial_credits,
            grant_queue: VecDeque::new(),
            grant_seq: 0,
            token_out: false,
            token_started: false,
            freed: 0,
            stats: CreditStats::default(),
        }
    }

    fn is_manager(&self) -> bool {
        self.host == self.cfg.manager
    }

    /// Cost of a multicast: payload bytes buffered at every destination.
    fn cost(&self, msg: &AppMessage, group: u8) -> u64 {
        let receivers = self.groups.expected_deliveries(group, msg.origin) as u64;
        receivers * msg.payload_len as u64
    }

    /// Next host on the token ring (ascending IDs, wrapping), starting and
    /// ending at the manager.
    fn ring_next(&self, h: HostId) -> HostId {
        HostId((h.0 + 1) % self.cfg.num_hosts)
    }

    /// Manager: issue queued grants while credits last (FIFO, so grants —
    /// and therefore multicast sequence numbers — are totally ordered).
    fn try_grants(&mut self, ctx: &mut ProtocolCtx) {
        while let Some(&(msg, origin, cost)) = self.grant_queue.front() {
            if cost > self.credits {
                break;
            }
            self.grant_queue.pop_front();
            self.credits -= cost;
            self.grant_seq += 1;
            self.stats.grants += 1;
            if origin == self.host {
                let seq = self.grant_seq;
                self.launch_granted(ctx, msg, seq);
            } else {
                let mut grant = SendSpec::control(tags::CREDIT_GRANT, msg, self.host, origin);
                grant.seq = self.grant_seq;
                ctx.send(grant);
            }
        }
    }

    /// Origin: a grant arrived (or was issued locally) — start the tree
    /// multicast.
    fn launch_granted(&mut self, ctx: &mut ProtocolCtx, msg_id: MessageId, grant_seq: u32) {
        let Some(msg) = self.waiting.remove(&msg_id) else {
            return;
        };
        let Destination::Multicast(group) = msg.dest else {
            unreachable!("only multicasts wait for grants")
        };
        let Some(tree) = self.trees.get(&group) else {
            return;
        };
        if self.host == tree.root() {
            for &c in tree.children(self.host) {
                let mut spec = SendSpec::data(&msg, c, WormKind::Multicast { group });
                spec.seq = grant_seq;
                ctx.send(spec);
            }
        } else {
            let mut spec = SendSpec::data(&msg, tree.root(), WormKind::Multicast { group });
            spec.stage = STAGE_SEED;
            spec.seq = grant_seq;
            ctx.send(spec);
        }
    }

    fn handle_data(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance, group: u8) {
        let tree = match self.trees.get(&group) {
            Some(t) => t,
            None => return,
        };
        if worm.meta.stage == STAGE_SEED {
            debug_assert_eq!(self.host, tree.root());
            if worm.meta.origin != self.host && self.groups.is_member(group, self.host) {
                ctx.deliver_local(worm.meta.msg);
                self.freed = self.freed.saturating_add(worm.payload_len as u64);
            }
            for &c in tree.children(self.host) {
                let mut spec = SendSpec::forward(worm, c);
                spec.stage = 0;
                ctx.send(spec);
            }
        } else {
            if worm.meta.origin != self.host {
                ctx.deliver_local(worm.meta.msg);
                // The destination buffer is freed once the host consumes the
                // message; the credit is recovered only when the token
                // passes — that lag is the scheme's inefficiency.
                self.freed = self.freed.saturating_add(worm.payload_len as u64);
            }
            for &c in tree.children(self.host) {
                let mut spec = SendSpec::forward(worm, c);
                spec.stage = 0;
                ctx.send(spec);
            }
        }
    }

    fn handle_control(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance, tag: u8) {
        match tag {
            tags::CREDIT_REQ => {
                debug_assert!(self.is_manager(), "request at a non-manager host");
                let cost = worm.meta.seq as u64;
                if cost > self.credits {
                    self.stats.queued += 1;
                }
                self.grant_queue
                    .push_back((worm.meta.msg, worm.meta.injector, cost));
                self.try_grants(ctx);
            }
            tags::CREDIT_GRANT => {
                let seq = worm.meta.seq;
                self.launch_granted(ctx, worm.meta.msg, seq);
            }
            tags::CREDIT_TOKEN => {
                let gathered = worm.meta.seq as u64 + std::mem::take(&mut self.freed);
                if self.is_manager() {
                    // Token came home: recover credits, relaunch later.
                    self.credits = self.credits.saturating_add(gathered);
                    self.stats.tokens_completed += 1;
                    self.stats.credits_recovered += gathered;
                    self.token_out = false;
                    self.try_grants(ctx);
                } else {
                    let next = self.ring_next(self.host);
                    let mut tok =
                        SendSpec::control(tags::CREDIT_TOKEN, worm.meta.msg, self.host, next);
                    tok.seq = gathered.min(u32::MAX as u64) as u32;
                    ctx.send(tok);
                }
            }
            other => unreachable!("unexpected control tag {other} at credit protocol"),
        }
    }
}

impl AdapterProtocol for CreditProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        // Arm the manager's token timer on first activity.
        if self.is_manager() && !self.token_started {
            self.token_started = true;
            ctx.set_timer(self.cfg.token_period, TOKEN_TIMER);
        }
        match msg.dest {
            Destination::Unicast(d) => {
                ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
            }
            Destination::Multicast(group) => {
                let cost = self.cost(&msg, group);
                self.waiting.insert(msg.msg, msg);
                self.stats.requests += 1;
                if self.is_manager() {
                    self.grant_queue.push_back((msg.msg, self.host, cost));
                    self.try_grants(ctx);
                } else {
                    let mut req =
                        SendSpec::control(tags::CREDIT_REQ, msg.msg, self.host, self.cfg.manager);
                    req.seq = cost.min(u32::MAX as u64) as u32;
                    ctx.send(req);
                }
            }
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        match worm.meta.kind {
            WormKind::Unicast => ctx.deliver_local(worm.meta.msg),
            WormKind::Multicast { group } => self.handle_data(ctx, worm, group),
            WormKind::Control(tag) => self.handle_control(ctx, worm, tag),
            WormKind::SwitchMulticast { .. } => {
                unreachable!("switch-level multicast worm at a host-adapter protocol")
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) {
        debug_assert_eq!(token, TOKEN_TIMER);
        if !self.is_manager() {
            return;
        }
        if !self.token_out && self.cfg.num_hosts > 1 {
            self.token_out = true;
            let next = self.ring_next(self.host);
            let mut tok = SendSpec::control(
                tags::CREDIT_TOKEN,
                MessageId(u64::MAX), // token worms carry no message
                self.host,
                next,
            );
            tok.seq = std::mem::take(&mut self.freed).min(u32::MAX as u64) as u32;
            ctx.send(tok);
        }
        ctx.set_timer(self.cfg.token_period, TOKEN_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;
    use wormcast_sim::worm::{WormId, WormMeta};
    use wormcast_topo::tree::TreeShape;

    fn setup() -> (Arc<Membership>, Arc<HashMap<u8, MulticastTree>>) {
        let members: Vec<HostId> = vec![HostId(0), HostId(1), HostId(2), HostId(3)];
        let groups = Membership::from_groups([(0u8, members.clone())]);
        let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
        let mut trees = HashMap::new();
        trees.insert(0u8, tree);
        (groups, Arc::new(trees))
    }

    fn cfg() -> CreditConfig {
        CreditConfig {
            manager: HostId(0),
            num_hosts: 4,
            initial_credits: 10_000,
            token_period: 50_000,
        }
    }

    fn run_cb<F: FnOnce(&mut CreditProtocol, &mut ProtocolCtx)>(
        p: &mut CreditProtocol,
        f: F,
    ) -> Vec<Command> {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(0, p.host, 0, &mut rng, &mut cmds);
        f(p, &mut ctx);
        cmds
    }

    fn mcast(origin: u32, payload: u32) -> AppMessage {
        AppMessage {
            msg: MessageId(7),
            origin: HostId(origin),
            dest: Destination::Multicast(0),
            payload_len: payload,
            created: 0,
        }
    }

    #[test]
    fn origin_requests_credit_before_sending() {
        let (g, t) = setup();
        let mut p = CreditProtocol::new(HostId(2), cfg(), g, t);
        let cmds = run_cb(&mut p, |p, ctx| p.on_generate(ctx, mcast(2, 1000)));
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.kind, WormKind::Control(tags::CREDIT_REQ));
                assert_eq!(s.dest, HostId(0));
                assert_eq!(s.seq, 3000, "3 receivers x 1000 bytes");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.stats.requests, 1);
    }

    #[test]
    fn manager_grants_in_fifo_and_deducts() {
        let (g, t) = setup();
        let mut p = CreditProtocol::new(HostId(0), cfg(), g, t);
        let req = |msg: u64, from: u32, cost: u32| WormInstance {
            id: WormId(0),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Control(tags::CREDIT_REQ),
                msg: MessageId(msg),
                injector: HostId(from),
                origin: HostId(from),
                dest: HostId(0),
                seq: cost,
                hops_left: 0,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: 0,
                stage: 0,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 4,
            created: 0,
            injected: 0,
        };
        let c1 = run_cb(&mut p, |p, ctx| p.on_worm_received(ctx, &req(1, 2, 6000)));
        assert_eq!(c1.len(), 1, "grant issued");
        assert_eq!(p.credits, 4000);
        // Second request exceeds remaining credits: queued, not granted.
        let c2 = run_cb(&mut p, |p, ctx| p.on_worm_received(ctx, &req(2, 3, 6000)));
        assert!(c2.is_empty(), "no credits left: {c2:?}");
        assert_eq!(p.stats.queued, 1);
        // Token returns with recovered credits: the queued grant fires.
        let mut tok = req(99, 3, 0);
        tok.meta.kind = WormKind::Control(tags::CREDIT_TOKEN);
        tok.meta.seq = 6000;
        p.token_out = true;
        let c3 = run_cb(&mut p, |p, ctx| p.on_worm_received(ctx, &tok));
        assert_eq!(c3.len(), 1, "queued grant released: {c3:?}");
        assert_eq!(p.stats.tokens_completed, 1);
        assert_eq!(p.credits, 4000, "4000 + 6000 recovered - 6000 granted");
    }

    #[test]
    fn grant_launches_tree_multicast() {
        let (g, t) = setup();
        let mut p = CreditProtocol::new(HostId(2), cfg(), g, t);
        let _ = run_cb(&mut p, |p, ctx| p.on_generate(ctx, mcast(2, 1000)));
        let grant = WormInstance {
            id: WormId(1),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Control(tags::CREDIT_GRANT),
                msg: MessageId(7),
                injector: HostId(0),
                origin: HostId(0),
                dest: HostId(2),
                seq: 41,
                hops_left: 0,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: 0,
                stage: 0,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 4,
            created: 0,
            injected: 0,
        };
        let cmds = run_cb(&mut p, |p, ctx| p.on_worm_received(ctx, &grant));
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.dest, HostId(0), "seed to tree root");
                assert_eq!(s.stage, STAGE_SEED);
                assert_eq!(s.seq, 41, "grant sequence stamps the multicast");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn token_accumulates_freed_credits_around_the_ring() {
        let (g, t) = setup();
        let mut p = CreditProtocol::new(HostId(2), cfg(), g, t);
        p.freed = 500;
        let tok = WormInstance {
            id: WormId(0),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Control(tags::CREDIT_TOKEN),
                msg: MessageId(0xFF),
                injector: HostId(1),
                origin: HostId(0),
                dest: HostId(2),
                seq: 300,
                hops_left: 0,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: 0,
                stage: 0,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 4,
            created: 0,
            injected: 0,
        };
        let cmds = run_cb(&mut p, |p, ctx| p.on_worm_received(ctx, &tok));
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.dest, HostId(3), "next on the ring");
                assert_eq!(s.seq, 800, "300 gathered + 500 freed here");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.freed, 0, "freed credits surrendered to the token");
    }
}
