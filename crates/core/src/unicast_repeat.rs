//! The baseline: repeated unicast from the source.
//!
//! This is what stock Myrinet host software does ("repeated transmission of
//! copies of the multicast message from the source to all destinations").
//! It is perfectly reliable but ties up the source interface for the whole
//! multicast — latency grows linearly in the group size — and cannot
//! enforce total ordering. The paper's protocols are measured against it
//! (ablation A3).
//!
//! The `broadcast_filter` option models the other stock facility the paper
//! mentions: broadcast by multicopy unicast to *every* host, with
//! receiving hosts filtering out groups they do not belong to — "wasteful
//! of both network link resources ... and of host resources in filtering".

use crate::group::Membership;
use std::sync::Arc;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{
    AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::worm::{WormInstance, WormKind};

/// Configuration of the repeated-unicast baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnicastRepeatConfig {
    /// Send a copy to *every* host (not just members) and filter at the
    /// receivers — the broadcast-based multicast of Section 2.
    pub broadcast_filter: bool,
    /// Total number of hosts (needed for `broadcast_filter`).
    pub num_hosts: u32,
}

/// Per-host repeated-unicast protocol instance.
pub struct UnicastRepeatProtocol {
    host: HostId,
    cfg: UnicastRepeatConfig,
    groups: Arc<Membership>,
    /// Worms received for groups we are not members of and filtered out
    /// (wasted reception work; the baseline's inefficiency measure).
    pub filtered: u64,
}

impl UnicastRepeatProtocol {
    pub fn new(host: HostId, cfg: UnicastRepeatConfig, groups: Arc<Membership>) -> Self {
        if cfg.broadcast_filter {
            assert!(cfg.num_hosts > 0, "broadcast_filter needs num_hosts");
        }
        UnicastRepeatProtocol {
            host,
            cfg,
            groups,
            filtered: 0,
        }
    }
}

impl AdapterProtocol for UnicastRepeatProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        match msg.dest {
            Destination::Unicast(d) => {
                ctx.send(SendSpec::data(&msg, d, WormKind::Unicast));
            }
            Destination::Multicast(group) => {
                if self.cfg.broadcast_filter {
                    for h in 0..self.cfg.num_hosts {
                        let dest = HostId(h);
                        if dest != self.host {
                            ctx.send(SendSpec::data(&msg, dest, WormKind::Multicast { group }));
                        }
                    }
                } else {
                    // The member list is the paper's "repeated unicast":
                    // one serialized copy per destination.
                    for &dest in self.groups.members(group) {
                        if dest != self.host {
                            ctx.send(SendSpec::data(&msg, dest, WormKind::Multicast { group }));
                        }
                    }
                }
            }
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        match worm.meta.kind {
            WormKind::Unicast => ctx.deliver_local(worm.meta.msg),
            WormKind::Multicast { group } => {
                if self.groups.is_member(group, self.host) {
                    ctx.deliver_local(worm.meta.msg);
                } else {
                    // Receiver-side filtering: work done for nothing.
                    self.filtered += 1;
                }
            }
            other => unreachable!("unexpected worm kind {other:?} at repeated-unicast host"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;
    use wormcast_sim::worm::{MessageId, WormId, WormMeta};

    fn groups() -> Arc<Membership> {
        Membership::from_groups([(2u8, vec![HostId(0), HostId(2), HostId(3)])])
    }

    fn run_cb<F: FnOnce(&mut UnicastRepeatProtocol, &mut ProtocolCtx)>(
        p: &mut UnicastRepeatProtocol,
        f: F,
    ) -> Vec<Command> {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(0, p.host, 0, &mut rng, &mut cmds);
        f(p, &mut ctx);
        cmds
    }

    fn mcast_msg(origin: u32) -> AppMessage {
        AppMessage {
            msg: MessageId(5),
            origin: HostId(origin),
            dest: Destination::Multicast(2),
            payload_len: 100,
            created: 0,
        }
    }

    fn rx_worm(group: u8) -> WormInstance {
        WormInstance {
            id: WormId(0),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Multicast { group },
                msg: MessageId(5),
                injector: HostId(0),
                origin: HostId(0),
                dest: HostId(1),
                seq: 0,
                hops_left: 0,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: 100,
                stage: 0,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 100,
            created: 0,
            injected: 0,
        }
    }

    #[test]
    fn sends_one_copy_per_other_member() {
        let mut p = UnicastRepeatProtocol::new(
            HostId(2),
            UnicastRepeatConfig::default(),
            groups(),
        );
        let cmds = run_cb(&mut p, |p, ctx| p.on_generate(ctx, mcast_msg(2)));
        let dests: Vec<HostId> = cmds
            .iter()
            .filter_map(|c| match c {
                Command::Send(s) => Some(s.dest),
                _ => None,
            })
            .collect();
        assert_eq!(dests, vec![HostId(0), HostId(3)]);
    }

    #[test]
    fn broadcast_filter_sends_to_everyone() {
        let cfg = UnicastRepeatConfig {
            broadcast_filter: true,
            num_hosts: 5,
        };
        let mut p = UnicastRepeatProtocol::new(HostId(2), cfg, groups());
        let cmds = run_cb(&mut p, |p, ctx| p.on_generate(ctx, mcast_msg(2)));
        assert_eq!(cmds.len(), 4, "everyone but self");
    }

    #[test]
    fn members_deliver_nonmembers_filter() {
        let mut p = UnicastRepeatProtocol::new(
            HostId(3),
            UnicastRepeatConfig::default(),
            groups(),
        );
        let cmds = run_cb(&mut p, |p, ctx| p.on_worm_received(ctx, &rx_worm(2)));
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
        assert_eq!(p.filtered, 0);

        let mut q = UnicastRepeatProtocol::new(
            HostId(1),
            UnicastRepeatConfig::default(),
            groups(),
        );
        let cmds = run_cb(&mut q, |p, ctx| p.on_worm_received(ctx, &rx_worm(2)));
        assert!(cmds.is_empty(), "non-member filters: {cmds:?}");
        assert_eq!(q.filtered, 1);
    }
}
