//! Multicasting on a Hamiltonian circuit (Section 5).
//!
//! Group members form a directed circuit in ascending host-ID order. The
//! worm header carries the multicast group id and a **hop count**; each
//! adapter delivers the worm locally, decrements the hop count, and — if it
//! is not zero — retransmits the worm to its circuit successor. Buffer
//! class switches from 1 to 2 at the single ID reversal (the wrap of the
//! circuit), which together with the ascending-ID rule prevents buffer
//! deadlocks (Figures 6–7).
//!
//! Options, all from the paper:
//!
//! * **cut-through** — an adapter starts retransmitting to its successor as
//!   soon as the header arrives, *if its output port is free*; otherwise it
//!   falls back to full reassembly (store-and-forward). The real Myrinet
//!   implementation (Section 8) is store-and-forward only.
//! * **return-to-origin** — the worm makes the full circle, giving the
//!   originator confirmation of delivery at the cost of one extra hop.
//! * **serialize** — total ordering: originators first relay the message to
//!   the lowest-ID member, which starts all multicasts of the group in a
//!   single sequence.
//! * **reliability** — [`Reliability::AckNack`] enables the finite-buffer
//!   implicit-reservation machinery.

use crate::group::Membership;
use crate::reliable::{Reliability, ReliableFwd};
use std::collections::HashSet;
use std::sync::Arc;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{
    Admission, AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::worm::{WormId, WormInstance, WormKind};

/// Stage marker: a relay from the originator to the circuit starter
/// (serialized mode) — not yet circulating.
const STAGE_SEED: u8 = 1;

/// Hamiltonian-circuit protocol configuration.
#[derive(Clone, Copy, Debug)]
pub struct HcConfig {
    /// Forward in cut-through when the output port is free.
    pub cut_through: bool,
    /// Retransmit until the worm returns to its originator (confirmation).
    pub return_to_origin: bool,
    /// Serialize all multicasts of a group through the lowest-ID member
    /// (total ordering).
    pub serialize: bool,
    pub reliability: Reliability,
}

impl HcConfig {
    /// Store-and-forward, stop before origin, no ordering, infinite
    /// buffers — the paper's baseline simulation configuration.
    pub fn store_and_forward() -> Self {
        HcConfig {
            cut_through: false,
            return_to_origin: false,
            serialize: false,
            reliability: Reliability::None,
        }
    }

    /// Immediate cut-through when the port is free (Figure 10's middle
    /// curve).
    pub fn cut_through() -> Self {
        HcConfig {
            cut_through: true,
            ..Self::store_and_forward()
        }
    }
}

/// Per-host Hamiltonian-circuit protocol instance.
pub struct HcProtocol {
    host: HostId,
    cfg: HcConfig,
    groups: Arc<Membership>,
    fwd: ReliableFwd,
    /// Per-group sequence counter (serialized mode; meaningful only at the
    /// lowest-ID member).
    seq: std::collections::HashMap<u8, u32>,
    /// Worms already forwarded at header time (cut-through), so the
    /// receive-complete handler does not forward them again.
    forwarded_at_header: HashSet<WormId>,
    /// Serialized mode: next sequence number to deliver, per group.
    /// Retransmissions can overtake each other on the circuit, so local
    /// delivery holds out-of-order arrivals until the gap closes.
    next_deliver: std::collections::HashMap<u8, u32>,
    /// Out-of-order arrivals awaiting delivery: seq -> message (None for
    /// our own message coming around, which advances the cursor without a
    /// local delivery).
    pending_deliver: std::collections::HashMap<u8, std::collections::BTreeMap<u32, Option<wormcast_sim::worm::MessageId>>>,
    /// Confirmations observed (return-to-origin mode).
    pub confirmed: u64,
}

impl HcProtocol {
    pub fn new(host: HostId, cfg: HcConfig, groups: Arc<Membership>) -> Self {
        HcProtocol {
            host,
            cfg,
            groups,
            fwd: ReliableFwd::new(cfg.reliability),
            seq: std::collections::HashMap::new(),
            forwarded_at_header: HashSet::new(),
            next_deliver: std::collections::HashMap::new(),
            pending_deliver: std::collections::HashMap::new(),
            confirmed: 0,
        }
    }

    /// Deliver respecting the serializer's sequence numbers (total
    /// ordering survives retransmission reordering). Unserialized worms
    /// (seq 0) deliver immediately.
    fn deliver_in_order(
        &mut self,
        ctx: &mut ProtocolCtx,
        group: u8,
        seq: u32,
        msg: Option<wormcast_sim::worm::MessageId>,
    ) {
        if seq == 0 {
            if let Some(m) = msg {
                ctx.deliver_local(m);
            }
            return;
        }
        let next = self.next_deliver.entry(group).or_insert(1);
        if seq < *next {
            return; // stale duplicate
        }
        let pending = self.pending_deliver.entry(group).or_default();
        pending.insert(seq, msg);
        while let Some(entry) = pending.remove(&*next) {
            if let Some(m) = entry {
                ctx.deliver_local(m);
            }
            *next += 1;
        }
    }

    /// The circuit successor of `h` in `group` (ascending IDs, wrapping).
    fn successor(&self, group: u8, h: HostId) -> Option<HostId> {
        let members = self.groups.members(group);
        if members.is_empty() {
            return None;
        }
        match members.binary_search(&h) {
            Ok(ix) => Some(members[(ix + 1) % members.len()]),
            // Non-members (an originator outside the group) enter the
            // circuit at the first member with a higher ID, wrapping.
            Err(ix) => Some(members[ix % members.len()]),
        }
    }

    /// Buffer class for a hop from `from` to `to`: class 2 after the single
    /// ID reversal (the circuit wrap), class 1 before (Figure 7).
    fn class_for_hop(incoming: u8, from: HostId, to: HostId) -> u8 {
        if to < from {
            2
        } else {
            incoming
        }
    }

    /// Engine + protocol statistics.
    pub fn fwd_stats(&self) -> crate::reliable::FwdStats {
        self.fwd.stats
    }

    fn start_multicast(&mut self, ctx: &mut ProtocolCtx, msg: &AppMessage, group: u8) {
        let members = self.groups.members(group);
        let n = members.len();
        if n == 0 {
            return;
        }
        if self.cfg.serialize {
            let starter = self.groups.lowest(group).expect("non-empty");
            if self.host != starter {
                // Relay to the serializer first.
                let mut spec = SendSpec::data(msg, starter, WormKind::Multicast { group });
                spec.stage = STAGE_SEED;
                spec.buffer_class =
                    Self::class_for_hop(1, self.host, starter);
                self.fwd.forward(ctx, spec, None);
                return;
            }
            // We are the serializer: stamp the sequence and circulate.
            let seq = self.seq.entry(group).or_insert(0);
            *seq += 1;
            let seq = *seq;
            self.circulate_new(ctx, msg, group, seq);
        } else {
            self.circulate_new(ctx, msg, group, 0);
        }
    }

    /// Inject the circulating copy of a fresh multicast from this host.
    fn circulate_new(&mut self, ctx: &mut ProtocolCtx, msg: &AppMessage, group: u8, seq: u32) {
        let members = self.groups.members(group);
        let n = members.len();
        let is_member = self.groups.is_member(group, self.host);
        // Receivers: every member except (if member) ourselves; plus one
        // extra hop when the worm must return to the origin.
        let receivers = if is_member { n - 1 } else { n };
        let hops = receivers + usize::from(self.cfg.return_to_origin && is_member);
        if hops == 0 {
            return;
        }
        let succ = self.successor(group, self.host).expect("non-empty group");
        if succ == self.host {
            return; // singleton group
        }
        let mut spec = SendSpec::data(msg, succ, WormKind::Multicast { group });
        spec.seq = seq;
        spec.hops_left = hops as u16;
        spec.buffer_class = Self::class_for_hop(1, self.host, succ);
        self.fwd.forward(ctx, spec, None);
    }

    /// Build the forwarding spec for a circulating worm arriving here.
    fn forward_spec(&self, worm: &WormInstance, group: u8) -> Option<SendSpec> {
        if worm.meta.hops_left <= 1 {
            return None;
        }
        let succ = self.successor(group, self.host)?;
        if succ == self.host {
            return None;
        }
        let mut spec = SendSpec::forward(worm, succ);
        spec.hops_left = worm.meta.hops_left - 1;
        spec.buffer_class = Self::class_for_hop(worm.meta.buffer_class, self.host, succ);
        Some(spec)
    }

    fn handle_circulating(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance, group: u8) {
        self.fwd.acknowledge(ctx, worm);
        if self.fwd.is_duplicate(worm.meta.msg) {
            // Re-ACKed above; the first copy's processing (and its buffer
            // accounting) already happened.
            return;
        }
        // Deliver locally unless this is the origin's own message coming
        // back around (which still advances the sequence cursor).
        if worm.meta.origin != self.host {
            self.deliver_in_order(ctx, group, worm.meta.seq, Some(worm.meta.msg));
        } else {
            self.confirmed += 1;
            self.deliver_in_order(ctx, group, worm.meta.seq, None);
        }
        if !self.forwarded_at_header.remove(&worm.id) {
            if let Some(spec) = self.forward_spec(worm, group) {
                self.fwd.forward(ctx, spec, Some(worm.meta.msg));
            }
        }
        self.fwd.done_receiving(worm.meta.msg);
    }

    /// A seed (serialized mode) arrived at the serializer: deliver it here
    /// and start the circulation.
    fn handle_seed(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance, group: u8) {
        self.fwd.acknowledge(ctx, worm);
        if self.fwd.is_duplicate(worm.meta.msg) {
            // Re-ACKed above; the first copy's processing (and its buffer
            // accounting) already happened.
            return;
        }
        debug_assert_eq!(Some(self.host), self.groups.lowest(group));
        if self.groups.is_member(group, self.host) {
            ctx.deliver_local(worm.meta.msg);
        }
        let seq = self.seq.entry(group).or_insert(0);
        *seq += 1;
        let seq = *seq;
        let members = self.groups.members(group);
        let n = members.len();
        // Everybody but us receives from the circulation (the origin is
        // filtered at delivery time but still relays the worm).
        let hops = n - usize::from(self.groups.is_member(group, self.host));
        if hops == 0 {
            self.fwd.done_receiving(worm.meta.msg);
            return;
        }
        if let Some(succ) = self.successor(group, self.host) {
            if succ != self.host {
                let mut spec = SendSpec::forward(worm, succ);
                spec.stage = 0;
                spec.seq = seq;
                spec.hops_left = hops as u16;
                spec.buffer_class = Self::class_for_hop(1, self.host, succ);
                self.fwd.forward(ctx, spec, Some(worm.meta.msg));
            }
        }
        self.fwd.done_receiving(worm.meta.msg);
    }
}

impl AdapterProtocol for HcProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, msg: AppMessage) {
        match msg.dest {
            Destination::Unicast(d) => {
                debug_assert_ne!(d, self.host);
                let spec = SendSpec::data(&msg, d, WormKind::Unicast);
                self.fwd.forward(ctx, spec, None);
            }
            Destination::Multicast(g) => self.start_multicast(ctx, &msg, g),
        }
    }

    fn on_header(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) -> Admission {
        match worm.meta.kind {
            WormKind::Control(_) => Admission::Accept,
            WormKind::Unicast => Admission::Accept,
            WormKind::Multicast { group } => {
                let adm = self.fwd.admit(ctx, worm);
                if adm == Admission::Accept
                    && self.cfg.cut_through
                    && worm.meta.stage != STAGE_SEED
                    && ctx.tx_backlog == 0
                {
                    // Output port free: forward immediately, in lockstep
                    // with reception.
                    if let Some(mut spec) = self.forward_spec(worm, group) {
                        spec.follow = Some(worm.id);
                        self.fwd.forward(ctx, spec, Some(worm.meta.msg));
                        self.forwarded_at_header.insert(worm.id);
                    }
                }
                adm
            }
            WormKind::SwitchMulticast { .. } => {
                unreachable!("switch-level multicast worm at a host-adapter protocol")
            }
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        match worm.meta.kind {
            WormKind::Control(_) => {
                let consumed = self.fwd.on_control(ctx, worm);
                debug_assert!(consumed, "unknown control worm at HC protocol");
            }
            WormKind::Unicast => ctx.deliver_local(worm.meta.msg),
            WormKind::Multicast { group } => {
                if worm.meta.stage == STAGE_SEED {
                    self.handle_seed(ctx, worm, group);
                } else {
                    self.handle_circulating(ctx, worm, group);
                }
            }
            WormKind::SwitchMulticast { .. } => {
                unreachable!("switch-level multicast worm at a host-adapter protocol")
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) {
        let handled = self.fwd.handle_timer(ctx, token);
        debug_assert!(handled, "HC protocol sets no timers of its own");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;
    use wormcast_sim::time::SimTime;
    use wormcast_sim::worm::{MessageId, WormMeta};

    fn groups() -> Arc<Membership> {
        Membership::from_groups([(0u8, vec![HostId(1), HostId(3), HostId(5), HostId(7)])])
    }

    fn run_cb<F: FnOnce(&mut HcProtocol, &mut ProtocolCtx)>(
        p: &mut HcProtocol,
        host: HostId,
        now: SimTime,
        backlog: usize,
        f: F,
    ) -> Vec<Command> {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(now, host, backlog, &mut rng, &mut cmds);
        f(p, &mut ctx);
        cmds
    }

    fn msg(origin: u32, group: u8) -> AppMessage {
        AppMessage {
            msg: MessageId(42),
            origin: HostId(origin),
            dest: Destination::Multicast(group),
            payload_len: 400,
            created: 5,
        }
    }

    fn circulating(
        origin: u32,
        injector: u32,
        hops: u16,
        class: u8,
        stage: u8,
    ) -> WormInstance {
        WormInstance {
            id: WormId(77),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Multicast { group: 0 },
                msg: MessageId(42),
                injector: HostId(injector),
                origin: HostId(origin),
                dest: HostId(0),
                seq: 0,
                hops_left: hops,
                buffer_class: class,
                frag_index: 0,
                frag_last: true,
                advertised_size: 400,
                stage,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: 400,
            created: 5,
            injected: 6,
        }
    }

    #[test]
    fn successor_follows_ascending_ids() {
        let p = HcProtocol::new(HostId(3), HcConfig::store_and_forward(), groups());
        assert_eq!(p.successor(0, HostId(3)), Some(HostId(5)));
        assert_eq!(p.successor(0, HostId(7)), Some(HostId(1))); // wrap
        // Non-member origin enters at the next higher member.
        assert_eq!(p.successor(0, HostId(4)), Some(HostId(5)));
        assert_eq!(p.successor(0, HostId(8)), Some(HostId(1)));
    }

    #[test]
    fn origin_sends_n_minus_1_hops() {
        let mut p = HcProtocol::new(HostId(3), HcConfig::store_and_forward(), groups());
        let cmds = run_cb(&mut p, HostId(3), 0, 0, |p, ctx| {
            p.on_generate(ctx, msg(3, 0));
        });
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.dest, HostId(5));
                assert_eq!(s.hops_left, 3);
                assert_eq!(s.buffer_class, 1);
                assert_eq!(s.kind, WormKind::Multicast { group: 0 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn return_to_origin_adds_a_hop() {
        let cfg = HcConfig {
            return_to_origin: true,
            ..HcConfig::store_and_forward()
        };
        let mut p = HcProtocol::new(HostId(3), cfg, groups());
        let cmds = run_cb(&mut p, HostId(3), 0, 0, |p, ctx| {
            p.on_generate(ctx, msg(3, 0));
        });
        match &cmds[..] {
            [Command::Send(s)] => assert_eq!(s.hops_left, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_delivers_and_forwards_with_decremented_hops() {
        let mut p = HcProtocol::new(HostId(5), HcConfig::store_and_forward(), groups());
        let w = circulating(3, 3, 3, 1, 0);
        let cmds = run_cb(&mut p, HostId(5), 10, 0, |p, ctx| {
            p.on_worm_received(ctx, &w);
        });
        assert!(matches!(cmds[0], Command::DeliverLocal { msg: MessageId(42) }));
        match &cmds[1] {
            Command::Send(s) => {
                assert_eq!(s.dest, HostId(7));
                assert_eq!(s.hops_left, 2);
                assert_eq!(s.buffer_class, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_switches_to_2_at_wrap() {
        let mut p = HcProtocol::new(HostId(7), HcConfig::store_and_forward(), groups());
        let w = circulating(3, 5, 2, 1, 0);
        let cmds = run_cb(&mut p, HostId(7), 10, 0, |p, ctx| {
            p.on_worm_received(ctx, &w);
        });
        match &cmds[1] {
            Command::Send(s) => {
                assert_eq!(s.dest, HostId(1), "wraps to lowest member");
                assert_eq!(s.buffer_class, 2, "class reversal at the wrap");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn last_hop_stops() {
        let mut p = HcProtocol::new(HostId(1), HcConfig::store_and_forward(), groups());
        let w = circulating(3, 7, 1, 2, 0);
        let cmds = run_cb(&mut p, HostId(1), 10, 0, |p, ctx| {
            p.on_worm_received(ctx, &w);
        });
        assert_eq!(cmds.len(), 1, "deliver only, no forward: {cmds:?}");
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
    }

    #[test]
    fn origin_does_not_deliver_its_own_returning_worm() {
        let cfg = HcConfig {
            return_to_origin: true,
            ..HcConfig::store_and_forward()
        };
        let mut p = HcProtocol::new(HostId(3), cfg, groups());
        let w = circulating(3, 1, 1, 2, 0);
        let cmds = run_cb(&mut p, HostId(3), 10, 0, |p, ctx| {
            p.on_worm_received(ctx, &w);
        });
        assert!(cmds.is_empty(), "confirmation only: {cmds:?}");
        assert_eq!(p.confirmed, 1);
    }

    #[test]
    fn serialized_origin_relays_to_lowest() {
        let cfg = HcConfig {
            serialize: true,
            ..HcConfig::store_and_forward()
        };
        let mut p = HcProtocol::new(HostId(5), cfg, groups());
        let cmds = run_cb(&mut p, HostId(5), 0, 0, |p, ctx| {
            p.on_generate(ctx, msg(5, 0));
        });
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.dest, HostId(1));
                assert_eq!(s.stage, STAGE_SEED);
                assert_eq!(s.buffer_class, 2, "relay to a lower ID is class 2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serializer_stamps_increasing_seq() {
        let cfg = HcConfig {
            serialize: true,
            ..HcConfig::store_and_forward()
        };
        let mut p = HcProtocol::new(HostId(1), cfg, groups());
        let seed = |id: u64| {
            let mut w = circulating(5, 5, 0, 1, STAGE_SEED);
            w.meta.msg = MessageId(id);
            w
        };
        let c1 = run_cb(&mut p, HostId(1), 10, 0, |p, ctx| {
            p.on_worm_received(ctx, &seed(1));
        });
        let c2 = run_cb(&mut p, HostId(1), 20, 0, |p, ctx| {
            p.on_worm_received(ctx, &seed(2));
        });
        let seq_of = |cmds: &[Command]| {
            cmds.iter()
                .find_map(|c| match c {
                    Command::Send(s) => Some(s.seq),
                    _ => None,
                })
                .expect("a forward")
        };
        assert_eq!(seq_of(&c1), 1);
        assert_eq!(seq_of(&c2), 2);
        // The serializer (a member, not the origin) also delivers locally.
        assert!(c1.iter().any(|c| matches!(c, Command::DeliverLocal { .. })));
    }

    #[test]
    fn cut_through_forwards_at_header_when_port_free() {
        let mut p = HcProtocol::new(HostId(5), HcConfig::cut_through(), groups());
        let w = circulating(3, 3, 3, 1, 0);
        let cmds = run_cb(&mut p, HostId(5), 10, 0, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w), Admission::Accept);
        });
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.follow, Some(WormId(77)), "lockstep with reception");
                assert_eq!(s.dest, HostId(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Receive completion delivers but does not forward again.
        let cmds = run_cb(&mut p, HostId(5), 20, 1, |p, ctx| {
            p.on_worm_received(ctx, &w);
        });
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
    }

    #[test]
    fn cut_through_falls_back_when_port_busy() {
        let mut p = HcProtocol::new(HostId(5), HcConfig::cut_through(), groups());
        let w = circulating(3, 3, 3, 1, 0);
        let cmds = run_cb(&mut p, HostId(5), 10, 2, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w), Admission::Accept);
        });
        assert!(cmds.is_empty(), "busy port: no header-time forward");
        let cmds = run_cb(&mut p, HostId(5), 20, 2, |p, ctx| {
            p.on_worm_received(ctx, &w);
        });
        assert_eq!(cmds.len(), 2, "deliver + store-and-forward send");
    }

    #[test]
    fn unicast_passthrough() {
        let mut p = HcProtocol::new(HostId(1), HcConfig::store_and_forward(), groups());
        let am = AppMessage {
            msg: MessageId(9),
            origin: HostId(1),
            dest: Destination::Unicast(HostId(7)),
            payload_len: 10,
            created: 0,
        };
        let cmds = run_cb(&mut p, HostId(1), 0, 0, |p, ctx| {
            p.on_generate(ctx, am);
        });
        match &cmds[..] {
            [Command::Send(s)] => {
                assert_eq!(s.kind, WormKind::Unicast);
                assert_eq!(s.dest, HostId(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
