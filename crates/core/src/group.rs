//! Group membership tables as seen by the protocols.
//!
//! The paper's "multicast group manager" control process distributes, per
//! group, the information each adapter needs: for the Hamiltonian scheme
//! the triple *(group, next hop, hop count)*; for the tree scheme the
//! successor list. [`Membership`] is the shared, read-only table the
//! protocol instances hold an `Arc` of.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wormcast_sim::engine::HostId;

/// The broadcast group id (Section 8.1: "multicast group 255 is used for
/// the broadcast address").
pub const BROADCAST_GROUP: u8 = 255;

/// Sorted member lists per group.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Membership {
    groups: BTreeMap<u8, Vec<HostId>>,
}

impl Membership {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a group (members are sorted and deduplicated).
    pub fn insert(&mut self, group: u8, mut members: Vec<HostId>) {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "group {group} has no members");
        self.groups.insert(group, members);
    }

    /// Build from `(group, members)` pairs.
    pub fn from_groups(list: impl IntoIterator<Item = (u8, Vec<HostId>)>) -> Arc<Self> {
        let mut m = Membership::new();
        for (g, members) in list {
            m.insert(g, members);
        }
        Arc::new(m)
    }

    /// Sorted members of `group` (empty if unknown).
    pub fn members(&self, group: u8) -> &[HostId] {
        self.groups.get(&group).map_or(&[], |v| v.as_slice())
    }

    pub fn is_member(&self, group: u8, h: HostId) -> bool {
        self.members(group).binary_search(&h).is_ok()
    }

    pub fn group_ids(&self) -> impl Iterator<Item = u8> + '_ {
        self.groups.keys().copied()
    }

    /// The lowest-ID member — the circuit starter / serializer and the
    /// natural root of ID-ordered trees.
    pub fn lowest(&self, group: u8) -> Option<HostId> {
        self.members(group).first().copied()
    }

    /// Number of deliveries a multicast from `origin` must produce: every
    /// member except the origin itself (non-member origins deliver to all
    /// members).
    pub fn expected_deliveries(&self, group: u8, origin: HostId) -> usize {
        let m = self.members(group);
        m.len() - usize::from(m.binary_search(&origin).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<HostId> {
        v.iter().map(|&i| HostId(i)).collect()
    }

    #[test]
    fn members_sorted_and_deduped() {
        let m = Membership::from_groups([(3u8, ids(&[5, 1, 5, 9]))]);
        assert_eq!(m.members(3), ids(&[1, 5, 9]).as_slice());
        assert_eq!(m.lowest(3), Some(HostId(1)));
        assert!(m.is_member(3, HostId(5)));
        assert!(!m.is_member(3, HostId(2)));
        assert!(m.members(7).is_empty());
        assert_eq!(m.lowest(7), None);
    }

    #[test]
    fn expected_deliveries_excludes_member_origin() {
        let m = Membership::from_groups([(0u8, ids(&[1, 2, 3]))]);
        assert_eq!(m.expected_deliveries(0, HostId(2)), 2);
        assert_eq!(m.expected_deliveries(0, HostId(9)), 3); // non-member origin
    }

    #[test]
    #[should_panic(expected = "no members")]
    fn empty_group_rejected() {
        let mut m = Membership::new();
        m.insert(0, vec![]);
    }
}
