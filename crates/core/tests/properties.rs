//! Property-based invariants of the protocol building blocks.

use proptest::prelude::*;
use wormcast_core::buffers::{BufferPool, PoolConfig, Reservation};
use wormcast_core::ipmap::{ClassD, IpMulticastMap};
use wormcast_core::ordering::check_total_order;
use wormcast_core::Membership;
use wormcast_sim::engine::HostId;
use wormcast_sim::network::{Delivery, MessageLog, MessageRecord};
use wormcast_sim::protocol::Destination;
use wormcast_sim::worm::MessageId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Buffer pools never over-commit, and a full release sequence always
    /// returns the pool to empty — under arbitrary reserve/release
    /// interleavings across both classes.
    #[test]
    fn buffer_pool_never_overcommits(
        c1 in 0u32..5_000,
        c2 in 0u32..5_000,
        dma in 0u32..5_000,
        single in any::<bool>(),
        ops in proptest::collection::vec((1u8..=2, 1u32..3_000, any::<bool>()), 1..60),
    ) {
        let cfg = PoolConfig { class1: c1, class2: c2, dma_extension: dma };
        let mut pool = if single {
            BufferPool::new_single_class(cfg)
        } else {
            BufferPool::new(cfg)
        };
        let cap_total = c1 + c2 + dma;
        let mut held: Vec<Reservation> = Vec::new();
        for (class, bytes, release_one) in ops {
            if release_one && !held.is_empty() {
                pool.release(held.pop().unwrap());
            } else if let Some(r) = pool.reserve(class, bytes) {
                prop_assert_eq!(r.bytes(), bytes, "all-or-nothing");
                held.push(r);
            }
            prop_assert!(pool.total_used() <= cap_total, "over-committed");
            let held_total: u32 = held.iter().map(|r| r.bytes()).sum();
            prop_assert_eq!(pool.total_used(), held_total, "accounting drift");
        }
        for r in held.drain(..) {
            pool.release(r);
        }
        prop_assert_eq!(pool.total_used(), 0);
    }

    /// The two-class guarantee: while class 2 is untouched, a worm-sized
    /// class-2 request always succeeds no matter how loaded class 1 is.
    #[test]
    fn class2_always_has_room(
        worm in 1u32..2_000,
        class1_load in proptest::collection::vec(1u32..2_000, 0..10),
    ) {
        let mut pool = BufferPool::new(PoolConfig {
            class1: 4_000,
            class2: worm,
            dma_extension: 0,
        });
        for b in class1_load {
            let _ = pool.reserve(1, b);
        }
        prop_assert!(pool.reserve(2, worm).is_some());
    }

    /// IP map: after arbitrary join/leave sequences, the union Myrinet
    /// membership equals the union of the per-address memberships, and
    /// `host_accepts` matches exact membership.
    #[test]
    fn ipmap_union_is_exact(
        ops in proptest::collection::vec(
            (0u8..4, 0u32..8, any::<bool>()), 1..60),
    ) {
        // Four class D addresses, two of which collide in the low byte.
        let addrs = [
            ClassD::new(224, 0, 0, 9),
            ClassD::new(239, 1, 0, 9),
            ClassD::new(224, 0, 0, 10),
            ClassD::new(224, 5, 5, 11),
        ];
        let mut map = IpMulticastMap::new();
        let mut model: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); addrs.len()];
        for (a, h, join) in ops {
            let addr = addrs[a as usize];
            if join {
                map.join(addr, HostId(h));
                model[a as usize].insert(h);
            } else {
                map.leave(addr, HostId(h));
                model[a as usize].remove(&h);
            }
        }
        for (i, addr) in addrs.iter().enumerate() {
            let got: Vec<u32> = map.ip_members(*addr).iter().map(|h| h.0).collect();
            let want: Vec<u32> = model[i].iter().copied().collect();
            prop_assert_eq!(got, want);
            for h in 0..8u32 {
                prop_assert_eq!(
                    map.host_accepts(*addr, HostId(h)),
                    model[i].contains(&h)
                );
            }
        }
        // Group 9 is the union of addrs[0] and addrs[1].
        let union: Vec<u32> = map.myrinet_members(9).iter().map(|h| h.0).collect();
        let want: Vec<u32> = model[0].union(&model[1]).copied().collect();
        prop_assert_eq!(union, want);
    }

    /// A single global delivery order projected onto members always passes
    /// the total-order check; swapping two distinct messages at one member
    /// always fails it.
    #[test]
    fn total_order_checker_is_sound(
        msgs in 2usize..10,
        members in 2usize..6,
        skip in proptest::collection::vec(any::<bool>(), 0..40),
        swap_at in (0usize..6, 0usize..8),
    ) {
        let mut log = MessageLog::default();
        for m in 0..msgs {
            log.created.push(MessageRecord {
                msg: MessageId(m as u64),
                origin: HostId(99),
                dest: Destination::Multicast(0),
                payload_len: 1,
                created: 0,
            });
        }
        // Global order 0..msgs; members may miss some messages.
        let mut skip_it = skip.into_iter();
        let mut t = 1u64;
        for h in 0..members as u32 {
            for m in 0..msgs {
                if skip_it.next().unwrap_or(false) {
                    continue;
                }
                log.deliveries.push(Delivery {
                    msg: MessageId(m as u64),
                    host: HostId(h),
                    at: t,
                });
                t += 1;
            }
        }
        let member_ids: Vec<HostId> = (0..members as u32).map(HostId).collect();
        prop_assert!(check_total_order(&log, 0, &member_ids).is_none());

        // Swap two adjacent deliveries of one member (if it has two).
        let (h, ix) = swap_at;
        let h = HostId((h % members) as u32);
        let mut mine: Vec<usize> = log
            .deliveries
            .iter()
            .enumerate()
            .filter(|(_, d)| d.host == h)
            .map(|(i, _)| i)
            .collect();
        if mine.len() >= 2 {
            let k = ix % (mine.len() - 1);
            let (a, b) = (mine[k], mine[k + 1]);
            mine.clear();
            let (ta, tb) = (log.deliveries[a].at, log.deliveries[b].at);
            log.deliveries[a].at = tb;
            log.deliveries[b].at = ta;
            // Another member must share both messages for the check to see
            // the inversion; with >= 2 members and no skips this holds, so
            // only assert when nothing was skipped at other members.
            let complete_elsewhere = (0..members as u32)
                .filter(|&o| HostId(o) != h)
                .any(|o| {
                    log.deliveries.iter().filter(|d| d.host == HostId(o)).count() == msgs
                });
            if complete_elsewhere {
                prop_assert!(
                    check_total_order(&log, 0, &member_ids).is_some(),
                    "swapped order must be detected"
                );
            }
        }
    }

    /// Membership: expected_deliveries is members-1 for member origins and
    /// members for outsiders, for arbitrary groups.
    #[test]
    fn membership_expected_deliveries(
        ids in proptest::collection::btree_set(0u32..32, 1..10),
        origin in 0u32..32,
    ) {
        let members: Vec<HostId> = ids.iter().copied().map(HostId).collect();
        let m = Membership::from_groups([(0u8, members.clone())]);
        let expect = members.len() - usize::from(ids.contains(&origin));
        prop_assert_eq!(m.expected_deliveries(0, HostId(origin)), expect);
    }
}
