//! The Section 8 measurements (Figures 12 and 13).
//!
//! Testbed: a four-switch Myrinet with eight hosts (two per switch,
//! switches in a line), a multicast group of all eight members on the
//! Hamiltonian circuit, and saturating application-space senders.
//!
//! * Figure 12: per-host **throughput vs packet size** (1–8 KB), for a
//!   single transmitting host and for all eight transmitting at once.
//! * Figure 13: per-host **reception loss vs packet size** in the
//!   all-senders case (the single-sender case measured no loss, which the
//!   model reproduces).

use crate::lanai::LanaiModel;
use crate::prototype::{pump_kick, PrototypeProtocol};
use serde::{Deserialize, Serialize};
use wormcast_sim::engine::HostId;
use wormcast_sim::network::NetworkConfig;
use wormcast_sim::time::{utilization_to_mbps, SimTime};
use wormcast_sim::Network;
use wormcast_topo::{TopoBuilder, Topology, UpDown};

/// Number of hosts on the testbed.
pub const NUM_HOSTS: usize = 8;

/// One prototype run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PrototypeConfig {
    /// Application payload per packet, bytes (the paper sweeps 1–8 KB).
    pub packet_size: u32,
    /// All eight hosts send (Figure 12's dashed curve / Figure 13), or
    /// only host 0 (the solid curve).
    pub all_senders: bool,
    pub lanai: LanaiModel,
    /// Measurement duration in byte-times.
    pub duration: SimTime,
    pub seed: u64,
}

impl PrototypeConfig {
    pub fn new(packet_size: u32, all_senders: bool) -> Self {
        PrototypeConfig {
            packet_size,
            all_senders,
            lanai: LanaiModel::default(),
            duration: 4_000_000, // 50 ms of 640 Mb/s time
            seed: 0x5EC8,
        }
    }
}

/// Measured outcomes of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrototypeResult {
    /// Payload goodput delivered to each host, Mb/s.
    pub per_host_rx_mbps: Vec<f64>,
    /// Mean over receiving hosts — the Figure 12 y-value.
    pub throughput_mbps: f64,
    /// Per-host fraction of arriving worms dropped at the input buffer.
    pub loss_per_host: Vec<f64>,
    /// Mean over hosts — the Figure 13 y-value.
    pub loss: f64,
    pub packets_delivered: u64,
    pub packets_dropped: u64,
}

/// The four-switch, eight-host testbed topology: switches in a line, two
/// hosts per switch, host IDs ascending with switch position.
pub fn testbed_topology() -> Topology {
    let mut b = TopoBuilder::new(4);
    b.link(0, 1, 2);
    b.link(1, 2, 2);
    b.link(2, 3, 2);
    for sw in 0..4 {
        b.host(sw);
        b.host(sw);
    }
    b.build()
}

/// Run one prototype measurement.
pub fn run_prototype(cfg: &PrototypeConfig) -> PrototypeResult {
    let topo = testbed_topology();
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let net_cfg = NetworkConfig::builder()
        .seed(cfg.seed)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, net_cfg);
    let circuit: Vec<HostId> = (0..NUM_HOSTS as u32).map(HostId).collect();
    // Let the pump stop early enough for in-flight worms to drain before
    // the deadline, so counters are not skewed by truncation.
    let pump_until = cfg.duration.saturating_sub(200_000);
    for h in 0..NUM_HOSTS as u32 {
        let is_sender = cfg.all_senders || h == 0;
        let p = PrototypeProtocol::new(
            HostId(h),
            cfg.lanai,
            circuit.clone(),
            cfg.packet_size,
            is_sender,
            pump_until,
        );
        net.set_protocol(HostId(h), Box::new(p));
        if is_sender {
            // Stagger pump starts a little, as real processes would.
            let kick_at = 64 * h as SimTime;
            net.set_source(
                HostId(h),
                Box::new(wormcast_traffic::script::OneShot::new(pump_kick())),
                kick_at,
            );
        }
    }
    let out = net.run_until(cfg.duration);
    debug_assert!(out.deadlock.is_none(), "prototype run deadlocked");
    net.audit().expect("conservation");

    // "Received data rate at each host" is what reaches the application
    // (host-DMA completions = DeliverLocal records), not what crosses the
    // wire into the adapter.
    let mut host_delivered = vec![0u64; NUM_HOSTS];
    for d in &net.msgs.deliveries {
        host_delivered[d.host.0 as usize] += 1;
    }
    let mut per_host_rx_mbps = Vec::with_capacity(NUM_HOSTS);
    let mut loss_per_host = Vec::with_capacity(NUM_HOSTS);
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for (a, &got) in net.adapters.iter().zip(&host_delivered) {
        let rx_payload_bytes = got * cfg.packet_size as u64;
        per_host_rx_mbps.push(utilization_to_mbps(
            rx_payload_bytes as f64 / cfg.duration as f64,
        ));
        let arrived = a.counters.worms_received + a.counters.worms_refused;
        loss_per_host.push(if arrived == 0 {
            0.0
        } else {
            a.counters.worms_refused as f64 / arrived as f64
        });
        delivered += got;
        dropped += a.counters.worms_refused;
    }
    // Figure 12 averages over hosts that *receive*: with a single sender,
    // the sender itself receives nothing (the worm stops one hop short).
    let receiving: Vec<f64> = if cfg.all_senders {
        per_host_rx_mbps.clone()
    } else {
        per_host_rx_mbps[1..].to_vec()
    };
    let throughput_mbps = receiving.iter().sum::<f64>() / receiving.len() as f64;
    let loss = if delivered + dropped == 0 {
        0.0
    } else {
        dropped as f64 / (delivered + dropped) as f64
    };
    PrototypeResult {
        per_host_rx_mbps,
        throughput_mbps,
        loss_per_host,
        loss,
        packets_delivered: delivered,
        packets_dropped: dropped,
    }
}

/// The packet sizes of Figures 12/13.
pub fn packet_sizes() -> Vec<u32> {
    (1..=8).map(|k| k * 1024).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug builds are ~25x slower; shrink horizons so `cargo test`
    /// stays quick while release CI runs the full windows.
    fn dur(full: SimTime) -> SimTime {
        if cfg!(debug_assertions) {
            full / 4
        } else {
            full
        }
    }

    #[test]
    fn testbed_shape() {
        let t = testbed_topology();
        assert_eq!(t.num_switches(), 4);
        assert_eq!(t.num_hosts(), 8);
        assert!(t.is_connected());
        // Hosts 0,1 on switch 0; 6,7 on switch 3.
        assert_eq!(t.hosts[0].switch, 0);
        assert_eq!(t.hosts[7].switch, 3);
    }

    #[test]
    fn single_sender_no_loss_and_sane_throughput() {
        let mut cfg = PrototypeConfig::new(4096, false);
        cfg.duration = dur(1_500_000);
        let r = run_prototype(&cfg);
        assert_eq!(r.packets_dropped, 0, "single sender must not overflow");
        assert!(
            (30.0..=200.0).contains(&r.throughput_mbps),
            "throughput {} Mb/s out of the Figure 12 ballpark",
            r.throughput_mbps
        );
        // Every non-sender host hears the stream at the same rate.
        let rates = &r.per_host_rx_mbps[1..];
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 15.0, "uneven rates: {rates:?}");
    }

    #[test]
    fn all_senders_lose_packets_at_large_sizes() {
        let mut cfg = PrototypeConfig::new(8192, true);
        cfg.duration = dur(1_500_000);
        let r = run_prototype(&cfg);
        assert!(
            r.loss > 0.05,
            "all-senders at 8 KB must overflow input buffers (loss {})",
            r.loss
        );
    }

    #[test]
    fn throughput_grows_with_packet_size_single_sender() {
        let mut small = PrototypeConfig::new(1024, false);
        small.duration = dur(1_200_000);
        let mut large = PrototypeConfig::new(8192, false);
        large.duration = dur(1_200_000);
        let rs = run_prototype(&small);
        let rl = run_prototype(&large);
        assert!(
            rl.throughput_mbps > rs.throughput_mbps * 1.5,
            "8 KB ({}) must beat 1 KB ({}) clearly",
            rl.throughput_mbps,
            rs.throughput_mbps
        );
    }
}
